"""``python -m repro.critpath`` — causal critical-path profiling.

Runs one built-in workload (the same registry as ``repro.profile``)
with dependency-edge recording enabled, extracts the critical path
through the event DAG, and optionally projects Coz-style what-if
speedups for resource scalings::

    python -m repro.critpath                        # quickstart FC
    python -m repro.critpath tbe --whatif dram=1.2
    python -m repro.critpath fc --whatif noc=2 --validate --jobs 2
    python -m repro.critpath fc --format chrome -o fc.critical.json

``--whatif RESOURCE=FACTOR`` (repeatable) predicts the end-to-end
cycle delta of making ``RESOURCE`` ``FACTOR``× faster purely from the
recorded graph; ``--validate`` re-simulates each scaling with a scaled
:class:`~repro.config.ChipConfig` and reports the prediction error
(the acceptance band is 10 %).  ``--format chrome`` writes a merged
Perfetto trace: the usual cycle-level spans plus a ``critical.path``
track whose segments chain flow arrows and point into the hardware
spans they attribute time to.

JSON output contains no wall-clock fields, so reports are byte-stable
at any ``--jobs`` count (the CI critpath job diffs them).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.config import MTIA_V1, ChipConfig
from repro.core.accelerator import Accelerator
from repro.obs.critical import CriticalPath, extract_critical_path
from repro.obs.whatif import (RESOURCE_SCALINGS, project_whatif,
                              scaled_chip_config)
from repro.parallel import parallel_map
from repro.profile import WORKLOADS, resolve_workload

#: pinned schema for the JSON report (CI golden-pins it)
SCHEMA_VERSION = 1

#: acceptance band for what-if prediction vs true re-simulation
VALIDATION_BAND = 0.10


def run_workload_with_edges(
        name: str, config: ChipConfig = MTIA_V1, trace: bool = False,
        record_edges: bool = True) -> Tuple[Accelerator, Dict[str, float]]:
    """Run one profile workload on a fresh card, returning the card
    (with its edge recorder populated) and the workload's extras."""
    runner = WORKLOADS[name]
    acc = Accelerator(config=config, trace=trace,
                      record_edges=record_edges)
    extras = runner(acc)
    return acc, extras


def _resim_job(task: Tuple[str, str, float]) -> float:
    """Re-simulate ``workload`` with ``resource`` scaled; returns cycles.

    Module-level so ``parallel_map`` can pickle it under spawn.
    """
    name, resource, factor = task
    config, _ = scaled_chip_config(MTIA_V1, resource, factor)
    acc, _ = run_workload_with_edges(name, config=config,
                                     record_edges=False)
    return float(acc.cycles)


def parse_whatif_spec(spec: str) -> Tuple[str, float]:
    """Parse ``RESOURCE=FACTOR`` (e.g. ``dram=1.2``)."""
    resource, sep, raw = spec.partition("=")
    known = ", ".join(sorted(RESOURCE_SCALINGS))
    if not sep:
        raise SystemExit(f"--whatif takes RESOURCE=FACTOR (resources: "
                         f"{known}), got {spec!r}")
    if resource not in RESOURCE_SCALINGS:
        raise SystemExit(f"unknown resource {resource!r}; one of {known}")
    try:
        factor = float(raw)
    except ValueError:
        raise SystemExit(f"bad scale factor {raw!r} in {spec!r}")
    if factor <= 0:
        raise SystemExit(f"scale factor must be positive, got {factor}")
    return resource, factor


def analyze_workload(name: str,
                     whatif: Optional[List[Tuple[str, float]]] = None,
                     validate: bool = False,
                     jobs: int = 1) -> Dict:
    """Run + extract + project; returns the full JSON-ready report."""
    acc, extras = run_workload_with_edges(name)
    path = extract_critical_path(acc.edges)
    baseline = float(acc.cycles)

    projections = []
    specs = whatif or []
    for resource, factor in specs:
        # Use the *effective* factor the scaled config realises, so the
        # projection and the re-simulation scale by the same amount.
        _, effective = scaled_chip_config(MTIA_V1, resource, factor)
        projection = project_whatif(acc.edges, resource, effective)
        projections.append({
            "requested_factor": factor,
            "effective_factor": effective,
            **projection.to_dict(),
            "validation": None,
        })

    if validate and specs:
        resim = parallel_map(
            _resim_job,
            [(name, resource, factor) for resource, factor in specs],
            jobs=jobs)
        for row, cycles in zip(projections, resim):
            true_delta = baseline - cycles
            predicted_delta = row["delta"]
            scale = max(abs(true_delta), 1e-9)
            error = abs(predicted_delta - true_delta) / scale
            row["validation"] = {
                "resim_cycles": cycles,
                "true_delta": true_delta,
                "predicted_delta": predicted_delta,
                "relative_error": error,
                "band": VALIDATION_BAND,
                "within_band": bool(error <= VALIDATION_BAND),
            }

    return {
        "schema_version": SCHEMA_VERSION,
        "workload": name,
        "unit": "cycles",
        "sim_cycles": baseline,
        "extras": extras,
        "critical_path": path.to_dict(),
        "whatif": projections,
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_text(report: Dict, top: int = 10) -> str:
    path = report["critical_path"]
    lines = [f"== critical path: {report['workload']} ==",
             f"sim cycles      {report['sim_cycles']:g}",
             f"path total      {path['total']:g} {path['unit']} "
             f"({path['num_segments']} segments, "
             f"{path['num_condensed']} condensed)",
             "",
             "critical cycles by resource:"]
    for resource, value in list(path["by_resource"].items())[:top]:
        share = 100.0 * value / path["total"] if path["total"] else 0.0
        lines.append(f"  {resource:<14}{value:>14.1f}  {share:5.1f} %")
    segments = sorted(path["segments"], key=lambda s: -s["duration"])
    lines += ["", f"top {min(top, len(segments))} critical segments:"]
    for seg in segments[:top]:
        lines.append(f"  {seg['duration']:>12.1f}  {seg['resource']:<14}"
                     f"{seg['label']} [{seg['kind']}]")
    for row in report["whatif"]:
        lines += ["",
                  f"what-if {row['resource']} x{row['effective_factor']:g}:"
                  f" {row['baseline']:g} -> {row['projected']:g} "
                  f"{row['unit']} ({row['speedup']:.3f}x, "
                  f"{row['scaled_edges']} edges scaled)"]
        validation = row["validation"]
        if validation:
            verdict = ("OK" if validation["within_band"]
                       else "OUT OF BAND")
            lines.append(
                f"  re-simulated: {validation['resim_cycles']:g} cycles "
                f"(true delta {validation['true_delta']:g}, predicted "
                f"{validation['predicted_delta']:g}, error "
                f"{validation['relative_error']:.1%} -> {verdict})")
    return "\n".join(lines)


def build_critical_chrome_trace(acc: Accelerator,
                                path: CriticalPath) -> dict:
    """The cycle-level trace plus the critical path as its own track.

    Condensed critical segments land on a ``critical.path`` thread
    (process ``critical``); consecutive segments chain flow arrows, and
    each segment also points into the first hardware span that starts
    inside it — the activity its critical time is attributed to.
    """
    from repro.obs.spans import SpanTracer, merge_chrome_traces

    to_us = 1.0 / (acc.config.frequency_ghz * 1e3)
    spans = SpanTracer(enabled=True)
    hw_spans = sorted(enumerate(acc.tracer.spans),
                      key=lambda pair: (pair[1].start, pair[0]))
    recorded = []
    for seg in path.condensed():
        span = spans.add("critical.path", f"{seg.resource}:{seg.label}",
                         seg.start * to_us, seg.end * to_us,
                         pid="critical", resource=seg.resource,
                         kind=seg.kind, cycles=seg.duration)
        recorded.append((seg, span))
    for (_, src), (_, dst) in zip(recorded, recorded[1:]):
        spans.link(src, dst)
    for seg, span in recorded:
        for index, hw in hw_spans:
            if seg.start <= hw.start < seg.end:
                fid = spans.link(span)
                acc.tracer.mark_flow_in(fid, index=index)
                break
    return merge_chrome_traces(
        acc.tracer.to_chrome_trace(acc.config.frequency_ghz),
        spans.to_chrome_trace())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.critpath",
        description="Causal critical-path profile of a simulated "
                    "workload, with what-if speedup projection.")
    parser.add_argument("workload", nargs="?", default="quickstart",
                        help="workload name (%s) or an example-script "
                        "path" % "/".join(sorted(WORKLOADS)))
    parser.add_argument("--format", choices=("text", "json", "chrome"),
                        default="text", help="report format")
    parser.add_argument("--output", "-o", default=None,
                        help="write to this file instead of stdout")
    parser.add_argument("--top", type=int, default=10,
                        help="resources/segments shown in the text report")
    parser.add_argument("--whatif", action="append", default=[],
                        metavar="RESOURCE=FACTOR",
                        help="project scaling a resource (repeatable); "
                        "resources: %s" % ", ".join(
                            sorted(RESOURCE_SCALINGS)))
    parser.add_argument("--validate", action="store_true",
                        help="re-simulate each --whatif scaling and "
                        "report the prediction error")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for --validate re-runs")
    args = parser.parse_args(argv)

    name = resolve_workload(args.workload)
    specs = [parse_whatif_spec(spec) for spec in args.whatif]

    if args.format == "chrome":
        acc, _ = run_workload_with_edges(name, trace=True)
        path = extract_critical_path(acc.edges)
        trace = build_critical_chrome_trace(acc, path)
        out = args.output or f"{name}.critical.trace.json"
        with open(out, "w") as fh:
            json.dump(trace, fh)
        print(f"wrote Chrome trace to {out} "
              f"({len(trace['traceEvents'])} events, critical path on "
              f"its own track); open in chrome://tracing")
        return 0

    report = analyze_workload(name, whatif=specs,
                              validate=args.validate, jobs=args.jobs)
    text = (json.dumps(report, indent=2, sort_keys=True)
            if args.format == "json" else render_text(report, args.top))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
