"""Phase-1 candidate ranking with the analytical cost model.

:func:`candidate_cost` maps a :class:`~repro.autotune.space.MappingCandidate`
to predicted seconds by starting from :func:`repro.eval.opmodel.estimate_op`
(the calibrated roofline the evaluation chapter uses) and layering on the
mapping-specific effects the opmodel's whole-chip curves cannot see:

* **sub-grid occupancy** — a 2×2 sub-grid has 1/16 of the grid's MACs,
  so compute time stretches by the unused-PE fraction;
* **multicast off** — each column group re-fetches its own copy of the
  A stripes and each row its B slice, replicating NoC/DRAM traffic
  (the Section 3.5 ablation);
* **single-core streams** — one processor core runs both the load and
  compute command streams, serialising what the dual-core PE overlaps;
* **k_split** — deeper reduction splits shrink each PE's B slice but
  add a partial-sum forwarding pass per extra stage;
* **prefetch depth** — the Figure 12 pipelining term: a depth-``p``
  pipeline keeps the DMA busy ``p/(p+1)`` of the time;
* **SRAM placement** — operand streams move at on-chip rather than
  LPDDR5 bandwidth;
* **unfused TBE** — one dispatch *per table* and per-launch parallelism
  of only ``batch`` bags (the Section 6.1 launch-amortisation story).

The model is intentionally cheap (microseconds per candidate) and only
has to *rank* well: phase 2 re-measures the survivors in the DES.  It is
a pure function of (shape, candidate) — no RNG, no globals — which the
property suite relies on for cost invariance under re-canonicalisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.compiler.ops import OpCosts
from repro.config import MTIA_V1, ChipConfig
from repro.eval.machines import MTIA_MACHINE, MachineModel
from repro.eval.opmodel import estimate_op

from repro.autotune.space import FCShape, MappingCandidate, TBEShape


@dataclass(frozen=True)
class CostedCandidate:
    """A candidate with its phase-1 predicted cost."""

    candidate: MappingCandidate
    cost_s: float
    breakdown: Dict[str, float]

    def sort_key(self):
        """Total order: cheapest first, candidate key breaks ties."""
        return (self.cost_s, self.candidate.key())


def candidate_cost(shape, cand: MappingCandidate,
                   machine: MachineModel = MTIA_MACHINE,
                   config: ChipConfig = MTIA_V1) -> CostedCandidate:
    """Predicted seconds for running ``shape`` with mapping ``cand``."""
    c = cand.canonical()
    if c.op == "fc":
        return _fc_cost(shape, c, machine, config)
    return _tbe_cost(shape, c, machine, config)


def _fc_cost(shape: FCShape, c: MappingCandidate, machine: MachineModel,
             config: ChipConfig) -> CostedCandidate:
    elem = 1 if shape.dtype == "int8" else 2
    flops = 2.0 * shape.m * shape.k * shape.n
    bytes_in = float((shape.m + shape.n) * shape.k * elem)
    bytes_out = float(shape.m * shape.n * 4)
    costs = OpCosts(flops, bytes_in, bytes_out, "fc")

    grid_pes = config.grid_rows * config.grid_cols
    occupancy = c.num_pes / grid_pes
    base = estimate_op(machine, "fc", costs, dtype=shape.dtype,
                       in_sram=(c.operands == "sram"),
                       attrs={"util_factor": occupancy})

    compute = base.compute_seconds
    if not c.dual_core:
        # One core issues both command streams: the DMA/compute overlap
        # the dual-core PE buys is gone, so streaming cost lands on the
        # compute path instead of hiding under it.
        compute *= 1.5

    memory = base.memory_seconds
    n_split = c.cols // c.k_split
    if not c.use_multicast:
        # Without NoC coalescing every column group refetches A and
        # every row refetches its B slice.
        a_bytes = shape.m * shape.k * elem
        b_bytes = shape.n * shape.k * elem
        replicated = a_bytes * n_split + b_bytes * c.rows + bytes_out
        memory *= replicated / costs.bytes_total

    # Each extra k stage ships a 64x64 INT32 partial-sum block across
    # the reduction network per output block.
    reduce_bytes = (c.k_split - 1) * shape.m * shape.n * 4
    reduce_s = reduce_bytes / (machine.onchip_gbs * 1e9)

    seconds = base.launch_seconds + max(compute, memory) + reduce_s
    return CostedCandidate(
        candidate=c, cost_s=seconds,
        breakdown={"launch_s": base.launch_seconds,
                   "compute_s": compute, "memory_s": memory,
                   "reduce_s": reduce_s, "occupancy": occupancy})


def _tbe_cost(shape: TBEShape, c: MappingCandidate, machine: MachineModel,
              config: ChipConfig) -> CostedCandidate:
    dim = shape.embedding_dim
    lookups_per_bag = shape.pooling_factor
    bag_bytes = lookups_per_bag * dim + dim * 4   # int8 rows + fp32 out
    flops_per_bag = 2.0 * lookups_per_bag * dim   # dequant + accumulate

    if c.fused:
        launches = 1
        bags_per_launch = shape.num_tables * shape.batch_size
    else:
        launches = shape.num_tables
        bags_per_launch = shape.batch_size

    costs = OpCosts(flops_per_bag * bags_per_launch,
                    float(lookups_per_bag * dim * bags_per_launch),
                    float(dim * 4 * bags_per_launch), "eb")
    base = estimate_op(machine, "eb", costs, dtype="int8",
                       in_sram=(c.operands == "sram"),
                       attrs={"pooling": shape.pooling_factor, "dim": dim,
                              "batch": bags_per_launch})

    memory = base.memory_seconds
    if c.operands == "sram":
        # Pinned tables gather at on-chip bandwidth — the hand-tuned
        # "sufficient locality in the SRAM" regime of Section 6.1.
        memory *= machine.dram_gbs / machine.onchip_gbs

    # Software pipelining (Figure 12): a depth-p prefetch keeps the DMA
    # busy p/(p+1) of the time.  The calibration curves were fit at the
    # kernel default depth of 2, so normalise there.
    pipeline = (c.prefetch_rows / (c.prefetch_rows + 1.0)) / (2.0 / 3.0)
    memory /= pipeline

    # Bags round-robin over the sub-grid; the launch finishes when the
    # most-loaded PE drains its share.  The roofline assumed the full
    # grid, so scale by the waves ratio.
    full_grid = config.grid_rows * config.grid_cols
    waves = math.ceil(bags_per_launch / c.num_pes)
    waves_ref = math.ceil(bags_per_launch / full_grid)
    skew = waves / max(waves_ref, 1)
    memory *= skew
    compute = base.compute_seconds * skew

    per_launch = base.launch_seconds + max(compute, memory)
    seconds = per_launch * launches
    return CostedCandidate(
        candidate=c, cost_s=seconds,
        breakdown={"launch_s": base.launch_seconds * launches,
                   "compute_s": compute * launches,
                   "memory_s": memory * launches,
                   "pipeline": pipeline, "waves": float(waves),
                   "launches": float(launches)})
