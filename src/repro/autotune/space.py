"""The mapping space: every legal way to run one operator on the chip.

The MTIA performance story is a mapping story — Figure 7's tiling of an
FC onto a sub-grid, Section 6.1's EB→TBE fusion, Section 5's SRAM
tensor placement, Figure 12's pipelining depth.  The reproduction has
so far hand-picked all of these; :class:`MappingSpace` instead
*enumerates* the legal choices so a search loop can pick them.

Dimensions per operator family:

* **FC** — sub-grid shape (rows × cols, the
  :func:`repro.compiler.partitioner.choose_subgrid` decision),
  ``k_split`` (how many PEs per row cooperate on the reduction
  dimension — the tiling vector of Figure 7), NoC multicast on/off,
  dual-core vs single-core command streams, and operand placement
  (DRAM vs SRAM scratchpad, the
  :mod:`repro.compiler.placement` decision).
* **TBE** — sub-grid shape, ``prefetch_rows`` (software pipelining
  depth, the Figure 12 knob), table placement (DRAM vs SRAM), and
  fusion on/off (one merged TBE launch vs per-table EmbeddingBag
  launches, the :mod:`repro.compiler.fusion` EB→TBE decision).

Legality mirrors the kernels exactly: the FC constraints are the ones
:func:`repro.kernels.fc.plan_fc` raises on (tiling divisibility and the
circular buffers fitting the 128 KB local memory), the TBE constraint
is the CB-fit check in :func:`repro.kernels.tbe.run_tbe`, and SRAM
placement requires the operands to fit the 128 MB SRAM
(``tests/property/test_autotune_properties.py`` proves every enumerated
candidate passes the real kernel planners).

The space is small enough to enumerate outright (a few hundred points);
what is *expensive* is evaluating a point — microseconds for the
opmodel, ~a second for the DES — so the search budget counts
evaluations, not enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.config import MTIA_V1, ChipConfig
from repro.kernels.fc import TILE_K, TILE_MN

from repro.autotune.rng import SplitMix64

#: pipelining depths the TBE axis explores (powers of two; the paper's
#: production kernel sits at the shallow end, hand-tuned at the deep).
PREFETCH_DEPTHS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class FCShape:
    """One FC operator shape family member (C^T = A × B^T)."""

    m: int
    k: int
    n: int
    dtype: str = "int8"

    family = "fc"

    def to_dict(self) -> Dict:
        return {"family": "fc", "m": self.m, "k": self.k, "n": self.n,
                "dtype": self.dtype}

    def describe(self) -> str:
        return f"fc m={self.m} k={self.k} n={self.n} {self.dtype}"


@dataclass(frozen=True)
class TBEShape:
    """One TBE operator shape family member (Figure 12 triplet + batch)."""

    num_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling_factor: int
    batch_size: int

    family = "tbe"

    @property
    def table_bytes(self) -> int:
        """INT8 bytes of all tables (the SRAM-placement fit check)."""
        return (self.num_tables * self.rows_per_table
                * self.embedding_dim)

    def to_dict(self) -> Dict:
        return {"family": "tbe", "num_tables": self.num_tables,
                "rows_per_table": self.rows_per_table,
                "embedding_dim": self.embedding_dim,
                "pooling_factor": self.pooling_factor,
                "batch_size": self.batch_size}

    def describe(self) -> str:
        return (f"tbe tables={self.num_tables} rows={self.rows_per_table} "
                f"dim={self.embedding_dim} pool={self.pooling_factor} "
                f"batch={self.batch_size}")


def shape_from_dict(data: Dict):
    """Inverse of ``FCShape.to_dict`` / ``TBEShape.to_dict``."""
    family = data.get("family")
    if family == "fc":
        return FCShape(m=int(data["m"]), k=int(data["k"]),
                       n=int(data["n"]),
                       dtype=str(data.get("dtype", "int8")))
    if family == "tbe":
        return TBEShape(num_tables=int(data["num_tables"]),
                        rows_per_table=int(data["rows_per_table"]),
                        embedding_dim=int(data["embedding_dim"]),
                        pooling_factor=int(data["pooling_factor"]),
                        batch_size=int(data["batch_size"]))
    raise ValueError(f"unknown shape family {family!r}")


#: Field order of the tiling vector (mutation/crossover operate on it).
CANDIDATE_FIELDS = ("rows", "cols", "k_split", "use_multicast",
                    "dual_core", "prefetch_rows", "operands", "fused")


@dataclass(frozen=True, order=True)
class MappingCandidate:
    """One point in the mapping space.

    Fields irrelevant to the op family are pinned by
    :meth:`canonical` (e.g. ``prefetch_rows`` for FC, ``k_split`` for
    TBE), and every cost/simulation consumer canonicalises first — so
    cost is invariant under re-canonicalisation by construction, and
    the property suite checks it stays that way.
    """

    op: str                     #: "fc" | "tbe"
    rows: int
    cols: int
    k_split: int = 1
    use_multicast: bool = True
    dual_core: bool = True
    prefetch_rows: int = 0      #: TBE pipelining depth (0 = n/a)
    operands: str = "dram"      #: "dram" | "sram"
    fused: bool = True          #: TBE: merged launch vs per-table EBs

    def canonical(self) -> "MappingCandidate":
        """Pin the fields the op family does not use."""
        if self.op == "fc":
            return replace(self, prefetch_rows=0, fused=True)
        return replace(self, k_split=1, use_multicast=True,
                       dual_core=True)

    def key(self) -> Tuple:
        """Canonical total-order key (search tie-breaker, trace id)."""
        c = self.canonical()
        return (c.op, c.rows, c.cols, c.k_split, c.use_multicast,
                c.dual_core, c.prefetch_rows, c.operands, c.fused)

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def to_dict(self) -> Dict:
        c = self.canonical()
        return {"op": c.op, "rows": c.rows, "cols": c.cols,
                "k_split": c.k_split, "use_multicast": c.use_multicast,
                "dual_core": c.dual_core,
                "prefetch_rows": c.prefetch_rows,
                "operands": c.operands, "fused": c.fused}

    def describe(self) -> str:
        c = self.canonical()
        bits = [f"{c.rows}x{c.cols}"]
        if c.op == "fc":
            bits.append(f"k_split={c.k_split}")
            if not c.use_multicast:
                bits.append("no-mcast")
            if not c.dual_core:
                bits.append("single-core")
        else:
            bits.append(f"prefetch={c.prefetch_rows}")
            if not c.fused:
                bits.append("unfused")
        bits.append(c.operands)
        return " ".join(bits)


def candidate_from_dict(data: Dict) -> MappingCandidate:
    return MappingCandidate(
        op=str(data["op"]), rows=int(data["rows"]), cols=int(data["cols"]),
        k_split=int(data.get("k_split", 1)),
        use_multicast=bool(data.get("use_multicast", True)),
        dual_core=bool(data.get("dual_core", True)),
        prefetch_rows=int(data.get("prefetch_rows", 0)),
        operands=str(data.get("operands", "dram")),
        fused=bool(data.get("fused", True))).canonical()


def _pow2_up_to(cap: int) -> List[int]:
    out, p = [], 1
    while p <= cap:
        out.append(p)
        p *= 2
    return out


@dataclass
class MappingSpace:
    """All legal mapping candidates for one operator shape."""

    shape: object               #: FCShape | TBEShape
    config: ChipConfig = field(default_factory=lambda: MTIA_V1)
    #: restrict an axis to a subset, e.g. {"operands": ("dram",)} — the
    #: differential test uses this to make tiny exhaustive spaces.
    restrict: Dict[str, Tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._all: Optional[Tuple[MappingCandidate, ...]] = None

    # -- legality ---------------------------------------------------------
    def legal(self, cand: MappingCandidate) -> Tuple[bool, str]:
        """Whether ``cand`` can actually run; mirrors the kernel checks."""
        c = cand.canonical()
        if c.op != self.shape.family:
            return False, f"op {c.op!r} does not match shape family"
        if not (1 <= c.rows <= self.config.grid_rows
                and 1 <= c.cols <= self.config.grid_cols):
            return False, (f"{c.rows}x{c.cols} exceeds the "
                           f"{self.config.grid_rows}x"
                           f"{self.config.grid_cols} grid")
        if c.operands not in ("dram", "sram"):
            return False, f"unknown operand region {c.operands!r}"
        if c.op == "fc":
            return self._legal_fc(c)
        return self._legal_tbe(c)

    def _legal_fc(self, c: MappingCandidate) -> Tuple[bool, str]:
        shape: FCShape = self.shape
        elem = 1 if shape.dtype == "int8" else 2
        if c.prefetch_rows != 0:
            return False, "prefetch_rows is a TBE axis"
        if c.cols % c.k_split:
            return False, (f"k_split={c.k_split} does not divide "
                           f"cols={c.cols}")
        n_split = c.cols // c.k_split
        if shape.m % (TILE_MN * c.rows):
            return False, (f"m={shape.m} does not tile over "
                           f"{c.rows} rows of {TILE_MN}")
        if shape.n % (TILE_MN * n_split):
            return False, (f"n={shape.n} does not tile over "
                           f"{n_split} column groups of {TILE_MN}")
        if shape.k % (TILE_K * c.k_split):
            return False, (f"k={shape.k} does not tile over "
                           f"k_split={c.k_split} steps of {TILE_K}")
        # The plan_fc CB-fit check, verbatim arithmetic.
        k_per = shape.k // c.k_split
        n_per = shape.n // n_split
        cb_a = (k_per // TILE_K) * TILE_MN * TILE_K * elem
        cb_b = (n_per // TILE_MN) * (k_per // TILE_K) * TILE_MN * TILE_K * elem
        cb_c = TILE_MN * TILE_MN * 4
        capacity = self.config.local_memory.capacity_bytes
        if cb_a + cb_b + cb_c > capacity:
            return False, (f"CBs need {cb_a + cb_b + cb_c} B of local "
                           f"memory, only {capacity} B exist")
        if c.operands == "sram":
            nbytes = (shape.m + shape.n) * shape.k * elem
            if nbytes > self.config.sram.capacity_bytes:
                return False, (f"operands ({nbytes} B) exceed the "
                               f"{self.config.sram.capacity_bytes} B SRAM")
        return True, "ok"

    def _legal_tbe(self, c: MappingCandidate) -> Tuple[bool, str]:
        shape: TBEShape = self.shape
        if c.prefetch_rows < 1:
            return False, "prefetch_rows must be >= 1 for TBE"
        dim = shape.embedding_dim
        cb_bytes = c.prefetch_rows * dim + 2 * dim * 4
        capacity = self.config.local_memory.capacity_bytes
        if cb_bytes > capacity:
            return False, (f"TBE CBs need {cb_bytes} B of local memory, "
                           f"only {capacity} B exist")
        if c.operands == "sram":
            if shape.table_bytes > self.config.sram.capacity_bytes:
                return False, (f"tables ({shape.table_bytes} B) exceed "
                               f"the {self.config.sram.capacity_bytes} B "
                               "SRAM")
        return True, "ok"

    # -- enumeration ------------------------------------------------------
    def _axis_values(self, axis: str, values: Tuple) -> Tuple:
        chosen = self.restrict.get(axis)
        if chosen is None:
            return values
        return tuple(v for v in values if v in chosen)

    def candidates(self) -> Tuple[MappingCandidate, ...]:
        """Every legal candidate, in canonical key order (cached)."""
        if self._all is not None:
            return self._all
        rows_axis = self._axis_values(
            "rows", tuple(_pow2_up_to(self.config.grid_rows)))
        cols_axis = self._axis_values(
            "cols", tuple(_pow2_up_to(self.config.grid_cols)))
        operands_axis = self._axis_values("operands", ("dram", "sram"))
        out: List[MappingCandidate] = []
        if self.shape.family == "fc":
            mcast_axis = self._axis_values("use_multicast", (True, False))
            dual_axis = self._axis_values("dual_core", (True, False))
            for rows in rows_axis:
                for cols in cols_axis:
                    ks_axis = self._axis_values(
                        "k_split",
                        tuple(k for k in _pow2_up_to(cols)
                              if cols % k == 0))
                    for k_split in ks_axis:
                        for mcast in mcast_axis:
                            for dual in dual_axis:
                                for region in operands_axis:
                                    cand = MappingCandidate(
                                        op="fc", rows=rows, cols=cols,
                                        k_split=k_split,
                                        use_multicast=mcast,
                                        dual_core=dual,
                                        operands=region)
                                    if self.legal(cand)[0]:
                                        out.append(cand)
        else:
            prefetch_axis = self._axis_values("prefetch_rows",
                                              PREFETCH_DEPTHS)
            fused_axis = self._axis_values("fused", (True, False))
            for rows in rows_axis:
                for cols in cols_axis:
                    for prefetch in prefetch_axis:
                        for region in operands_axis:
                            for fused in fused_axis:
                                cand = MappingCandidate(
                                    op="tbe", rows=rows, cols=cols,
                                    prefetch_rows=prefetch,
                                    operands=region,
                                    fused=fused).canonical()
                                if self.legal(cand)[0]:
                                    out.append(cand)
        out.sort(key=MappingCandidate.key)
        self._all = tuple(out)
        return self._all

    def __len__(self) -> int:
        return len(self.candidates())

    def __contains__(self, cand: MappingCandidate) -> bool:
        return cand.canonical() in set(self.candidates())

    # -- search moves -----------------------------------------------------
    def neighbors(self, cand: MappingCandidate) -> List[MappingCandidate]:
        """Legal candidates differing from ``cand`` in exactly one axis."""
        base = cand.canonical()
        base_dict = base.to_dict()
        out = []
        for other in self.candidates():
            if other == base:
                continue
            diff = sum(1 for f in CANDIDATE_FIELDS
                       if other.to_dict()[f] != base_dict[f])
            if diff == 1:
                out.append(other)
        return out

    def sample(self, rng: SplitMix64, count: int) -> List[MappingCandidate]:
        """``count`` distinct candidates, deterministic in the stream."""
        return rng.sample(self.candidates(), count)

    def mutate(self, cand: MappingCandidate,
               rng: SplitMix64) -> MappingCandidate:
        """A random single-axis move (or ``cand`` if it has none)."""
        moves = self.neighbors(cand)
        if not moves:
            return cand.canonical()
        return rng.choice(moves)

    def crossover(self, a: MappingCandidate, b: MappingCandidate,
                  rng: SplitMix64) -> MappingCandidate:
        """Mix two parents field-by-field; fall back to ``a`` if the
        child is illegal (joint constraints like cols/k_split can make
        naive mixes untileable)."""
        a, b = a.canonical(), b.canonical()
        fields = {}
        for name in CANDIDATE_FIELDS:
            fields[name] = (a.to_dict()[name] if rng.uniform() < 0.5
                            else b.to_dict()[name])
        child = MappingCandidate(op=a.op, **fields).canonical()
        if self.legal(child)[0]:
            return child
        return a
