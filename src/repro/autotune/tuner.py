"""The two-phase autotuner: cost-model search, DES-validated winners.

:func:`autotune` glues the pieces together the way baybe's two-phase
meta-recommender does — a cheap model proposes, measurements dispose:

1. enumerate the :class:`~repro.autotune.space.MappingSpace` for the
   shape;
2. phase 1: seeded beam + evolutionary search under the opmodel cost
   (:func:`repro.autotune.search.run_search`), producing a replayable
   :class:`~repro.autotune.search.SearchTrace`;
3. phase 2: the top-k survivors *plus the hand-written baseline* run
   through the cycle-level DES (:func:`repro.autotune.validate
   .validate_candidates`), fanning out over ``--jobs`` workers;
4. the winner is the candidate with the fewest *measured* cycles —
   never the predicted ones — and the result records the speedup over
   the hand-written mapping honestly, including when it is ≤ 1.

Multi-seed runs (``--seeds``) repeat phase 1 with consecutive seeds and
pool the distinct survivors before the single phase-2 pass, so extra
seeds only cost cheap model evaluations, not simulations.

The JSON report is schema-pinned (``tests/golden``) and every result
carries a ``replay`` command that reproduces it byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.autotune.search import (SearchConfig, SearchResult, key_str,
                                   run_search)
from repro.autotune.space import MappingCandidate, MappingSpace
from repro.autotune.validate import (ValidatedCandidate, hand_candidate,
                                     validate_candidates)

SCHEMA_VERSION = 1


@dataclass
class AutotuneResult:
    """Everything one ``autotune`` invocation decided and measured."""

    shape: object
    seeds: List[int]
    config: SearchConfig
    searches: List[SearchResult]
    validated: List[ValidatedCandidate]     #: fewest cycles first
    baseline: ValidatedCandidate            #: the hand-written mapping
    jobs: int = 1

    @property
    def winner(self) -> ValidatedCandidate:
        return self.validated[0]

    @property
    def speedup(self) -> float:
        """Hand-written cycles over winner cycles (>1 = tuner wins)."""
        if not self.winner.sim_cycles:
            return 0.0
        return self.baseline.sim_cycles / self.winner.sim_cycles

    @property
    def space_size(self) -> int:
        return self.searches[0].trace.space_size

    def replay_command(self) -> str:
        shape = self.shape
        if shape.family == "fc":
            spec = (f"fc --m {shape.m} --k {shape.k} --n {shape.n} "
                    f"--dtype {shape.dtype}")
        else:
            spec = (f"tbe --tables {shape.num_tables} "
                    f"--rows {shape.rows_per_table} "
                    f"--dim {shape.embedding_dim} "
                    f"--pooling {shape.pooling_factor} "
                    f"--batch {shape.batch_size}")
        seeds = (f"--seed {self.seeds[0]}" if len(self.seeds) == 1
                 else f"--seed {self.seeds[0]} --seeds {len(self.seeds)}")
        return (f"python -m repro.autotune {spec} {seeds} "
                f"--budget {self.config.budget} --topk "
                f"{len(self.validated)} --jobs 1")

    def to_dict(self) -> Dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "shape": self.shape.to_dict(),
            "seeds": list(self.seeds),
            "search": {
                "config": self.config.to_dict(),
                "space_size": self.space_size,
                "budget_used": [s.trace.budget_used for s in self.searches],
                "trace_digests": [s.trace.digest() for s in self.searches],
            },
            "validated": [
                {"candidate": v.candidate.to_dict(),
                 "key": key_str(v.candidate),
                 "predicted_s": v.predicted_s,
                 "sim_cycles": v.sim_cycles,
                 "sim_seconds": v.sim_seconds}
                for v in self.validated],
            "baseline": {
                "candidate": self.baseline.candidate.to_dict(),
                "key": key_str(self.baseline.candidate),
                "sim_cycles": self.baseline.sim_cycles,
                "sim_seconds": self.baseline.sim_seconds,
            },
            "winner": {
                "candidate": self.winner.candidate.to_dict(),
                "key": key_str(self.winner.candidate),
                "sim_cycles": self.winner.sim_cycles,
                "speedup_vs_hand": self.speedup,
                "beats_hand": self.winner.sim_cycles
                < self.baseline.sim_cycles,
            },
            "replay": self.replay_command(),
        }


def autotune(shape, seed: int = 0, seeds: int = 1, budget: int = 200,
             topk: int = 4, jobs: int = 1,
             space: Optional[MappingSpace] = None,
             search_config: Optional[SearchConfig] = None
             ) -> AutotuneResult:
    """Tune ``shape``; deterministic in (seed, seeds, budget, topk)."""
    if space is None:
        space = MappingSpace(shape=shape)
    seed_list = [seed + i for i in range(max(1, seeds))]
    searches: List[SearchResult] = []
    for s in seed_list:
        config = (search_config if search_config is not None
                  else SearchConfig(seed=s, budget=budget))
        if config.seed != s:
            config = SearchConfig(**{**config.to_dict(), "seed": s})
        searches.append(run_search(space, config))

    # Pool distinct phase-1 survivors across seeds, preserving rank.
    chosen: List = []
    seen = set()
    rank = 0
    while len(chosen) < topk:
        progressed = False
        for result in searches:
            if rank < len(result.ranked):
                progressed = True
                cc = result.ranked[rank]
                key = cc.candidate.key()
                if key not in seen and len(chosen) < topk:
                    seen.add(key)
                    chosen.append(cc)
        if not progressed:
            break
        rank += 1

    # The hand-written baseline rides along in the same validation batch
    # (one worker pool, same measurement path for both sides).
    from repro.autotune.cost import candidate_cost
    hand = hand_candidate(shape, config=space.config)
    batch = list(chosen)
    if hand.key() not in seen:
        batch.append(candidate_cost(shape, hand, config=space.config))
    validated = validate_candidates(shape, batch, jobs=jobs)
    by_key = {key_str(v.candidate): v for v in validated}
    baseline = by_key[key_str(hand)]
    # Winner ranking considers only the searched survivors (the baseline
    # still wins the table if it is genuinely fastest and was searched).
    searched = [v for v in validated
                if v.candidate.key() in seen]
    final_config = (search_config if search_config is not None
                    else SearchConfig(seed=seed_list[0], budget=budget))
    return AutotuneResult(shape=shape, seeds=seed_list,
                          config=final_config, searches=searches,
                          validated=searched, baseline=baseline,
                          jobs=jobs)


def render_text(result: AutotuneResult) -> str:
    """Human-readable report (the CLI's default output)."""
    shape = result.shape
    lines = [f"autotune {shape.describe()}",
             f"space: {result.space_size} legal mappings; "
             f"budget used: "
             f"{sum(s.trace.budget_used for s in result.searches)} "
             f"cost evals over {len(result.seeds)} seed(s)",
             "",
             f"{'mapping':<32} {'predicted_us':>12} {'sim_cycles':>12} "
             f"{'vs hand':>8}"]
    base = result.baseline.sim_cycles
    for v in result.validated:
        ratio = base / v.sim_cycles if v.sim_cycles else 0.0
        lines.append(f"{v.candidate.describe():<32} "
                     f"{v.predicted_s * 1e6:>12.2f} "
                     f"{v.sim_cycles:>12.2f} {ratio:>7.2f}x")
    lines.append(f"{'hand: ' + result.baseline.candidate.describe():<32} "
                 f"{'-':>12} {base:>12.2f} {1.0:>7.2f}x")
    verdict = ("BEATS hand-written" if result.winner.sim_cycles < base
               else "does NOT beat hand-written")
    lines += ["",
              f"winner: {result.winner.candidate.describe()} "
              f"({result.speedup:.2f}x vs hand; {verdict})",
              f"replay: {result.replay_command()}"]
    return "\n".join(lines)
