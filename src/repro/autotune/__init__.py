"""Deterministic mapping-space autotuning (tilings, placement, fusion).

The MTIA software stack's performance hinges on mapping decisions —
Figure 7 tilings, sub-grid shapes, SRAM vs DRAM operand placement,
EB→TBE fusion, pipelining depth — that this repo previously hand-picked
per operator.  ``repro.autotune`` searches that space instead:

* :mod:`repro.autotune.space` — legal-candidate enumeration per
  operator shape (:class:`MappingSpace`, :class:`MappingCandidate`);
* :mod:`repro.autotune.cost` — phase-1 ranking with the calibrated
  analytical model (:class:`CostedCandidate`);
* :mod:`repro.autotune.search` — seeded beam + evolutionary search
  with byte-replayable traces (:func:`run_search`);
* :mod:`repro.autotune.validate` — phase-2 DES measurement of the
  survivors (:func:`validate_candidates`, :func:`hand_candidate`);
* :mod:`repro.autotune.tuner` — the end-to-end loop and report
  (:func:`autotune`);
* ``python -m repro.autotune`` — the CLI.

Everything is deterministic in the seed: same seed ⇒ byte-identical
search trace, survivors, and report, at any ``--jobs`` count.  The
conformance runner's ``autotune`` pillar enforces exactly that.
"""

from repro.autotune.cost import CostedCandidate, candidate_cost
from repro.autotune.rng import SplitMix64
from repro.autotune.search import (SearchConfig, SearchResult, SearchTrace,
                                   brute_force, run_search)
from repro.autotune.space import (FCShape, MappingCandidate, MappingSpace,
                                  TBEShape, candidate_from_dict,
                                  shape_from_dict)
from repro.autotune.tuner import (SCHEMA_VERSION, AutotuneResult, autotune,
                                  render_text)
from repro.autotune.validate import (ValidatedCandidate, hand_candidate,
                                     simulate_candidate,
                                     validate_candidates)

__all__ = [
    "AutotuneResult", "CostedCandidate", "FCShape", "MappingCandidate",
    "MappingSpace", "SCHEMA_VERSION", "SearchConfig", "SearchResult",
    "SearchTrace", "SplitMix64", "TBEShape", "ValidatedCandidate",
    "autotune", "brute_force", "candidate_cost", "candidate_from_dict",
    "hand_candidate", "render_text", "run_search", "shape_from_dict",
    "simulate_candidate", "validate_candidates",
]
