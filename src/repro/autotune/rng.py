"""Seeded splitmix64 random stream for deterministic search.

Every draw the autotuner makes — initial candidates, mutation sites,
crossover masks — comes from a :class:`SplitMix64` stream, so the same
seed yields a byte-identical search trace on every platform, Python
version, and ``--jobs`` count.  The generator is Steele et al.'s
splitmix64: a 64-bit counter advanced by the golden-gamma constant and
finalised with two xor-shift-multiply rounds.  It is implemented in
pure integer arithmetic (no numpy ``Generator`` state, no hashing of
``id()``s), which is what makes the determinism contract checkable by
the conformance ``autotune`` pillar rather than merely hoped for.

Independent sub-streams come from :meth:`SplitMix64.fork`: the label is
hashed (FNV-1a) into the child seed, so enabling one search phase can
never shift the draws of another — the same decomposition the
conformance runner uses for its per-pillar seed streams.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

_MASK = (1 << 64) - 1
#: splitmix64's golden-gamma increment (2^64 / phi, odd).
_GAMMA = 0x9E3779B97F4A7C15

T = TypeVar("T")


def _mix(z: int) -> int:
    """The splitmix64 finaliser: two xor-shift-multiply rounds."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK
    return z ^ (z >> 31)


def _fnv1a(text: str) -> int:
    """FNV-1a over the UTF-8 bytes of ``text`` (stable across runs)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK
    return h


class SplitMix64:
    """A tiny, fully deterministic 64-bit random stream."""

    __slots__ = ("_state", "draws")

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK
        #: number of ``next_u64`` calls made — part of the search trace,
        #: so replays can assert stream positions match.
        self.draws = 0

    def next_u64(self) -> int:
        """The next raw 64-bit draw."""
        self._state = (self._state + _GAMMA) & _MASK
        self.draws += 1
        return _mix(self._state)

    def uniform(self) -> float:
        """A float in [0, 1) with 53 random bits."""
        return (self.next_u64() >> 11) * (2.0 ** -53)

    def randrange(self, n: int) -> int:
        """An integer in [0, n), rejection-sampled for exact uniformity."""
        if n <= 0:
            raise ValueError("randrange needs n >= 1")
        limit = _MASK - (_MASK + 1) % n   # last acceptable draw
        while True:
            draw = self.next_u64()
            if draw <= limit:
                return draw % n

    def choice(self, seq: Sequence[T]) -> T:
        return seq[self.randrange(len(seq))]

    def sample(self, seq: Sequence[T], count: int) -> List[T]:
        """``count`` distinct elements, in draw order (Fisher-Yates)."""
        pool = list(seq)
        count = min(count, len(pool))
        out: List[T] = []
        for _ in range(count):
            out.append(pool.pop(self.randrange(len(pool))))
        return out

    def fork(self, label: str) -> "SplitMix64":
        """An independent child stream derived from ``label``.

        Forking does not advance this stream, so adding a fork can
        never shift sibling draws.
        """
        return SplitMix64(_mix(self._state ^ _fnv1a(label)))
