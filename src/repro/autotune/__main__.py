"""``python -m repro.autotune`` — tune one operator shape's mapping.

Examples::

    # the bench FC shape, default seed
    python -m repro.autotune fc --m 512 --k 1024 --n 256

    # the bench TBE shape, 3 seeds pooled, JSON report
    python -m repro.autotune tbe --tables 8 --rows 100000 --dim 64 \\
        --pooling 16 --batch 32 --seeds 3 --json

    # budgeted smoke search, 4 simulation workers
    python -m repro.autotune fc --m 512 --k 1024 --n 256 \\
        --budget 50 --jobs 4

Output (text or ``--json``) is byte-identical for the same seed at any
``--jobs`` count; every report embeds a ``replay`` command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.autotune.space import FCShape, TBEShape
from repro.autotune.tuner import autotune, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune",
        description="Search the mapping space for one operator shape; "
        "phase 1 ranks with the analytical cost model, phase 2 "
        "validates the survivors on the cycle-level simulator.")
    sub = parser.add_subparsers(dest="family", required=True)

    fc = sub.add_parser("fc", help="tune a fully-connected layer")
    fc.add_argument("--m", type=int, default=512)
    fc.add_argument("--k", type=int, default=1024)
    fc.add_argument("--n", type=int, default=256)
    fc.add_argument("--dtype", default="int8", choices=("int8", "fp16"))

    tbe = sub.add_parser("tbe", help="tune a table-batched embedding")
    tbe.add_argument("--tables", type=int, default=8)
    tbe.add_argument("--rows", type=int, default=100_000)
    tbe.add_argument("--dim", type=int, default=64)
    tbe.add_argument("--pooling", type=int, default=16)
    tbe.add_argument("--batch", type=int, default=32)

    for p in (fc, tbe):
        p.add_argument("--seed", type=int, default=0,
                       help="search seed (default %(default)s)")
        p.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="run N consecutive seeds starting at --seed "
                       "and pool the survivors (default %(default)s)")
        p.add_argument("--budget", type=int, default=200,
                       help="max unique cost-model evaluations per seed "
                       "(default %(default)s)")
        p.add_argument("--topk", type=int, default=4,
                       help="survivors to DES-validate "
                       "(default %(default)s)")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="simulation worker processes (default 1); "
                       "results are byte-identical at any value")
        p.add_argument("--json", action="store_true",
                       help="emit the schema-pinned JSON report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.family == "fc":
        shape = FCShape(m=args.m, k=args.k, n=args.n, dtype=args.dtype)
    else:
        shape = TBEShape(num_tables=args.tables,
                         rows_per_table=args.rows,
                         embedding_dim=args.dim,
                         pooling_factor=args.pooling,
                         batch_size=args.batch)
    result = autotune(shape, seed=args.seed, seeds=args.seeds,
                      budget=args.budget, topk=args.topk, jobs=args.jobs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_text(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
