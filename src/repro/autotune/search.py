"""Seeded beam + evolutionary search over a mapping space.

Phase 1 of the two-phase recommender (cheap-model-first, then
measured): rank candidates with :func:`repro.autotune.cost.candidate_cost`
under a hard evaluation budget, producing a :class:`SearchTrace` whose
SHA-256 digest is the determinism contract — the conformance
``autotune`` pillar replays a seed and asserts the digest matches
byte-for-byte.

Determinism rules the implementation follows everywhere:

* every random draw comes from one :class:`~repro.autotune.rng.SplitMix64`
  stream per phase (forked by label, so phases cannot shift each
  other's draws);
* all candidate orderings are total — ties on cost break on the
  canonical candidate key, never on id()/hash()/dict order;
* the budget counts *unique* cost evaluations (memoised by candidate
  key), so re-visiting a candidate is free and the trace length is a
  pure function of (space, seed, config).

The search itself is beam-first: seed a random sample, hill-climb by
expanding single-axis neighbours of the beam, then refine with a small
evolutionary phase (crossover on the tiling vectors + single-axis
mutation) that can jump between beam basins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.autotune.cost import CostedCandidate
from repro.autotune.rng import SplitMix64
from repro.autotune.space import MappingCandidate, MappingSpace

#: safety valve on beam iterations (the budget is the real limiter)
_MAX_BEAM_ROUNDS = 32


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one search run (all part of the determinism contract)."""

    seed: int = 0
    budget: int = 200           #: max unique cost-model evaluations
    init: int = 16              #: random candidates seeding the beam
    beam_width: int = 8
    generations: int = 4        #: evolutionary refinement rounds
    population: int = 12
    mutation_rate: float = 0.5  #: P(mutate) applied to each child

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "budget": self.budget,
                "init": self.init, "beam_width": self.beam_width,
                "generations": self.generations,
                "population": self.population,
                "mutation_rate": self.mutation_rate}


@dataclass
class SearchTrace:
    """Everything the search did, in order — the replay artefact."""

    seed: int
    #: (phase, candidate-key-string, cost_s) per unique evaluation
    events: List[Tuple[str, str, float]] = field(default_factory=list)
    winner_key: str = ""
    space_size: int = 0
    budget_used: int = 0

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of the trace.

        Floats are serialised with ``repr`` (shortest round-trip form),
        which is stable across platforms and Python versions — this is
        what "byte-identical search traces" means operationally.
        """
        payload = json.dumps(
            {"seed": self.seed,
             "events": [[p, k, repr(c)] for p, k, c in self.events],
             "winner": self.winner_key,
             "space_size": self.space_size},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class SearchResult:
    """Ranked survivors of phase 1."""

    ranked: List[CostedCandidate]   #: cheapest first, fully ordered
    trace: SearchTrace

    @property
    def winner(self) -> CostedCandidate:
        return self.ranked[0]

    def top(self, k: int) -> List[CostedCandidate]:
        return self.ranked[:k]


def key_str(cand: MappingCandidate) -> str:
    """The candidate key as a compact stable string (trace/JSON id)."""
    return "/".join(str(part) for part in cand.key())


def run_search(space: MappingSpace, config: SearchConfig,
               cost_fn: Optional[Callable[[MappingCandidate],
                                          CostedCandidate]] = None
               ) -> SearchResult:
    """Search ``space`` under ``config``; deterministic in the seed."""
    if cost_fn is None:
        from repro.autotune.cost import candidate_cost
        cost_fn = lambda c: candidate_cost(space.shape, c,
                                           config=space.config)

    candidates = space.candidates()
    if not candidates:
        raise ValueError(f"mapping space for {space.shape!r} is empty")

    trace = SearchTrace(seed=config.seed, space_size=len(candidates))
    memo: Dict[Tuple, CostedCandidate] = {}

    def evaluate(cand: MappingCandidate,
                 phase: str) -> Optional[CostedCandidate]:
        key = cand.key()
        hit = memo.get(key)
        if hit is not None:
            return hit
        if len(memo) >= config.budget:
            return None                     # budget exhausted
        costed = cost_fn(cand)
        memo[key] = costed
        trace.events.append((phase, key_str(cand), costed.cost_s))
        return costed

    rng = SplitMix64(config.seed)

    # ---- phase 1a: seeded random init --------------------------------
    init_rng = rng.fork("init")
    for cand in space.sample(init_rng, min(config.init, config.budget)):
        evaluate(cand, "init")

    def ranked_all() -> List[CostedCandidate]:
        return sorted(memo.values(), key=CostedCandidate.sort_key)

    # ---- phase 1b: beam hill-climb over single-axis neighbours -------
    for _ in range(_MAX_BEAM_ROUNDS):
        beam = ranked_all()[:config.beam_width]
        best_before = beam[0].sort_key() if beam else None
        exhausted = False
        for member in beam:
            for neighbor in space.neighbors(member.candidate):
                if evaluate(neighbor, "beam") is None:
                    exhausted = True
                    break
            if exhausted:
                break
        now_best = ranked_all()[0].sort_key()
        if exhausted or now_best == best_before:
            break

    # ---- phase 1c: seeded evolutionary refinement --------------------
    evo_rng = rng.fork("evolve")
    for _ in range(config.generations):
        if len(memo) >= config.budget:
            break
        parents = [c.candidate for c in ranked_all()[:config.population]]
        if len(parents) < 2:
            break
        made_progress = False
        for _ in range(config.population):
            a = evo_rng.choice(parents)
            b = evo_rng.choice(parents)
            child = space.crossover(a, b, evo_rng)
            if evo_rng.uniform() < config.mutation_rate:
                child = space.mutate(child, evo_rng)
            if evaluate(child, "evolve") is not None:
                made_progress = True
        if not made_progress:
            break

    # ---- phase 1d: polish — hill-climb from the incumbent best -------
    # The evolutionary phase can land a new best on its final child, one
    # axis away from the true optimum, with nothing left to expand it.
    # Polishing walks single-axis neighbours of the incumbent until no
    # neighbour improves (or the budget runs out); deterministic, no
    # random draws.
    for _ in range(_MAX_BEAM_ROUNDS):
        incumbent = ranked_all()[0]
        exhausted = False
        for neighbor in space.neighbors(incumbent.candidate):
            if evaluate(neighbor, "polish") is None:
                exhausted = True
                break
        if exhausted or ranked_all()[0].sort_key() == incumbent.sort_key():
            break

    ranked = ranked_all()
    trace.winner_key = key_str(ranked[0].candidate)
    trace.budget_used = len(memo)
    return SearchResult(ranked=ranked, trace=trace)


def brute_force(space: MappingSpace,
                cost_fn: Optional[Callable[[MappingCandidate],
                                           CostedCandidate]] = None
                ) -> List[CostedCandidate]:
    """Cost every candidate; the oracle the differential test compares
    the search against (identical ``sort_key`` tie-breaking)."""
    if cost_fn is None:
        from repro.autotune.cost import candidate_cost
        cost_fn = lambda c: candidate_cost(space.shape, c,
                                           config=space.config)
    return sorted((cost_fn(c) for c in space.candidates()),
                  key=CostedCandidate.sort_key)
