"""Phase-2 validation: measure the phase-1 survivors in the DES.

The cost model ranks; the simulator decides.  :func:`validate_candidates`
runs the top-k candidates through the cycle-level simulator
(:func:`repro.kernels.fc.run_fc` / :func:`repro.kernels.tbe.run_tbe`)
and returns DES-measured cycle counts.  Simulations fan out over worker
processes via :func:`repro.parallel.parallel_map` — the worker is a
module-level function of plain dicts so it crosses the spawn boundary,
and results come back in input order, which is why ``--jobs 1`` and
``--jobs 4`` reports are byte-identical.

Candidates with SRAM-placed operands run on a scratchpad-mode
accelerator (the knob added alongside this module); everything else
uses the default cache-mode chip.  ``REPRO_SIM_CACHE`` is honoured by
the kernels themselves, so repeated validations replay from the
sim-result cache.

:func:`hand_candidate` is the hand-written baseline the tuner must
beat: the repo's existing mapping idiom (the
:func:`repro.compiler.partitioner.choose_subgrid` sizing rule and
default ``k_split`` for FC; the full-grid, depth-1 "production kernel"
pipelining of the Figure 12 bench row for TBE), expressed as a
:class:`~repro.autotune.space.MappingCandidate` so both sides are
measured by the same worker.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.compiler.partitioner import _fit_pow2
from repro.config import MTIA_V1, ChipConfig
from repro.kernels.fc import TILE_MN, _default_k_split
from repro.parallel import parallel_map

from repro.autotune.space import (FCShape, MappingCandidate, MappingSpace,
                                  TBEShape, candidate_from_dict,
                                  shape_from_dict)


@dataclass(frozen=True)
class ValidatedCandidate:
    """One DES measurement of one mapping candidate."""

    candidate: MappingCandidate
    predicted_s: float          #: phase-1 cost-model seconds
    sim_cycles: float           #: DES-measured device cycles
    sim_seconds: float          #: cycles at the nominal clock
    wall_s: float               #: host time spent simulating

    def sort_key(self):
        return (self.sim_cycles, self.candidate.key())


def _make_accelerator(operands: str, config: ChipConfig):
    from repro.core.accelerator import Accelerator
    from repro.memory import SRAMMode

    if operands == "sram":
        return Accelerator(config=config, sram_mode=SRAMMode.SCRATCHPAD)
    return Accelerator(config=config)


def simulate_candidate(job: Dict) -> Dict:
    """DES-measure one (shape, candidate) pair.  Module-level and
    dict-in/dict-out so ``parallel_map`` spawn workers can pickle it."""
    shape = shape_from_dict(job["shape"])
    cand = candidate_from_dict(job["candidate"])
    config = MTIA_V1
    start = time.perf_counter()
    if shape.family == "fc":
        from repro.kernels.fc import run_fc

        acc = _make_accelerator(cand.operands, config)
        result = run_fc(acc, m=shape.m, k=shape.k, n=shape.n,
                        dtype=shape.dtype,
                        subgrid=acc.subgrid((0, 0), cand.rows, cand.cols),
                        k_split=cand.k_split,
                        use_multicast=cand.use_multicast,
                        dual_core=cand.dual_core,
                        operand_region=cand.operands)
        cycles = float(result.cycles)
    else:
        from repro.kernels.tbe import TBEConfig, run_tbe

        full = TBEConfig(num_tables=shape.num_tables,
                         rows_per_table=shape.rows_per_table,
                         embedding_dim=shape.embedding_dim,
                         pooling_factor=shape.pooling_factor,
                         batch_size=shape.batch_size)
        acc = _make_accelerator(cand.operands, config)
        subgrid = acc.subgrid((0, 0), cand.rows, cand.cols)
        if cand.fused:
            result = run_tbe(acc, full, subgrid=subgrid,
                             prefetch_rows=cand.prefetch_rows,
                             operand_region=cand.operands)
            cycles = float(result.cycles)
        else:
            # Unfused = one launch per table (the pre-fusion EB form the
            # compiler's EB->TBE pass merges); launches run back-to-back
            # on the same device, so cycles add up and the per-launch
            # dispatch/barrier overhead is measured, not modelled.
            cycles = 0.0
            single = TBEConfig(num_tables=1,
                               rows_per_table=shape.rows_per_table,
                               embedding_dim=shape.embedding_dim,
                               pooling_factor=shape.pooling_factor,
                               batch_size=shape.batch_size)
            for table in range(shape.num_tables):
                result = run_tbe(acc, single, subgrid=subgrid,
                                 prefetch_rows=cand.prefetch_rows,
                                 operand_region=cand.operands,
                                 seed=table)
                cycles += float(result.cycles)
    wall = time.perf_counter() - start
    return {"key": "/".join(str(p) for p in cand.key()),
            "sim_cycles": cycles,
            "sim_seconds": cycles / (config.frequency_ghz * 1e9),
            "wall_s": wall}


def validate_candidates(shape, costed: List, jobs: int = 1
                        ) -> List[ValidatedCandidate]:
    """Run phase-1 survivors through the DES; cheapest-in-cycles first.

    ``costed`` is a list of :class:`repro.autotune.cost.CostedCandidate`.
    Results are deterministic for any ``jobs`` value: the worker is a
    pure function of its job dict and ``parallel_map`` preserves input
    order before this function re-sorts on (cycles, candidate key).
    """
    jobs_list = [{"shape": shape.to_dict(),
                  "candidate": cc.candidate.to_dict()} for cc in costed]
    raw = parallel_map(simulate_candidate, jobs_list, jobs=jobs)
    validated = [
        ValidatedCandidate(candidate=cc.candidate,
                           predicted_s=cc.cost_s,
                           sim_cycles=res["sim_cycles"],
                           sim_seconds=res["sim_seconds"],
                           wall_s=res["wall_s"])
        for cc, res in zip(costed, raw)]
    validated.sort(key=ValidatedCandidate.sort_key)
    return validated


def hand_candidate(shape, config: ChipConfig = MTIA_V1) -> MappingCandidate:
    """The repo's hand-written mapping for ``shape``, as a candidate."""
    if shape.family == "fc":
        rows = _fit_pow2(math.ceil(shape.m / TILE_MN), config.grid_rows)
        cols = _fit_pow2(math.ceil(shape.n / TILE_MN), config.grid_cols)
        space = MappingSpace(shape=shape, config=config)
        # Degrade toward 1x1 if the sized sub-grid does not tile the
        # shape (choose_subgrid sizes by output tiles, not legality).
        while rows > 1 and shape.m % (TILE_MN * rows):
            rows //= 2
        while cols > 1:
            cand = MappingCandidate(op="fc", rows=rows, cols=cols,
                                    k_split=_default_k_split(cols, shape.k))
            if space.legal(cand)[0]:
                break
            cols //= 2
        cand = MappingCandidate(op="fc", rows=rows, cols=cols,
                                k_split=_default_k_split(cols, shape.k))
        ok, reason = space.legal(cand)
        if not ok:
            raise ValueError(f"no hand mapping for {shape!r}: {reason}")
        return cand.canonical()
    # TBE: full grid, production-kernel pipelining depth (the bench's
    # Figure 12 row), tables streamed from DRAM, fused launch.
    return MappingCandidate(op="tbe", rows=config.grid_rows,
                            cols=config.grid_cols, prefetch_rows=1,
                            operands="dram", fused=True).canonical()
