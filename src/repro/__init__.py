"""repro — a Python reproduction of MTIA v1 (ISCA 2023).

The package provides:

* a functional, timing-annotated simulator of the MTIA accelerator
  (:mod:`repro.core`, :mod:`repro.memory`, :mod:`repro.noc`);
* a kernel library implementing the paper's operators on that simulator
  (:mod:`repro.kernels`), including the Section 4 FC mapping;
* a compiler/runtime layer mirroring the paper's software stack
  (:mod:`repro.compiler`, :mod:`repro.runtime`);
* DLRM workload models and the evaluation harness reproducing every
  table and figure in the paper (:mod:`repro.models`, :mod:`repro.eval`,
  :mod:`repro.baselines`, :mod:`repro.platforms`).

Quickstart::

    from repro import Accelerator
    from repro.kernels.fc import run_fc

    acc = Accelerator()
    result = run_fc(acc, m=128, k=256, n=64)   # C^T = A x B^T on the grid
"""

from repro.config import MTIA_V1, ChipConfig
from repro.core import Accelerator

__version__ = "1.0.0"

__all__ = ["Accelerator", "ChipConfig", "MTIA_V1", "__version__"]
