"""Quantisation utilities for model preparation.

INT8 execution is central to the paper's efficiency story ("When
accuracy is sufficient, INT8 quantization unlocks a potential 2x
improvement in FC throughput", Section 6.1).  This module provides the
host-side calibration the compiler uses to bracket FC operators with
quantize/dequantize pairs: per-tensor and per-channel parameter
selection plus quantisation-error diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dtypes import dequantize, quantize


@dataclass(frozen=True)
class QuantParams:
    """Symmetric INT8 parameters, per tensor or per output channel."""

    scale: np.ndarray          #: scalar array () or per-channel (n,)
    zero_point: int = 0

    @property
    def per_channel(self) -> bool:
        return self.scale.ndim > 0 and self.scale.size > 1


def calibrate_per_tensor(values: np.ndarray) -> QuantParams:
    """One symmetric scale covering the whole tensor."""
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    scale = peak / 127.0 if peak > 0 else 1.0
    return QuantParams(scale=np.asarray(scale, dtype=np.float32))

def calibrate_per_channel(weights: np.ndarray, axis: int = 0) -> QuantParams:
    """One scale per output channel (the standard for FC weights).

    ``axis`` is the output-channel dimension; for the (n, k) weight
    layout this library uses, that is axis 0.
    """
    moved = np.moveaxis(weights, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    peaks = np.abs(flat).max(axis=1)
    scales = np.where(peaks > 0, peaks / 127.0, 1.0).astype(np.float32)
    return QuantParams(scale=scales)


def quantize_weights(weights: np.ndarray, params: QuantParams,
                     axis: int = 0) -> np.ndarray:
    """Quantise weights with per-tensor or per-channel parameters."""
    if not params.per_channel:
        return quantize(weights, float(params.scale))
    shape = [1] * weights.ndim
    shape[axis] = -1
    scales = params.scale.reshape(shape)
    q = np.round(weights / scales)
    return np.clip(q, -128, 127).astype(np.int8)


def dequantize_weights(q: np.ndarray, params: QuantParams,
                       axis: int = 0) -> np.ndarray:
    if not params.per_channel:
        return dequantize(q, float(params.scale))
    shape = [1] * q.ndim
    shape[axis] = -1
    return q.astype(np.float32) * params.scale.reshape(shape)


def quantization_error(values: np.ndarray, params: QuantParams,
                       axis: int = 0) -> Tuple[float, float]:
    """(max absolute error, signal-to-quantisation-noise ratio in dB)."""
    q = quantize_weights(values, params, axis)
    back = dequantize_weights(q, params, axis)
    err = back - values
    max_abs = float(np.max(np.abs(err))) if values.size else 0.0
    signal = float(np.mean(values.astype(np.float64) ** 2))
    noise = float(np.mean(err.astype(np.float64) ** 2))
    sqnr_db = 10.0 * np.log10(signal / noise) if noise > 0 else float("inf")
    return max_abs, sqnr_db
