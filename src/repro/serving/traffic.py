"""Seeded synthetic traffic traces at millions-of-users scale.

A recommendation fleet is sized against its *traffic shape*, not a flat
QPS: the paper's Section 2 fleets serve a user population whose request
rate swings diurnally (peak-to-trough factors of 2-3x) and spikes on
viral events.  A :class:`TrafficTrace` turns a user population into a
deterministic arrival-time vector:

* **rate curve** — base rate (``users_millions x qps_per_user``)
  modulated by a diurnal sinusoid (one "compressed day" spans
  ``day_us`` of simulated time) plus any number of
  :class:`Burst` windows (flash crowds, failover inrush);
* **arrivals** — an inhomogeneous Poisson stream drawn window-by-window
  from one seeded generator: per-window counts are Poisson in the
  integrated rate, positions uniform within the window, sorted.  The
  draw order is fixed, so ``(config, seed)`` is a pure function of the
  arrival vector — the same contract every other seeded layer here
  honours.

Traces model *offered* load; what a fleet makes of it is
:mod:`repro.serving.fleet`'s job.  ``max_requests`` bounds the vector
so a mis-scaled trace fails loudly instead of allocating a
billion-element array — capacity questions about millions of users are
answered by simulating a representative slice (seconds of compressed
diurnal time), not a wall-clock day.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Burst", "TrafficTrace", "TRACES", "trace_preset"]


@dataclass(frozen=True)
class Burst:
    """One multiplicative rate burst: ``rate *= magnitude`` inside it."""

    start_us: float
    duration_us: float
    magnitude: float = 2.0

    def __post_init__(self) -> None:
        if self.start_us < 0 or self.duration_us <= 0:
            raise ValueError("burst window must be positive")
        if self.magnitude <= 0:
            raise ValueError("burst magnitude must be positive")

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    def to_dict(self) -> Dict:
        return {"start_us": self.start_us, "duration_us": self.duration_us,
                "magnitude": self.magnitude}


@dataclass(frozen=True)
class TrafficTrace:
    """A deterministic, seeded offered-load curve."""

    #: user population driving the base rate
    users_millions: float = 1.0
    #: steady per-user request rate (QPS per user); base rate is
    #: ``users_millions * 1e6 * qps_per_user``
    qps_per_user: float = 0.02
    #: trace span in simulated microseconds
    duration_us: float = 1_000_000.0
    #: peak-to-mean diurnal swing in [0, 1); 0 disables the sinusoid
    diurnal_amplitude: float = 0.0
    #: period of one compressed "day" of simulated time
    day_us: float = 2_000_000.0
    #: phase offset: 0 starts the trace at mean load rising to peak
    diurnal_phase: float = 0.0
    bursts: Tuple[Burst, ...] = ()
    #: rate-integration window for the Poisson draw
    window_us: float = 10_000.0
    #: hard cap: generation raises instead of exceeding it
    max_requests: int = 2_000_000

    def __post_init__(self) -> None:
        if self.users_millions <= 0 or self.qps_per_user <= 0:
            raise ValueError("user population and per-user rate must be "
                             "positive")
        if self.duration_us <= 0 or self.window_us <= 0 or self.day_us <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    # -- rate curve ------------------------------------------------------
    @property
    def base_qps(self) -> float:
        return self.users_millions * 1e6 * self.qps_per_user

    def rate_at(self, t_us) -> np.ndarray:
        """Offered QPS at time(s) ``t_us`` (vectorised)."""
        t = np.asarray(t_us, dtype=float)
        rate = self.base_qps * (
            1.0 + self.diurnal_amplitude
            * np.sin(2.0 * np.pi * t / self.day_us + self.diurnal_phase))
        for burst in self.bursts:
            inside = (t >= burst.start_us) & (t < burst.end_us)
            rate = np.where(inside, rate * burst.magnitude, rate)
        return rate

    @property
    def peak_qps(self) -> float:
        """Max of the rate curve sampled at window resolution."""
        edges = np.arange(0.0, self.duration_us, self.window_us)
        return float(self.rate_at(edges).max())

    def expected_requests(self) -> float:
        """Integral of the rate curve over the trace span."""
        edges = np.arange(0.0, self.duration_us, self.window_us)
        widths = np.minimum(edges + self.window_us, self.duration_us) - edges
        mids = edges + widths / 2.0
        return float((self.rate_at(mids) * widths / 1e6).sum())

    # -- arrival generation ----------------------------------------------
    def arrivals(self, seed: int = 0) -> np.ndarray:
        """Draw the arrival-time vector (sorted, microseconds).

        Window-by-window inhomogeneous Poisson with one seeded
        generator in fixed window order: same ``(self, seed)``, same
        bytes, always.
        """
        expected = self.expected_requests()
        if expected > self.max_requests:
            raise ValueError(
                f"trace expects ~{expected:.0f} requests, above the "
                f"max_requests cap of {self.max_requests}; shorten "
                "duration_us or shrink the population")
        rng = np.random.default_rng(seed)
        edges = np.arange(0.0, self.duration_us, self.window_us)
        widths = np.minimum(edges + self.window_us, self.duration_us) - edges
        mids = edges + widths / 2.0
        expected_per_window = self.rate_at(mids) * widths / 1e6
        counts = rng.poisson(expected_per_window)
        chunks: List[np.ndarray] = []
        for start, width, count in zip(edges, widths, counts):
            if count:
                chunks.append(start
                              + np.sort(rng.uniform(0.0, width, int(count))))
        if not chunks:
            return np.zeros(0)
        return np.concatenate(chunks)

    # -- scaling helpers -------------------------------------------------
    def scaled_to(self, target_qps: float) -> "TrafficTrace":
        """The same shape rescaled so the *base* rate is ``target_qps``."""
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        return replace(self,
                       qps_per_user=target_qps
                       / (self.users_millions * 1e6))

    def to_dict(self) -> Dict:
        return {
            "users_millions": self.users_millions,
            "qps_per_user": self.qps_per_user,
            "base_qps": self.base_qps,
            "duration_us": self.duration_us,
            "diurnal_amplitude": self.diurnal_amplitude,
            "day_us": self.day_us,
            "diurnal_phase": self.diurnal_phase,
            "bursts": [b.to_dict() for b in self.bursts],
            "window_us": self.window_us,
        }


#: Named trace shapes, all ~1 simulated second so fleet sweeps stay
#: cheap; scale with :meth:`TrafficTrace.scaled_to`.
TRACES: Dict[str, TrafficTrace] = {
    # flat offered load — the differential baseline
    "steady": TrafficTrace(users_millions=1.0, qps_per_user=0.02,
                           duration_us=1_000_000.0),
    # one compressed half-day: load climbs ~60% above mean and back
    "diurnal": TrafficTrace(users_millions=1.0, qps_per_user=0.02,
                            duration_us=1_000_000.0,
                            diurnal_amplitude=0.6, day_us=2_000_000.0),
    # steady load with a 2.5x viral spike through the middle
    "spike": TrafficTrace(
        users_millions=1.0, qps_per_user=0.02, duration_us=1_000_000.0,
        bursts=(Burst(start_us=400_000.0, duration_us=200_000.0,
                      magnitude=2.5),)),
    # rising diurnal shoulder with two stacked flash crowds
    "flash_crowd": TrafficTrace(
        users_millions=1.0, qps_per_user=0.02, duration_us=1_000_000.0,
        diurnal_amplitude=0.4, day_us=4_000_000.0,
        bursts=(Burst(start_us=300_000.0, duration_us=150_000.0,
                      magnitude=2.0),
                Burst(start_us=650_000.0, duration_us=100_000.0,
                      magnitude=3.0))),
}


def trace_preset(name: str,
                 target_qps: Optional[float] = None) -> TrafficTrace:
    """A named trace, optionally rescaled to a base QPS."""
    if name not in TRACES:
        known = ", ".join(sorted(TRACES))
        raise KeyError(f"unknown trace {name!r}; choose one of {known}")
    trace = TRACES[name]
    return trace if target_qps is None else trace.scaled_to(target_qps)
