"""Fleet-scale serving: a router in front of N multi-card replicas.

The paper's Section 5 scales one MTIA card to multi-card partitions;
a datacenter tier scales *that* to many replicas behind a router.  This
module composes the per-replica engines
(:func:`~repro.serving.resilience.simulate_serving_resilient`, fed an
explicit routed arrival vector) into one fleet simulation:

* **routing policies** — seeded and pluggable: ``round_robin``,
  ``least_loaded`` (router-visible backlog), ``power_of_two``
  (two seeded samples, pick the shorter queue), and ``hedge``
  (power-of-two plus a delayed duplicate to the losing sample when the
  chosen backlog is deep; first served copy wins, the loser is wasted
  replica work);
* **sharding vs. replication** — a :class:`ReplicaSpec` is either a
  replicated single-card model or an embedding-sharded multi-card
  group whose batch latency is *max over shards + gather merge*,
  derived from :func:`repro.runtime.multi_card.estimate_multi_card`
  scaling curves (:func:`sharded_latency_table`);
* **traffic** — any sorted arrival vector, usually a seeded
  :class:`~repro.serving.traffic.TrafficTrace` (diurnal/bursty,
  millions-of-users scale);
* **correlated failures** — a :class:`~repro.faults.FaultPlan` whose
  serving-domain events target *replica indices*; rack/power-domain
  plans (:func:`repro.faults.plan.generate_fleet_plan`) take down every
  replica in a blast radius at once;
* **autoscaling** — :func:`simulate_fleet_autoscaled` re-sizes the
  fleet between epochs, driven by the SLO error-budget burn signal
  (:mod:`repro.serving.slo`).

Every routed request keeps an exact attribution identity::

    queue_wait + batch_wait + retry_overhead
        + route_overhead [+ hedge_wait] + execute == latency

measured from the *fleet* arrival: ``route_overhead`` is the router
hop, ``hedge_wait`` the hedge-launch delay when the duplicate won, and
the remaining phases are the winning replica copy's own attribution
(which the per-replica invariant already guarantees sums exactly).

Determinism contract: a fleet run is a pure function of
``(trace, FleetConfig, fault plan)`` — per-replica runs are pure, the
router's randomness is pre-drawn from ``RouterConfig.seed``, and
assembly is in fixed replica order — so reports are **byte-identical
at any ``jobs`` count** (the conformance ``check_fleet_determinism``
and the CI fleet job pin this), and a 1-replica fleet with trivial
routing is **bit-identical** to the bare per-replica engine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import (STATUS_NAMES, STATUS_SERVED,
                                     BatchingConfig, ServingReport)
from repro.serving.traffic import TrafficTrace

__all__ = [
    "ROUTING_POLICIES", "TabularLatencyModel", "ShardedLatencyModel",
    "sharded_latency_table", "ReplicaSpec", "RouterConfig", "FleetConfig",
    "AutoscaleConfig", "RoutingDecision", "route_requests",
    "route_requests_vectorised",
    "ObservedLatencyFeed", "FleetReport", "simulate_fleet", "EpochRecord",
    "FleetAutoscaleReport", "simulate_fleet_autoscaled", "uniform_fleet",
]

#: Pluggable router policies, in documentation order.
ROUTING_POLICIES: Tuple[str, ...] = (
    "round_robin", "least_loaded", "power_of_two", "hedge")


# ---------------------------------------------------------------------------
# latency models the fleet can ship to worker processes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TabularLatencyModel:
    """A picklable batch→latency table (ceil to the next candidate).

    The fleet fans replicas out over worker processes, so its latency
    models must pickle; this is the frozen-table twin of
    :class:`~repro.serving.simulator.BatchLatencyModel` (build one from
    it with :meth:`from_batch_model`).
    """

    batches: Tuple[int, ...]
    latency_us: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.batches or len(self.batches) != len(self.latency_us):
            raise ValueError("batches and latency_us must align and be "
                             "non-empty")
        if list(self.batches) != sorted(self.batches):
            raise ValueError("batches must be sorted ascending")

    @classmethod
    def from_batch_model(cls, model) -> "TabularLatencyModel":
        """Freeze a ``BatchLatencyModel`` into a picklable table."""
        batches = tuple(sorted(model.latency_us))
        return cls(batches=batches,
                   latency_us=tuple(model.latency_us[b] for b in batches))

    def __call__(self, batch: int) -> float:
        idx = bisect.bisect_left(self.batches, batch)
        idx = min(idx, len(self.batches) - 1)
        return self.latency_us[idx]


@dataclass(frozen=True)
class ShardedLatencyModel:
    """Embedding-sharded batch latency: max over shards + merge.

    Splits a base batch latency into a sparse part that fans out over
    ``shards`` embedding shards (the slowest shard gates — modelled as
    the 1/shards share inflated by ``imbalance``) and a dense part that
    does not scale, plus a per-shard gather/merge cost.  The analytical
    twin is :func:`sharded_latency_table`, which derives the same curve
    from :func:`repro.runtime.multi_card.estimate_multi_card` for a
    real model graph.
    """

    base: TabularLatencyModel
    shards: int = 1
    sparse_fraction: float = 0.45
    merge_us_per_shard: float = 8.0
    imbalance: float = 0.1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0.0 <= self.sparse_fraction <= 1.0:
            raise ValueError("sparse_fraction must be in [0, 1]")
        if self.merge_us_per_shard < 0 or self.imbalance < 0:
            raise ValueError("merge/imbalance must be non-negative")

    def __call__(self, batch: int) -> float:
        base = self.base(batch)
        if self.shards == 1:
            return base
        sparse = base * self.sparse_fraction
        dense = base - sparse
        # slowest shard gates the fan-out; gather serialises behind it
        fanout = (sparse / self.shards) * (1.0 + self.imbalance)
        merge = self.merge_us_per_shard * (self.shards - 1)
        return dense + fanout + merge


def sharded_latency_table(model_config, machine, shards: int,
                          candidate_batches: Sequence[int] = (
                              1, 2, 4, 8, 16, 32, 64, 128, 256),
                          p2p_gbs: float = 12.8) -> TabularLatencyModel:
    """Batch→latency table for an embedding-sharded replica group.

    Round-robins the model's embedding tables across ``shards`` cards
    and prices each candidate batch with
    :func:`~repro.runtime.multi_card.estimate_multi_card` — sparse
    lookups overlap across shards (max gates), pooled outputs gather to
    the dense card, the dense pipeline serialises behind the gather.
    This is the paper's Section 5 multi-card partitioning expressed as
    a serving latency model.
    """
    from repro.compiler.partitioner import Partition
    from repro.models.dlrm import build_dlrm_graph
    from repro.runtime.multi_card import estimate_multi_card

    if shards < 1:
        raise ValueError("shards must be >= 1")
    batches = tuple(sorted(candidate_batches))
    table: List[float] = []
    for batch in batches:
        graph = build_dlrm_graph(model_config, batch)
        tables: List[str] = []
        for node in graph:
            if node.op in ("embedding_bag", "tbe"):
                for name in node.inputs[0::2]:
                    if name not in tables:
                        tables.append(name)
        parts = [Partition(card=i, weight_nodes=[], weight_bytes=0,
                           owns_dense=(i == 0)) for i in range(shards)]
        for j, name in enumerate(tables):
            parts[j % shards].weight_nodes.append(name)
        est = estimate_multi_card(graph, machine, p2p_gbs=p2p_gbs,
                                  partitions=parts)
        table.append(est.total_seconds * 1e6)
    return TabularLatencyModel(batches=batches, latency_us=tuple(table))


# ---------------------------------------------------------------------------
# fleet configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicaSpec:
    """One replica of the fleet: a (possibly multi-card) serving group."""

    replica: int
    #: identical cards behind the replica's queue (failover capacity)
    num_cards: int = 1
    #: embedding shards inside the replica (1 = pure replication)
    shards: int = 1
    #: physical blast radii for correlated faults
    rack: int = 0
    power_domain: int = 0
    #: router's per-request service estimate override (us); None derives
    #: it from the latency model at the full batch size
    service_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.replica < 0 or self.num_cards < 1 or self.shards < 1:
            raise ValueError("replica >= 0, num_cards >= 1, shards >= 1")

    def to_dict(self) -> Dict:
        return {"replica": self.replica, "num_cards": self.num_cards,
                "shards": self.shards, "rack": self.rack,
                "power_domain": self.power_domain}


def uniform_fleet(num_replicas: int, num_cards: int = 1, shards: int = 1,
                  racks: int = 1,
                  power_domains: int = 1) -> Tuple[ReplicaSpec, ...]:
    """N identical replicas spread over racks and power domains.

    Racks are contiguous blocks (replicas 0..k-1 share rack 0);
    power domains stripe (replica i is on domain ``i % power_domains``)
    so the two blast radii overlap differently — a rack kill and a
    power kill never silence the same replica set.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    racks = max(1, min(racks, num_replicas))
    power_domains = max(1, min(power_domains, num_replicas))
    per_rack = -(-num_replicas // racks)  # ceil
    return tuple(
        ReplicaSpec(replica=i, num_cards=num_cards, shards=shards,
                    rack=i // per_rack, power_domain=i % power_domains)
        for i in range(num_replicas))


@dataclass(frozen=True)
class RouterConfig:
    """Routing policy and its knobs (all randomness from ``seed``)."""

    policy: str = "round_robin"
    #: router hop added to every request's path (0 = free routing)
    route_latency_us: float = 0.0
    #: policy seed: power-of-two sample pairs are pre-drawn from it
    seed: int = 0
    #: hedge policy: duplicate when the chosen backlog exceeds this
    hedge_backlog_us: float = 2_000.0
    #: the duplicate launches this long after the primary
    hedge_delay_us: float = 200.0

    def __post_init__(self) -> None:
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; expected "
                             f"one of {ROUTING_POLICIES}")
        if (self.route_latency_us < 0 or self.hedge_backlog_us < 0
                or self.hedge_delay_us < 0):
            raise ValueError("router latencies must be non-negative")

    def to_dict(self) -> Dict:
        return {"policy": self.policy,
                "route_latency_us": self.route_latency_us,
                "seed": self.seed,
                "hedge_backlog_us": self.hedge_backlog_us,
                "hedge_delay_us": self.hedge_delay_us}


@dataclass(frozen=True)
class FleetConfig:
    """Everything one fleet run needs besides traffic and models."""

    replicas: Tuple[ReplicaSpec, ...]
    router: RouterConfig = RouterConfig()
    batching: BatchingConfig = BatchingConfig()
    resilience: ResilienceConfig = ResilienceConfig()
    #: topology hints so autoscaling can regenerate specs at any count
    racks: int = 1
    power_domains: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a fleet needs at least one replica")
        if [s.replica for s in self.replicas] != list(
                range(len(self.replicas))):
            raise ValueError("replica specs must be numbered 0..N-1 "
                             "in order")

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def with_replica_count(self, n: int) -> "FleetConfig":
        """The same fleet re-sized to ``n`` replicas (autoscaling)."""
        template = self.replicas[0]
        return replace(self, replicas=uniform_fleet(
            n, num_cards=template.num_cards, shards=template.shards,
            racks=self.racks, power_domains=self.power_domains))

    def to_dict(self) -> Dict:
        return {"replicas": [s.to_dict() for s in self.replicas],
                "router": self.router.to_dict(),
                "batching": {"max_batch": self.batching.max_batch,
                             "max_wait_us": self.batching.max_wait_us},
                "racks": self.racks,
                "power_domains": self.power_domains,
                "seed": self.seed}


@dataclass(frozen=True)
class AutoscaleConfig:
    """Error-budget-burn driven fleet sizing between epochs."""

    epoch_us: float = 200_000.0
    min_replicas: int = 1
    max_replicas: int = 16
    #: add ``step`` replicas when an epoch burns above this
    upscale_burn: float = 1.0
    #: remove one when an epoch burns below this (with hysteresis gap)
    downscale_burn: float = 0.25
    step: int = 1

    def __post_init__(self) -> None:
        if self.epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.downscale_burn >= self.upscale_burn:
            raise ValueError("downscale_burn must sit below upscale_burn")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def to_dict(self) -> Dict:
        return {"epoch_us": self.epoch_us,
                "min_replicas": self.min_replicas,
                "max_replicas": self.max_replicas,
                "upscale_burn": self.upscale_burn,
                "downscale_burn": self.downscale_burn,
                "step": self.step}


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------

@dataclass
class RoutingDecision:
    """The router's verdict for every arrival (pure, replayable)."""

    #: primary replica per request
    assigned: np.ndarray
    #: hedge replica per request (-1 = not hedged)
    hedged: np.ndarray
    #: pre-drawn (n, 2) sample pairs for power-of-two/hedge, else None
    probes: Optional[np.ndarray] = None
    #: router-visible backlog of each probe at decision time
    probe_backlogs: Optional[np.ndarray] = None
    #: backlog of the chosen replica at decision time
    chosen_backlog: Optional[np.ndarray] = None

    @property
    def num_hedged(self) -> int:
        return int(np.count_nonzero(self.hedged >= 0))


def _service_estimates(specs: Sequence[ReplicaSpec],
                       models: Sequence[Callable[[int], float]],
                       batching: BatchingConfig) -> np.ndarray:
    """Router-visible per-request device cost of each replica (us)."""
    out = np.zeros(len(specs))
    for i, (spec, model) in enumerate(zip(specs, models)):
        if spec.service_us is not None:
            out[i] = spec.service_us
        else:
            out[i] = model(batching.max_batch) / batching.max_batch
    return out


def _draw_probes(router: RouterConfig, n: int,
                 num: int) -> Optional[np.ndarray]:
    """Pre-drawn (n, 2) distinct sample pairs for power-of-two/hedge."""
    if router.policy not in ("power_of_two", "hedge"):
        return None
    rng = np.random.default_rng(router.seed)
    probes = rng.integers(0, num, size=(n, 2))
    same = probes[:, 0] == probes[:, 1]
    probes[same, 1] = (probes[same, 0] + 1) % num
    return probes


def route_requests(arrivals: np.ndarray, router: RouterConfig,
                   specs: Sequence[ReplicaSpec],
                   service_us: np.ndarray,
                   record_probes: bool = False) -> RoutingDecision:
    """Assign every arrival to a replica under one routing policy.

    The router tracks an *estimated* backlog per replica (device-time
    microseconds still queued), drained at each replica's card count
    per wall-microsecond and charged the replica's per-request service
    estimate on every assignment — the load signal a real router
    actually has, not the simulator's ground truth.  All sampling
    randomness (power-of-two probe pairs) is pre-drawn from
    ``router.seed``, so the assignment vector is a pure function of
    ``(arrivals, router, specs, service_us)``.

    Backlog is *charge-time anchored*: each replica keeps its backlog
    as of the last time it was charged, and an arrival at ``t``
    observes ``max(backlog - (t - charged_at) * drain, 0)`` in one
    expression.  That makes the observation a pure function of the
    replica's last charge — the property
    :func:`route_requests_vectorised` exploits — instead of a running
    per-arrival decay chain whose float rounding depends on every
    intervening arrival.

    This is the *reference* implementation: a plain per-arrival loop
    kept deliberately simple so the fast router can be differential-
    tested against it (``tests/serving/test_fleet_vectorised.py``
    asserts bit-identical decisions on every policy).
    """
    n = int(arrivals.size)
    num = len(specs)
    assigned = np.zeros(n, dtype=np.int64)
    hedged = np.full(n, -1, dtype=np.int64)
    backlog = np.zeros(num)
    charged_at = np.full(num, float(arrivals[0]) if n else 0.0)
    drain = np.array([float(s.num_cards) for s in specs])
    policy = router.policy

    probes = _draw_probes(router, n, num)
    probe_backlogs = (np.zeros((n, 2)) if record_probes and probes is not None
                      else None)
    chosen_backlog = np.zeros(n) if record_probes else None

    def observe(r: int, t: float) -> float:
        value = backlog[r] - (t - charged_at[r]) * drain[r]
        return value if value > 0.0 else 0.0

    rr = 0
    for i in range(n):
        t = float(arrivals[i])
        if policy == "round_robin":
            r = rr
            rr = rr + 1 if rr + 1 < num else 0
            obs_r = observe(r, t)
        elif policy == "least_loaded":
            obs = np.maximum(backlog - (t - charged_at) * drain, 0.0)
            r = int(np.argmin(obs))          # ties -> lowest index
            obs_r = float(obs[r])
        else:
            a, b = int(probes[i, 0]), int(probes[i, 1])
            obs_a = observe(a, t)
            obs_b = observe(b, t)
            if probe_backlogs is not None:
                probe_backlogs[i, 0] = obs_a
                probe_backlogs[i, 1] = obs_b
            if obs_a < obs_b or (obs_a == obs_b and a <= b):
                r, obs_r = a, obs_a
            else:
                r, obs_r = b, obs_b
            if (policy == "hedge" and num > 1
                    and obs_r > router.hedge_backlog_us):
                other = b if r == a else a
                if other != r:
                    hedged[i] = other
                    obs_other = obs_b if other == b else obs_a
                    backlog[other] = obs_other + service_us[other]
                    charged_at[other] = t
        if chosen_backlog is not None:
            chosen_backlog[i] = obs_r
        assigned[i] = r
        backlog[r] = obs_r + service_us[r]
        charged_at[r] = t
    return RoutingDecision(assigned=assigned, hedged=hedged, probes=probes,
                           probe_backlogs=probe_backlogs,
                           chosen_backlog=chosen_backlog)


def route_requests_vectorised(arrivals: np.ndarray, router: RouterConfig,
                              specs: Sequence[ReplicaSpec],
                              service_us: np.ndarray,
                              record_probes: bool = False
                              ) -> RoutingDecision:
    """:func:`route_requests`, restructured for throughput.

    Bit-identical to the reference router — same anchored-backlog
    arithmetic, same tie-breaks, same pre-drawn probes — but shaped per
    policy instead of one generic loop:

    * ``round_robin`` ignores backlog entirely, so the assignment
      vector is one numpy expression (``arange(n) % num``); the
      anchored backlog is only replayed (per replica, not per arrival)
      when ``record_probes`` asks for it;
    * ``power_of_two`` / ``hedge`` observe exactly two replicas per
      arrival, so each decision is O(1) python-float work against the
      anchored ``(backlog, charged_at)`` state — no per-arrival
      full-fleet numpy decay;
    * ``least_loaded`` must scan every replica per arrival (argmin is
      inherently sequential against its own charges), but on the
      anchored state with python floats, which beats the former
      whole-array ``np.maximum`` chain for fleet-sized replica counts.

    The differential test runs every policy (with hedging and fault
    plans downstream) through both routers and asserts the decisions —
    and the final fleet JSON — are byte-identical.
    """
    n = int(arrivals.size)
    num = len(specs)
    policy = router.policy
    hedged = np.full(n, -1, dtype=np.int64)
    probes = _draw_probes(router, n, num)
    probe_backlogs = (np.zeros((n, 2)) if record_probes and probes is not None
                      else None)
    chosen_backlog = np.zeros(n) if record_probes else None

    times = np.asarray(arrivals, dtype=float)
    t0 = float(times[0]) if n else 0.0
    drain = [float(s.num_cards) for s in specs]
    service = [float(v) for v in service_us]

    if policy == "round_robin":
        assigned = np.arange(n, dtype=np.int64) % num
        if chosen_backlog is not None:
            # Backlog never steers round-robin; replay it per replica
            # (each replica's state only changes at its own arrivals).
            for r in range(num):
                ts = times[r::num].tolist()
                b, last, d, s = 0.0, t0, drain[r], service[r]
                for j, t in enumerate(ts):
                    obs = b - (t - last) * d
                    if obs < 0.0:
                        obs = 0.0
                    chosen_backlog[r + j * num] = obs
                    b = obs + s
                    last = t
        return RoutingDecision(assigned=assigned, hedged=hedged,
                               probes=probes,
                               probe_backlogs=probe_backlogs,
                               chosen_backlog=chosen_backlog)

    assigned = np.zeros(n, dtype=np.int64)
    assigned_l = [0] * n
    hedged_l = None
    backlog = [0.0] * num
    charged_at = [t0] * num
    ts = times.tolist()

    if policy == "least_loaded":
        for i, t in enumerate(ts):
            r, obs_r = 0, 0.0
            first = True
            for k in range(num):
                obs = backlog[k] - (t - charged_at[k]) * drain[k]
                if obs < 0.0:
                    obs = 0.0
                if first or obs < obs_r:    # strict: ties keep lowest
                    r, obs_r, first = k, obs, False
            if chosen_backlog is not None:
                chosen_backlog[i] = obs_r
            assigned_l[i] = r
            backlog[r] = obs_r + service[r]
            charged_at[r] = t
        assigned[:] = assigned_l
        return RoutingDecision(assigned=assigned, hedged=hedged,
                               probes=probes,
                               probe_backlogs=probe_backlogs,
                               chosen_backlog=chosen_backlog)

    # power_of_two / hedge: O(1) per arrival against the two probes
    pa = probes[:, 0].tolist()
    pb = probes[:, 1].tolist()
    do_hedge = policy == "hedge" and num > 1
    hedge_backlog = router.hedge_backlog_us
    if do_hedge:
        hedged_l = [-1] * n
    for i, t in enumerate(ts):
        a = pa[i]
        b = pb[i]
        obs_a = backlog[a] - (t - charged_at[a]) * drain[a]
        if obs_a < 0.0:
            obs_a = 0.0
        obs_b = backlog[b] - (t - charged_at[b]) * drain[b]
        if obs_b < 0.0:
            obs_b = 0.0
        if probe_backlogs is not None:
            probe_backlogs[i, 0] = obs_a
            probe_backlogs[i, 1] = obs_b
        if obs_a < obs_b or (obs_a == obs_b and a <= b):
            r, obs_r = a, obs_a
        else:
            r, obs_r = b, obs_b
        if do_hedge and obs_r > hedge_backlog:
            other = b if r == a else a
            if other != r:
                hedged_l[i] = other
                obs_other = obs_b if other == b else obs_a
                backlog[other] = obs_other + service[other]
                charged_at[other] = t
        if chosen_backlog is not None:
            chosen_backlog[i] = obs_r
        assigned_l[i] = r
        backlog[r] = obs_r + service[r]
        charged_at[r] = t
    assigned[:] = assigned_l
    if hedged_l is not None:
        hedged[:] = hedged_l
    return RoutingDecision(assigned=assigned, hedged=hedged, probes=probes,
                           probe_backlogs=probe_backlogs,
                           chosen_backlog=chosen_backlog)


# ---------------------------------------------------------------------------
# the fleet report
# ---------------------------------------------------------------------------

def _empty() -> np.ndarray:
    return np.zeros(0)


@dataclass
class ObservedLatencyFeed:
    """Per-replica *measured* completion feed from one fleet run.

    The router's ``least_loaded`` / ``power_of_two`` / ``hedge``
    policies steer by a static per-request service estimate
    (:func:`_service_estimates`).  This feed is the measured
    alternative: for every replica, a mergeable
    :class:`~repro.obs.sketch.QuantileSketch` over the fleet-view
    latencies of the requests it served, a
    :class:`~repro.obs.timeseries.WindowedSeries` of the same values
    keyed by *completion* time (the instant a real router would learn
    them), and a per-request device-cost estimate derived from observed
    batch execution (``execute_us / batch_size`` per served copy) — the
    like-for-like replacement for :attr:`ReplicaSpec.service_us`.
    """

    window_us: float
    #: replica -> sketch of fleet-view latencies it served
    sketches: Dict[int, "object"]
    #: replica -> windowed series of the same values at completion time
    series: Dict[int, "object"]
    #: replica -> measured per-request device cost (us); absent when the
    #: replica served nothing this run
    service_us: Dict[int, float]

    def observed_service_estimates(
            self, fallback: Sequence[float]) -> np.ndarray:
        """Per-replica service estimate, measured where available.

        ``fallback`` supplies the static estimate for replicas that
        served nothing (a dead or fully-drained replica reports no
        completions, so the router must keep its prior).
        """
        out = np.asarray(fallback, dtype=float).copy()
        for replica, value in self.service_us.items():
            out[replica] = value
        return out

    def to_dict(self, max_windows: int = 16) -> Dict:
        rows = []
        for replica in sorted(self.sketches):
            sketch = self.sketches[replica]
            series = self.series[replica]
            rows.append({
                "replica": replica,
                "served": int(sketch.count),
                "latency_us": {"p50": sketch.p50, "p95": sketch.p95,
                               "p99": sketch.p99, "max": sketch.max},
                "service_us": self.service_us.get(replica),
                "windows": series.resampled(max_windows).to_dict(),
            })
        return {"window_us": self.window_us, "replicas": rows}


@dataclass
class FleetReport:
    """What one fleet simulation measured, per routed request.

    Quacks like a :class:`~repro.serving.simulator.ServingReport` where
    it matters (``arrivals_us`` / ``latencies_us`` / ``served_mask`` /
    ``abort_us``), so :func:`repro.serving.slo.slo_from_report` and the
    telemetry layer consume it unchanged.
    """

    config: FleetConfig
    arrivals_us: np.ndarray
    latencies_us: np.ndarray
    queue_wait_us: np.ndarray
    batch_wait_us: np.ndarray
    execute_us: np.ndarray
    retry_overhead_us: np.ndarray
    route_overhead_us: np.ndarray
    hedge_wait_us: np.ndarray
    status: np.ndarray
    #: replica whose copy served (or finally aborted) each request
    replica: np.ndarray
    #: the router's primary assignment (== ``replica`` unless a hedge won)
    assigned: np.ndarray
    hedged: np.ndarray
    #: winning copy's local index inside ``per_replica[replica[i]]``
    replica_pos: np.ndarray = field(default_factory=_empty)
    abort_us: np.ndarray = field(default_factory=_empty)
    per_replica: List[ServingReport] = field(default_factory=list)
    telemetry: Optional[object] = None
    hedged_requests: int = 0
    hedge_wins: int = 0

    # -- ServingReport-compatible queries --------------------------------
    @property
    def served_mask(self) -> Optional[np.ndarray]:
        if self.status.size == 0:
            return None
        return self.status == STATUS_SERVED

    @property
    def availability(self) -> float:
        n = self.arrivals_us.size
        if n == 0:
            return 1.0
        mask = self.served_mask
        if mask is None:
            return 1.0
        return float(np.count_nonzero(mask)) / n

    def counts_by_status(self) -> Dict[str, int]:
        if self.status.size == 0:
            return {name: 0 for name in STATUS_NAMES}
        return {name: int(np.count_nonzero(self.status == code))
                for code, name in enumerate(STATUS_NAMES)}

    def percentile(self, q: float) -> float:
        mask = self.served_mask
        lat = self.latencies_us if mask is None else self.latencies_us[mask]
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def p50_us(self) -> float:
        return self.percentile(50)

    @property
    def p99_us(self) -> float:
        return self.percentile(99)

    def meets_sla(self, sla_us: float, q: float = 99.0) -> bool:
        p = self.percentile(q)
        return bool(p <= sla_us)

    def breakdown_means(self) -> Dict[str, float]:
        """Mean microseconds per phase across served requests."""
        mask = self.served_mask
        out: Dict[str, float] = {}
        for name in ("queue_wait", "batch_wait", "retry_overhead",
                     "route_overhead", "hedge_wait", "execute"):
            values = getattr(self, f"{name}_us")
            if values.size == 0:
                out[name] = 0.0
                continue
            served = values if mask is None else values[mask]
            out[name] = float(served.mean()) if served.size else 0.0
        return out

    # -- conservation ----------------------------------------------------
    def conservation(self) -> Dict:
        """Every arrival is served, shed, or aborted — and adds up.

        Fleet totals count each request once (the winning copy); the
        per-replica engines additionally processed the hedge
        duplicates, so ``sum(replica requests) == fleet requests +
        hedged copies`` exactly.
        """
        fleet_counts = self.counts_by_status()
        replica_totals = sum(r.arrivals_us.size for r in self.per_replica)
        n = int(self.arrivals_us.size)
        return {
            "fleet_requests": n,
            "fleet_counts": fleet_counts,
            "accounted": sum(fleet_counts.values()),
            "replica_requests": int(replica_totals),
            "hedged_copies": int(self.hedged_requests),
            "conserved": bool(
                sum(fleet_counts.values()) == n
                and replica_totals == n + self.hedged_requests),
        }

    def replica_rows(self) -> List[Dict]:
        """Per-replica summary table (JSON-ready, replica order)."""
        rows = []
        for spec, report in zip(self.config.replicas, self.per_replica):
            counts = report.counts_by_status()
            rows.append({
                "replica": spec.replica,
                "num_cards": spec.num_cards,
                "shards": spec.shards,
                "rack": spec.rack,
                "power_domain": spec.power_domain,
                "requests": int(report.arrivals_us.size),
                "served": counts["served"],
                "shed": counts["shed"],
                "timeout": counts["timeout"],
                "failed": counts["failed"],
                "p50_us": report.percentile(50),
                "p99_us": report.percentile(99),
                "busy_fraction": report.busy_fraction,
                "qps_offered": report.qps_offered,
            })
        return rows

    # -- observed-latency completion feed --------------------------------
    def observed_latency(self, window_us: float = 5_000.0,
                         relative_accuracy: float = 0.01
                         ) -> ObservedLatencyFeed:
        """Measured per-replica latency feed (see
        :class:`ObservedLatencyFeed`).

        Ingests every *served* request into its winning replica's
        sketch and windowed series in completion-time order — the
        stream a live router would observe — so repeated calls (and any
        ``jobs`` count) produce bit-identical feeds.  The per-replica
        ``service_us`` estimate divides each served copy's batch
        execution time by its batch size, over *all* copies the replica
        processed (hedge duplicates included: they cost device time
        whether or not they won).
        """
        from repro.obs.sketch import QuantileSketch
        from repro.obs.timeseries import WindowedSeries

        sketches: Dict[int, QuantileSketch] = {}
        series: Dict[int, WindowedSeries] = {}
        for spec in self.config.replicas:
            sketches[spec.replica] = QuantileSketch(relative_accuracy)
            series[spec.replica] = WindowedSeries(
                window_us, track_quantiles=True,
                relative_accuracy=relative_accuracy,
                name=f"replica{spec.replica}.observed_latency_us")

        mask = self.served_mask
        if mask is not None and self.arrivals_us.size:
            completion = self.arrivals_us + self.latencies_us
            order = np.argsort(completion, kind="stable")
            for i in order.tolist():
                if not mask[i]:
                    continue
                r = int(self.replica[i])
                value = float(self.latencies_us[i])
                sketches[r].add(value)
                series[r].record(float(completion[i]), value)

        service: Dict[int, float] = {}
        for spec, report in zip(self.config.replicas, self.per_replica):
            local = report.served_mask
            if (local is None or report.batch_index.size == 0
                    or not report.batches):
                continue
            indices = report.batch_index[local].astype(np.int64)
            if indices.size == 0:
                continue
            sizes = np.array([report.batches[j].size
                              for j in indices.tolist()], dtype=float)
            per_request = report.execute_us[local] / sizes
            service[spec.replica] = float(np.median(per_request))
        return ObservedLatencyFeed(window_us=window_us, sketches=sketches,
                                   series=series, service_us=service)

    def with_observed_service(self,
                              window_us: float = 5_000.0) -> FleetConfig:
        """This run's config with measured service estimates plugged in.

        The closed loop: simulate once, then re-route the next run with
        each :attr:`ReplicaSpec.service_us` overridden by the observed
        per-request device cost (static estimates stay wherever a
        replica served nothing).
        """
        feed = self.observed_latency(window_us=window_us)
        estimates = feed.service_us
        specs = tuple(
            replace(spec, service_us=estimates.get(spec.replica,
                                                   spec.service_us))
            for spec in self.config.replicas)
        return replace(self.config, replicas=specs)

    def to_dict(self, max_windows: int = 64) -> Dict:
        """Canonical JSON-ready dump (stable keys and ordering)."""
        span_us = (float(self.arrivals_us[-1] - self.arrivals_us[0])
                   if self.arrivals_us.size > 1 else 0.0)
        served = self.counts_by_status()["served"]
        return {
            "config": self.config.to_dict(),
            "policy": self.config.router.policy,
            "requests": int(self.arrivals_us.size),
            "qps_offered": (self.arrivals_us.size / (span_us / 1e6)
                            if span_us > 0 else 0.0),
            "qps_served": (served / (span_us / 1e6) if span_us > 0
                           else 0.0),
            "availability": self.availability,
            "counts": self.counts_by_status(),
            "latency_us": {"p50": self.percentile(50),
                           "p95": self.percentile(95),
                           "p99": self.percentile(99)},
            "breakdown_us": self.breakdown_means(),
            "routing": {
                "policy": self.config.router.policy,
                "route_latency_us": self.config.router.route_latency_us,
                "hedged_requests": int(self.hedged_requests),
                "hedge_wins": int(self.hedge_wins),
                "requests_per_replica": [
                    int(np.count_nonzero(self.assigned == r))
                    for r in range(self.config.num_replicas)],
            },
            "conservation": self.conservation(),
            "replicas": self.replica_rows(),
            "observed_latency": self.observed_latency().to_dict(
                max_windows=min(max_windows, 16)),
            "telemetry": (self.telemetry.to_dict(max_windows=max_windows)
                          if self.telemetry is not None else None),
        }


# ---------------------------------------------------------------------------
# the fleet simulation
# ---------------------------------------------------------------------------

def _replica_plan_events(fault_plan, replica: int):
    """This replica's serving-domain windows, retargeted replica-wide.

    Fleet-level plans target *replica* indices; inside the replica the
    event covers every card (a rack or power-domain loss does not spare
    card 1), so the local plan uses the wildcard target.
    """
    if fault_plan is None:
        return ()
    events = []
    for event in fault_plan.serving_events:
        if event.target in (replica, -1):
            events.append(replace(event, target=-1))
    return tuple(events)


def _replica_job(task) -> ServingReport:
    """One replica's serving run (module-level: survives ``spawn``)."""
    (replica, model, batching, resilience, arrivals, plan_events,
     collect_telemetry) = task
    faults = None
    if plan_events:
        from repro.faults import FaultInjector, FaultPlan
        faults = FaultInjector(FaultPlan(events=plan_events))
    return simulate_serving_resilient(
        model, qps=0.0, batching=batching, resilience=resilience,
        num_requests=0, seed=0, faults=faults, registry=None,
        collect_telemetry=collect_telemetry, replica=replica,
        arrivals=arrivals)


def simulate_fleet(latency_model, traffic, config: FleetConfig,
                   fault_plan=None, jobs: int = 1,
                   collect_telemetry: bool = True,
                   seed: Optional[int] = None) -> FleetReport:
    """Route one traffic trace across the fleet and simulate every replica.

    ``latency_model`` is one picklable callable (replication: every
    replica runs it) or a sequence of one per replica (heterogeneous
    fleets, sharded groups via :class:`ShardedLatencyModel`).
    ``traffic`` is a :class:`~repro.serving.traffic.TrafficTrace`
    (arrivals drawn from ``seed``, default ``config.seed``) or an
    explicit sorted arrival vector.  ``fault_plan`` is a
    :class:`~repro.faults.FaultPlan` whose serving events target
    replica indices.  ``jobs > 1`` fans replicas out over worker
    processes; the report is byte-identical at any job count.
    """
    specs = config.replicas
    num = len(specs)
    models: List[Callable[[int], float]]
    if callable(latency_model):
        models = [latency_model] * num
    else:
        models = list(latency_model)
        if len(models) != num:
            raise ValueError(f"{len(models)} latency models for "
                             f"{num} replicas")

    if isinstance(traffic, TrafficTrace):
        arrivals = traffic.arrivals(config.seed if seed is None else seed)
    else:
        arrivals = np.asarray(traffic, dtype=float)
    n = int(arrivals.size)
    if n == 0:
        raise ValueError("the traffic trace produced no arrivals")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be sorted")

    router = config.router
    service_us = _service_estimates(specs, models, config.batching)
    decision = route_requests_vectorised(arrivals, router, specs,
                                         service_us)

    # -- per-replica arrival vectors + local-position maps ----------------
    route_us = router.route_latency_us
    hedge_us = router.hedge_delay_us
    local_arrivals: List[np.ndarray] = []
    #: per replica: (fleet request index, is_hedge) per local position
    local_owner: List[np.ndarray] = []
    local_is_hedge: List[np.ndarray] = []
    for r in range(num):
        primary = np.flatnonzero(decision.assigned == r)
        hedge = np.flatnonzero(decision.hedged == r)
        times = np.concatenate([arrivals[primary] + route_us,
                                arrivals[hedge] + route_us + hedge_us])
        owners = np.concatenate([primary, hedge])
        flags = np.concatenate([np.zeros(primary.size, dtype=bool),
                                np.ones(hedge.size, dtype=bool)])
        order = np.argsort(times, kind="stable")
        local_arrivals.append(times[order])
        local_owner.append(owners[order])
        local_is_hedge.append(flags[order])

    resilience = config.resilience
    tasks = [(r, models[r], config.batching,
              replace(resilience, num_cards=specs[r].num_cards),
              local_arrivals[r], _replica_plan_events(fault_plan, r),
              collect_telemetry)
             for r in range(num)]
    from repro.parallel import parallel_map
    reports = parallel_map(_replica_job, tasks, jobs=jobs)

    # -- assemble the fleet view (winner per request, fixed order) --------
    copy_latency = np.full((n, 2), np.nan)   # [:, 0] primary, [:, 1] hedge
    copy_status = np.full((n, 2), -1, dtype=np.int64)
    copy_pos = np.full((n, 2), -1, dtype=np.int64)
    for r in range(num):
        report = reports[r]
        owners = local_owner[r]
        flags = local_is_hedge[r]
        which = flags.astype(np.int64)
        copy_latency[owners, which] = report.latencies_us
        copy_status[owners, which] = (report.status
                                      if report.status.size
                                      else np.zeros(owners.size,
                                                    dtype=np.int64))
        copy_pos[owners, which] = np.arange(owners.size)

    has_hedge = decision.hedged >= 0
    primary_finish = route_us + copy_latency[:, 0]
    hedge_finish = np.where(has_hedge,
                            route_us + hedge_us + copy_latency[:, 1],
                            np.inf)
    primary_served = copy_status[:, 0] == STATUS_SERVED
    hedge_served = has_hedge & (copy_status[:, 1] == STATUS_SERVED)
    # the first *served* copy wins; primary wins ties and no-winner cases
    use_hedge = np.where(
        primary_served & hedge_served, hedge_finish < primary_finish,
        hedge_served & ~primary_served)
    winner_replica = np.where(use_hedge, decision.hedged, decision.assigned)
    hedge_wins = int(np.count_nonzero(use_hedge))

    latencies = np.zeros(n)
    queue_wait = np.zeros(n)
    batch_wait = np.zeros(n)
    execute = np.zeros(n)
    retry_overhead = np.zeros(n)
    status = np.zeros(n, dtype=np.int8)
    route_overhead = np.full(n, route_us)
    hedge_wait = np.where(use_hedge, hedge_us, 0.0)
    winner_pos = np.zeros(n, dtype=np.int64)
    for r in range(num):
        report = reports[r]
        mine = np.flatnonzero(winner_replica == r)
        if mine.size == 0:
            continue
        pos = copy_pos[mine, use_hedge[mine].astype(np.int64)]
        winner_pos[mine] = pos
        latencies[mine] = (route_overhead[mine] + hedge_wait[mine]
                           + report.latencies_us[pos])
        queue_wait[mine] = report.queue_wait_us[pos]
        batch_wait[mine] = report.batch_wait_us[pos]
        execute[mine] = report.execute_us[pos]
        if report.retry_overhead_us.size:
            retry_overhead[mine] = report.retry_overhead_us[pos]
        if report.status.size:
            status[mine] = report.status[pos]

    abort_us = np.where(status == STATUS_SERVED, np.nan,
                        arrivals + latencies)

    telemetry = None
    if collect_telemetry:
        from repro.serving.telemetry import ServingTelemetry
        parts = [report.telemetry for report in reports
                 if report.telemetry is not None]
        if parts:
            telemetry = ServingTelemetry.merge_all(parts)

    return FleetReport(
        config=config,
        arrivals_us=arrivals,
        latencies_us=latencies,
        queue_wait_us=queue_wait,
        batch_wait_us=batch_wait,
        execute_us=execute,
        retry_overhead_us=retry_overhead,
        route_overhead_us=route_overhead,
        hedge_wait_us=hedge_wait,
        status=status,
        replica=winner_replica,
        assigned=decision.assigned,
        hedged=decision.hedged,
        replica_pos=winner_pos,
        abort_us=abort_us,
        per_replica=list(reports),
        telemetry=telemetry,
        hedged_requests=decision.num_hedged,
        hedge_wins=hedge_wins,
    )


# ---------------------------------------------------------------------------
# autoscaling
# ---------------------------------------------------------------------------

@dataclass
class EpochRecord:
    """One autoscaling epoch: load, standing, and the scaler's verdict."""

    index: int
    start_us: float
    end_us: float
    replicas: int
    requests: int
    p99_us: float
    availability: float
    burn: float
    action: str                     #: "up" | "down" | "hold"

    def to_dict(self) -> Dict:
        return {"index": self.index, "start_us": self.start_us,
                "end_us": self.end_us, "replicas": self.replicas,
                "requests": self.requests, "p99_us": self.p99_us,
                "availability": self.availability, "burn": self.burn,
                "action": self.action}


@dataclass
class FleetAutoscaleReport:
    """An autoscaled run: per-epoch fleet reports plus the size timeline."""

    sla_us: float
    availability_target: float
    autoscale: AutoscaleConfig
    epochs: List[EpochRecord] = field(default_factory=list)
    reports: List[FleetReport] = field(default_factory=list)

    @property
    def replica_timeline(self) -> List[int]:
        return [e.replicas for e in self.epochs]

    @property
    def total_requests(self) -> int:
        return sum(e.requests for e in self.epochs)

    def to_dict(self) -> Dict:
        return {
            "sla_us": self.sla_us,
            "availability_target": self.availability_target,
            "autoscale": self.autoscale.to_dict(),
            "epochs": [e.to_dict() for e in self.epochs],
            "replica_timeline": self.replica_timeline,
            "total_requests": self.total_requests,
        }


def simulate_fleet_autoscaled(latency_model, traffic,
                              config: FleetConfig,
                              autoscale: AutoscaleConfig,
                              sla_us: float,
                              availability_target: float = 0.999,
                              fault_plan=None, jobs: int = 1,
                              collect_telemetry: bool = False
                              ) -> FleetAutoscaleReport:
    """Serve a trace epoch by epoch, re-sizing on error-budget burn.

    Each epoch runs a fixed-size fleet over its arrival slice; the SLO
    monitor's burn rate for the epoch then drives the scaler: burn
    above ``upscale_burn`` adds ``step`` replicas, burn below
    ``downscale_burn`` removes one (the asymmetry is deliberate — scale
    up fast, down slowly), clamped to the configured range.  The whole
    loop is deterministic: same trace, same config, same timeline.
    """
    from repro.serving.slo import slo_from_report

    if isinstance(traffic, TrafficTrace):
        arrivals = traffic.arrivals(config.seed)
    else:
        arrivals = np.asarray(traffic, dtype=float)
    if arrivals.size == 0:
        raise ValueError("the traffic trace produced no arrivals")

    out = FleetAutoscaleReport(sla_us=sla_us,
                               availability_target=availability_target,
                               autoscale=autoscale)
    replicas = max(autoscale.min_replicas,
                   min(config.num_replicas, autoscale.max_replicas))
    t0 = float(arrivals[0])
    t_end = float(arrivals[-1])
    start = t0
    index = 0
    while start <= t_end:
        end = start + autoscale.epoch_us
        lo = int(np.searchsorted(arrivals, start, side="left"))
        hi = int(np.searchsorted(arrivals, end, side="left"))
        chunk = arrivals[lo:hi]
        if chunk.size:
            epoch_config = config.with_replica_count(replicas)
            report = simulate_fleet(latency_model, chunk, epoch_config,
                                    fault_plan=fault_plan, jobs=jobs,
                                    collect_telemetry=collect_telemetry)
            slo = slo_from_report(report, sla_us,
                                  availability_target=availability_target,
                                  window_us=autoscale.epoch_us)
            burn = slo.burn_rate
            if burn > autoscale.upscale_burn:
                action = "up"
                replicas = min(autoscale.max_replicas,
                               replicas + autoscale.step)
            elif burn < autoscale.downscale_burn:
                action = "down"
                replicas = max(autoscale.min_replicas, replicas - 1)
            else:
                action = "hold"
            out.reports.append(report)
            out.epochs.append(EpochRecord(
                index=index, start_us=start, end_us=end,
                replicas=report.config.num_replicas,
                requests=int(chunk.size), p99_us=report.percentile(99),
                availability=report.availability, burn=burn,
                action=action))
        index += 1
        start = end
    return out
