"""SLO monitoring: rolling latency percentiles and error-budget burn.

Production serving is judged against a *service-level objective* — e.g.
"99.9 % of requests complete within 2 ms".  This module turns one
:class:`~repro.serving.simulator.ServingReport` into the operator's
view of that objective:

* **rolling windows** — p50/p95/p99 and the violation rate per
  fixed-width time window (so a transient queue blow-up is visible as a
  spike, not averaged away);
* **error budget** — the allowed violation fraction is
  ``1 - availability_target``; the *burn rate* is the observed
  violation fraction divided by that allowance.  Burn 1.0 means the
  budget is being consumed exactly as provisioned; above 1.0 the
  service is eating future budget (page someone); far below 1.0 the
  SLA has slack the batcher could trade for utilisation — the paper's
  Section 6.1 latency/batch-size tension, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class SLOWindow:
    """Latency statistics for one rolling time window."""

    start_us: float
    end_us: float
    count: int
    p50_us: float
    p95_us: float
    p99_us: float
    violations: int

    @property
    def violation_rate(self) -> float:
        return self.violations / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {"start_us": self.start_us, "end_us": self.end_us,
                "count": self.count, "p50_us": self.p50_us,
                "p95_us": self.p95_us, "p99_us": self.p99_us,
                "violations": self.violations,
                "violation_rate": self.violation_rate}


@dataclass
class SLOSummary:
    """One run's standing against its SLO."""

    sla_us: float
    availability_target: float
    total: int
    violations: int
    burn_rate: float
    windows: List[SLOWindow] = field(default_factory=list)
    #: aborted requests (shed/timeout/failed); always SLO violations,
    #: never latency samples
    aborted: int = 0

    @property
    def violation_rate(self) -> float:
        return self.violations / self.total if self.total else 0.0

    @property
    def budget_remaining(self) -> float:
        """Fraction of the error budget left (can go negative)."""
        return 1.0 - self.burn_rate

    @property
    def peak_window_burn(self) -> float:
        allowed = 1.0 - self.availability_target
        if allowed <= 0 or not self.windows:
            return 0.0
        return max(w.violation_rate for w in self.windows) / allowed

    def to_dict(self) -> Dict:
        return {"sla_us": self.sla_us,
                "availability_target": self.availability_target,
                "total": self.total,
                "violations": self.violations,
                "aborted": self.aborted,
                "violation_rate": self.violation_rate,
                "burn_rate": self.burn_rate,
                "budget_remaining": self.budget_remaining,
                "peak_window_burn": self.peak_window_burn,
                "windows": [w.to_dict() for w in self.windows]}


class SLOMonitor:
    """Streams (finish_time, latency) pairs into rolling SLO windows."""

    def __init__(self, sla_us: float, availability_target: float = 0.999,
                 window_us: float = 50_000.0) -> None:
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.sla_us = sla_us
        self.availability_target = availability_target
        self.window_us = window_us
        self._finish: List[float] = []
        self._latency: List[float] = []
        self._aborts: List[float] = []

    def observe(self, finish_us: float, latency_us: float) -> None:
        self._finish.append(float(finish_us))
        self._latency.append(float(latency_us))

    def observe_aborted(self, abort_us: float) -> None:
        """Record one aborted (shed/timeout/failed) request.

        Aborts always violate the SLO — the caller never got an answer —
        but they contribute no latency sample: folding give-up times
        into the percentile stream would let shedding *improve* p99.
        """
        self._aborts.append(float(abort_us))

    def observe_report(self, report) -> None:
        """Ingest every request of a ServingReport (aborts included)."""
        arrivals = np.asarray(report.arrivals_us)
        latencies = np.asarray(report.latencies_us)
        finish = arrivals + latencies
        mask = getattr(report, "served_mask", None)
        if mask is None:
            self._finish.extend(finish.tolist())
            self._latency.extend(latencies.tolist())
            return
        self._finish.extend(finish[mask].tolist())
        self._latency.extend(latencies[mask].tolist())
        aborts = np.asarray(report.abort_us)[~mask]
        self._aborts.extend(aborts[np.isfinite(aborts)].tolist())

    # -- queries -----------------------------------------------------------
    def windows(self) -> List[SLOWindow]:
        if not self._finish and not self._aborts:
            return []
        finish = np.asarray(self._finish)
        latency = np.asarray(self._latency)
        order = np.argsort(finish, kind="stable")
        finish, latency = finish[order], latency[order]
        aborts = np.sort(np.asarray(self._aborts))
        if finish.size:
            t0 = float(finish[0])
            t1 = float(finish[-1])
        else:
            t0, t1 = float(aborts[0]), float(aborts[-1])
        if aborts.size:
            t0 = min(t0, float(aborts[0]))
            t1 = max(t1, float(aborts[-1]))
        out: List[SLOWindow] = []
        edges = np.arange(t0, t1 + self.window_us, self.window_us)
        for start in edges:
            end = start + self.window_us
            lo = np.searchsorted(finish, start, side="left")
            hi = np.searchsorted(finish, end, side="left")
            chunk = latency[lo:hi]
            alo = np.searchsorted(aborts, start, side="left")
            ahi = np.searchsorted(aborts, end, side="left")
            n_aborts = int(ahi - alo)
            if chunk.size == 0 and n_aborts == 0:
                continue
            # aborts count (as violations) but never enter percentiles
            nan = float("nan")
            out.append(SLOWindow(
                start_us=float(start), end_us=float(end),
                count=int(chunk.size) + n_aborts,
                p50_us=float(np.percentile(chunk, 50))
                if chunk.size else nan,
                p95_us=float(np.percentile(chunk, 95))
                if chunk.size else nan,
                p99_us=float(np.percentile(chunk, 99))
                if chunk.size else nan,
                violations=int((chunk > self.sla_us).sum()) + n_aborts))
        return out

    def summary(self) -> SLOSummary:
        latency = np.asarray(self._latency)
        aborted = len(self._aborts)
        total = int(latency.size) + aborted
        violations = int((latency > self.sla_us).sum()) + aborted
        allowed = 1.0 - self.availability_target
        rate = violations / total if total else 0.0
        return SLOSummary(
            sla_us=self.sla_us,
            availability_target=self.availability_target,
            total=total,
            violations=violations,
            burn_rate=rate / allowed if allowed > 0 else 0.0,
            windows=self.windows(),
            aborted=aborted)


def slo_from_report(report, sla_us: float,
                    availability_target: float = 0.999,
                    window_us: float = 50_000.0) -> SLOSummary:
    """One-shot: SLO summary for a finished serving run."""
    monitor = SLOMonitor(sla_us, availability_target, window_us)
    monitor.observe_report(report)
    return monitor.summary()
