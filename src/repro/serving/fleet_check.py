"""``python -m repro.serving.fleet_check`` — router equivalence gate.

The fleet simulator routes every trace through
:func:`~repro.serving.fleet.route_requests_vectorised`; the scalar
:func:`~repro.serving.fleet.route_requests` loop is kept as the
executable specification.  This check runs one traffic trace through
the *whole* fleet pipeline twice — once per router — across every
routing policy and a set of job counts, and asserts the final
:class:`~repro.serving.fleet.FleetReport` JSON is byte-identical.

CI runs it over a multi-second diurnal trace::

    python -m repro.serving.fleet_check --duration-us 2000000 \
        --target-qps 60000 --jobs 1,2,4

Exit status is non-zero on the first mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.serving import fleet as _fleet
from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                 RouterConfig, TabularLatencyModel,
                                 route_requests, simulate_fleet,
                                 uniform_fleet)
from repro.serving.traffic import trace_preset

#: The quickstart-shaped latency model the serving reports use.
DEFAULT_MODEL = TabularLatencyModel(batches=(1, 4, 16, 64, 256),
                                    latency_us=(60, 72, 110, 260, 860))


def check_policy(policy: str, trace, jobs_list: List[int],
                 replicas: int = 6, seed: int = 5) -> dict:
    """Byte-compare the reference and vectorised routers on ``trace``.

    Returns ``{"policy", "requests", "ref_wall_s", "fast_wall_s"}``;
    raises ``AssertionError`` on any byte difference.
    """
    config = FleetConfig(
        replicas=uniform_fleet(replicas),
        router=RouterConfig(policy=policy, seed=seed,
                            hedge_backlog_us=400.0))
    t0 = time.perf_counter()
    saved = _fleet.route_requests_vectorised
    try:
        _fleet.route_requests_vectorised = route_requests
        ref = simulate_fleet(DEFAULT_MODEL, trace, config, jobs=1)
    finally:
        _fleet.route_requests_vectorised = saved
    ref_wall = time.perf_counter() - t0
    ref_bytes = json.dumps(ref.to_dict(), sort_keys=True)

    fast_wall = 0.0
    for jobs in jobs_list:
        t0 = time.perf_counter()
        fast = simulate_fleet(DEFAULT_MODEL, trace, config, jobs=jobs)
        fast_wall = time.perf_counter() - t0
        fast_bytes = json.dumps(fast.to_dict(), sort_keys=True)
        assert fast_bytes == ref_bytes, (
            f"{policy} report differs from the scalar reference at "
            f"--jobs {jobs}")
    return {"policy": policy, "requests": int(ref.arrivals_us.size),
            "ref_wall_s": ref_wall, "fast_wall_s": fast_wall}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.fleet_check",
        description="Scalar-vs-vectorised fleet router byte-identity.")
    parser.add_argument("--trace-name", default="diurnal",
                        help="traffic preset (default %(default)s)")
    parser.add_argument("--duration-us", type=float, default=2_000_000.0,
                        help="trace horizon in us (default 2 s)")
    parser.add_argument("--target-qps", type=float, default=60_000.0,
                        help="trace target load (default %(default)s)")
    parser.add_argument("--replicas", type=int, default=6)
    parser.add_argument("--jobs", default="1,2",
                        help="comma-separated job counts for the "
                        "vectorised runs (default %(default)s)")
    parser.add_argument("--policies", default=",".join(ROUTING_POLICIES),
                        help="comma-separated routing policies "
                        "(default: all)")
    args = parser.parse_args(argv)

    jobs_list = [int(j) for j in args.jobs.split(",") if j]
    policies = [p for p in args.policies.split(",") if p]
    trace = replace(trace_preset(args.trace_name,
                                 target_qps=args.target_qps),
                    duration_us=args.duration_us)
    for policy in policies:
        try:
            row = check_policy(policy, trace, jobs_list,
                               replicas=args.replicas)
        except AssertionError as exc:
            print(f"FAIL {exc}")
            return 1
        speedup = (row["ref_wall_s"] / row["fast_wall_s"]
                   if row["fast_wall_s"] > 0 else 0.0)
        print(f"ok {policy:<14} {row['requests']:>8} requests  "
              f"scalar {row['ref_wall_s']:.2f}s  "
              f"vectorised {row['fast_wall_s']:.2f}s  "
              f"({speedup:.1f}x), byte-identical at --jobs "
              f"{','.join(map(str, jobs_list))}")
    print(f"fleet router byte-identity held over "
          f"{args.duration_us / 1e6:.1f} s of {args.trace_name} traffic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
