"""Resilient request serving: deadlines, retries, hedging, shedding.

:func:`simulate_serving_resilient` extends the plain batching simulation
(:func:`repro.serving.simulator.simulate_serving`) with the failure
handling a production serving tier layers on top of the accelerator:

* **deadlines** — each attempt must dispatch *and* finish within
  ``deadline_us`` of being enqueued; late attempts are abandoned (at
  dispatch, before wasting device time, or at completion, after it);
* **retries** — abandoned attempts re-enqueue after a capped
  exponential backoff, up to ``max_retries`` times;
* **hedging** — a batch that sat queued longer than ``hedge_after_us``
  dispatches on the *two* earliest-free cards; the first surviving copy
  wins, the loser's device time is wasted work;
* **load shedding** — arrivals beyond ``shed_queue_depth`` still
  waiting at a dispatch instant are dropped at admission;
* **graceful degradation** — cards fail and recover on the schedule of
  an attached :class:`~repro.faults.FaultInjector` (``card.failure`` /
  ``card.slowdown`` events); in-flight batches on a failing card die
  and retry elsewhere.

Every request keeps the exact attribution invariant::

    queue_wait + batch_wait + retry_overhead + execute == latency

measured on the *final* attempt: ``retry_overhead`` is the time burned
before that attempt was enqueued (failed attempts plus backoff), and
for aborted requests the phases are truncated at the abort instant, so
the identity holds for served and aborted requests alike.

Determinism contract: with the default :class:`ResilienceConfig`, one
card, and no faults (or an injector armed with an *empty*
:class:`~repro.faults.FaultPlan`), the report is **bit-identical** to
``simulate_serving`` — same arrivals, same batch boundaries, same
floats.  The conformance ``faults`` pillar pins this.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.serving.simulator import (
    STATUS_FAILED, STATUS_SERVED, STATUS_SHED, STATUS_TIMEOUT,
    BatchingConfig, BatchRecord, ServingReport, _record_metrics)


@dataclass(frozen=True)
class ResilienceConfig:
    """Serving-tier failure-handling knobs (0 = feature disabled)."""

    #: per-attempt deadline from enqueue to finish; 0 disables timeouts
    deadline_us: float = 0.0
    #: re-enqueue budget after a timeout/failure; 0 aborts immediately
    max_retries: int = 0
    #: first backoff; attempt ``a`` waits ``backoff * 2**a``, capped
    retry_backoff_us: float = 100.0
    backoff_cap_us: float = 1600.0
    #: hedge batches that sat queued longer than this; 0 disables
    hedge_after_us: float = 0.0
    #: waiting requests beyond this depth are shed at dispatch; 0 = keep all
    shed_queue_depth: int = 0
    #: identical cards behind one queue (failover capacity)
    num_cards: int = 1

    def __post_init__(self) -> None:
        if self.num_cards < 1:
            raise ValueError("num_cards must be >= 1")
        for name in ("deadline_us", "max_retries", "retry_backoff_us",
                     "backoff_cap_us", "hedge_after_us",
                     "shed_queue_depth"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def backoff_us(self, attempt: int) -> float:
        """Backoff before re-enqueueing attempt ``attempt + 1``."""
        return min(self.retry_backoff_us * (2.0 ** attempt),
                   self.backoff_cap_us)


#: one in-flight attempt: (enqueue time, tie-break seq, request, attempt#)
_Attempt = Tuple[float, int, int, int]


def simulate_serving_resilient(
        latency_model: Callable[[int], float],
        qps: float,
        batching: BatchingConfig = BatchingConfig(),
        resilience: ResilienceConfig = ResilienceConfig(),
        num_requests: int = 5000,
        seed: int = 0,
        faults=None,
        registry=None,
        collect_telemetry: bool = False,
        replica: int = 0,
        arrivals=None) -> ServingReport:
    """Simulate resilient serving of ``num_requests`` Poisson arrivals.

    ``faults`` is an optional :class:`~repro.faults.FaultInjector`
    whose ``card.failure`` / ``card.slowdown`` events (microsecond
    domain) drive card outages and slow cards.  All randomness lives in
    the arrival stream (``seed``) and the injector's *pre-drawn* plan,
    so a (seed, plan) pair replays exactly.

    ``arrivals`` injects an explicit sorted arrival vector (the fleet
    router's per-replica assignment) instead of drawing the Poisson
    stream; see :func:`~repro.serving.simulator.resolve_arrivals`.
    """
    from repro.serving.simulator import resolve_arrivals
    cfg = resilience
    arrivals, qps = resolve_arrivals(qps, num_requests, seed, arrivals)

    n = int(arrivals.size)
    latencies = np.zeros(n)
    queue_wait = np.zeros(n)
    batch_wait = np.zeros(n)
    execute = np.zeros(n)
    retry_overhead = np.zeros(n)
    attempts_out = np.ones(n, dtype=np.int64)
    status = np.zeros(n, dtype=np.int8)
    abort_us = np.full(n, np.nan)
    batch_index = np.full(n, -1, dtype=np.int64)

    batch_sizes: List[int] = []
    batches: List[BatchRecord] = []
    free = [0.0] * cfg.num_cards
    busy_us = 0.0
    span_end = arrivals[0] if n else 0.0
    served = 0
    hedged_batches = 0
    hedge_wins = 0
    retry_seq = n

    # the attempt queue: originals enter pre-sorted (arrival order ==
    # (t, seq) order), retries heap-push later with seq > n so that
    # same-instant ties stay deterministic
    pending: List[_Attempt] = [(float(arrivals[r]), r, r, 0)
                               for r in range(n)]

    def start_on(card: int, at: float) -> float:
        """Earliest instant ``card`` can start work requested at ``at``."""
        t = max(at, free[card])
        if faults is not None:
            t = faults.card_available_at(card, t)
        return t

    def finish_attempt(r: int, attempt: int, attempt_t: float,
                       fail_t: float, failed_status: int,
                       ready: float, dispatch: float) -> None:
        """Retry the attempt or record its final abort."""
        nonlocal retry_seq, span_end
        if attempt < cfg.max_retries:
            next_t = fail_t + cfg.backoff_us(attempt)
            heapq.heappush(pending, (next_t, retry_seq, r, attempt + 1))
            retry_seq += 1
            return
        status[r] = failed_status
        attempts_out[r] = attempt + 1
        retry_overhead[r] = attempt_t - arrivals[r]
        abort_us[r] = fail_t
        # phases truncated at the abort instant, so the attribution
        # invariant holds for aborted requests too
        bw = max(0.0, min(ready, fail_t) - attempt_t)
        qw = max(0.0, min(dispatch, fail_t) - max(ready, attempt_t))
        ex = max(0.0, fail_t - max(dispatch, attempt_t))
        batch_wait[r] = bw
        queue_wait[r] = qw
        execute[r] = ex
        latencies[r] = fail_t - arrivals[r]
        span_end = max(span_end, fail_t)

    def run_copy(card: int, at: float, size: int
                 ) -> Tuple[float, float, float, Optional[float]]:
        """Dispatch one batch copy: (start, exec_us, finish, death)."""
        nonlocal busy_us, span_end
        start = start_on(card, at)
        if not math.isfinite(start):
            # the card died for good between batch formation and
            # dispatch; the serving tier discovers it at dispatch time
            return math.inf, 0.0, math.inf, at
        exec_us = latency_model(size)
        if faults is not None:
            exec_us *= faults.card_slowdown(card, start)
        finish = start + exec_us
        death = (faults.card_failure_in(card, start, finish)
                 if faults is not None else None)
        if death is not None:
            # the in-flight batch dies with the card; the card comes
            # back (or not) on the fault plan's schedule
            free[card] = (faults.card_available_at(card, death)
                          if faults is not None else death)
            busy_us += death - start
            span_end = max(span_end, death)
            return start, exec_us, finish, death
        free[card] = finish
        busy_us += exec_us
        span_end = max(span_end, finish)
        return start, exec_us, finish, None

    while pending:
        head_t = pending[0][0]
        # fault-aware earliest-free card (deterministic tie: lowest index)
        eff = [start_on(c, head_t) for c in range(cfg.num_cards)]
        card = min(range(cfg.num_cards), key=lambda c: (eff[c], c))
        device_free = eff[card]

        deadline_window = head_t + batching.max_wait_us
        dispatch_at = max(deadline_window, device_free)

        members: List[_Attempt] = []
        while (pending and len(members) < batching.max_batch
               and pending[0][0] <= dispatch_at):
            members.append(heapq.heappop(pending))
        if len(members) == batching.max_batch:
            dispatch_at = max(members[-1][0], device_free)
        ready = min(dispatch_at,
                    members[-1][0] if len(members) == batching.max_batch
                    else deadline_window)

        # -- load shedding: requests still waiting beyond the depth cap
        if cfg.shed_queue_depth and pending:
            eligible = [e for e in pending if e[0] <= dispatch_at]
            excess = len(eligible) - cfg.shed_queue_depth
            if excess > 0:
                doomed = set(sorted(eligible)[-excess:])
                pending = [e for e in pending if e not in doomed]
                heapq.heapify(pending)
                for t, _seq, r, attempt in sorted(doomed):
                    status[r] = STATUS_SHED
                    attempts_out[r] = attempt + 1
                    retry_overhead[r] = t - arrivals[r]
                    abort_us[r] = dispatch_at
                    batch_wait[r] = max(0.0, min(ready, dispatch_at) - t)
                    queue_wait[r] = dispatch_at - max(ready, t)
                    latencies[r] = dispatch_at - arrivals[r]
                    span_end = max(span_end, dispatch_at)

        # -- dispatch-time deadline check: don't waste device time on
        #    members that have already missed
        if cfg.deadline_us:
            survivors = []
            for t, seq, r, attempt in members:
                if dispatch_at > t + cfg.deadline_us:
                    finish_attempt(r, attempt, t, t + cfg.deadline_us,
                                   STATUS_TIMEOUT, ready, math.inf)
                else:
                    survivors.append((t, seq, r, attempt))
            members = survivors
            if not members:
                continue

        size = len(members)

        if not math.isfinite(device_free):
            # every card is gone for good: the batch can never dispatch
            for t, _seq, r, attempt in members:
                finish_attempt(r, attempt, t, max(ready, t),
                               STATUS_FAILED, ready, math.inf)
            continue

        # -- dispatch (possibly hedged on the two earliest-free cards)
        copies = [run_copy(card, dispatch_at, size)]
        cards_used = [card]
        if (cfg.hedge_after_us and cfg.num_cards > 1
                and dispatch_at - ready > cfg.hedge_after_us):
            others = [c for c in range(cfg.num_cards)
                      if c != card and math.isfinite(start_on(c, dispatch_at))]
            if others:
                hedge = min(others,
                            key=lambda c: (start_on(c, dispatch_at), c))
                copies.append(run_copy(hedge, dispatch_at, size))
                cards_used.append(hedge)
                hedged_batches += 1

        alive = [(fin, idx) for idx, (_s, _e, fin, death)
                 in enumerate(copies) if death is None]
        if not alive:
            # every copy died with its card mid-execute
            lost_at = max(death for _s, _e, _f, death in copies)
            for t, _seq, r, attempt in members:
                finish_attempt(r, attempt, t, lost_at, STATUS_FAILED,
                               ready, copies[0][0])
            continue
        finish, winner = min(alive)
        start, exec_us = copies[winner][0], copies[winner][1]
        if winner != 0:
            hedge_wins += 1

        # -- completion-time deadline check
        late: List[_Attempt] = []
        done: List[_Attempt] = []
        if cfg.deadline_us:
            for m in members:
                (late if finish > m[0] + cfg.deadline_us else done).append(m)
        else:
            done = members

        k = len(batches)
        for t, _seq, r, attempt in done:
            status[r] = STATUS_SERVED
            attempts_out[r] = attempt + 1
            retry_overhead[r] = t - arrivals[r]
            latencies[r] = finish - arrivals[r]
            batch_wait[r] = max(0.0, ready - t)
            queue_wait[r] = start - max(t, ready)
            execute[r] = exec_us
            batch_index[r] = k
            served += 1
        for t, _seq, r, attempt in late:
            finish_attempt(r, attempt, t, t + cfg.deadline_us,
                           STATUS_TIMEOUT, ready, start)

        depth = sum(1 for e in pending if e[0] <= dispatch_at)
        batch_sizes.append(size)
        batches.append(BatchRecord(
            index=k, size=size, first_arrival_us=float(members[0][0]),
            ready_us=float(ready), dispatch_us=float(start),
            finish_us=float(finish), queue_depth=depth))

    span_us = span_end - arrivals[0] if n else 0.0
    report = ServingReport(
        qps_offered=qps,
        qps_served=served / (span_us / 1e6) if span_us > 0 else 0.0,
        latencies_us=latencies,
        batch_sizes=batch_sizes,
        busy_fraction=(min(1.0, busy_us / (span_us * cfg.num_cards))
                       if span_us > 0 else 0.0),
        queue_wait_us=queue_wait,
        batch_wait_us=batch_wait,
        execute_us=execute,
        arrivals_us=arrivals,
        batch_index=batch_index,
        batches=batches,
        status=status,
        retry_overhead_us=retry_overhead,
        attempts=attempts_out,
        abort_us=abort_us,
        hedged_batches=hedged_batches,
        hedge_wins=hedge_wins,
    )
    if collect_telemetry:
        from repro.serving.telemetry import ServingTelemetry
        report.telemetry = ServingTelemetry.from_report(report,
                                                        replica=replica)
    if registry is None:
        from repro.obs.metrics import default_registry
        registry = default_registry()
    if registry is not None:
        _record_metrics(registry, report, batching)
    return report
