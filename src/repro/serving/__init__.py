"""Serving-level simulation: requests, batching, SLAs, capacity.

The paper's motivation is datacenter economics — perf/TCO of *serving*
recommendation requests (Sections 1-2).  This package closes the loop
from the operator-level models back to that context:

* :mod:`repro.serving.simulator` — a request-level queueing simulator:
  Poisson arrivals, a batching window, per-batch latency from the
  analytical model, latency percentiles and throughput, plus an exact
  per-request queue-wait / batch-formation-wait / execute attribution
  and optional request-waterfall span tracing;
* :mod:`repro.serving.resilience` — the failure-handling layer:
  per-attempt deadlines, capped-backoff retries, hedged dispatch, load
  shedding, and card failover driven by :mod:`repro.faults`;
* :mod:`repro.serving.slo` — rolling p50/p95/p99 windows and
  error-budget burn against an SLA (aborted requests burn budget but
  never enter the percentile stream);
* :mod:`repro.serving.tail` — differential tail attribution: the
  phase / operator / stall-cause mix of ≥p99 requests contrasted with
  median requests;
* :mod:`repro.serving.traffic` — seeded synthetic traffic at
  millions-of-users scale: diurnal rate curves, bursts and flash
  crowds turned into deterministic arrival vectors;
* :mod:`repro.serving.fleet` — the datacenter tier: a router with
  pluggable seeded policies (round-robin, least-loaded, power-of-two,
  hedging) in front of N sharded/replicated multi-card replicas, each
  an independent :func:`~repro.serving.resilience.simulate_serving_resilient`
  run, with correlated rack/power failures and burn-driven autoscaling;
* :mod:`repro.serving.capacity` — fleet sizing: closed-form per-card
  throughput (:func:`~repro.serving.capacity.plan_capacity`) and the
  simulated minimum-replica answer
  (:func:`~repro.serving.capacity.plan_fleet_capacity`), the quantity
  behind Figure 2's server-count curves;
* :mod:`repro.serving.telemetry` — fleet-grade bounded telemetry:
  mergeable quantile sketches, windowed time series, tail-biased
  exemplars with post-hoc span reconstruction, and anomaly detection,
  all derived from finished reports so observation never perturbs the
  simulation.

``python -m repro.serve_report`` drives the whole stack (``--fleet``
for the datacenter tier) and exports text/JSON reports or a merged
Chrome trace (request waterfall down to cycle-level unit activity).
"""

from repro.serving.capacity import (CapacityPlan, FleetCapacityPlan,
                                    plan_capacity, plan_fleet_capacity)
from repro.serving.fleet import (ROUTING_POLICIES, AutoscaleConfig,
                                 FleetConfig, FleetReport,
                                 ObservedLatencyFeed, ReplicaSpec,
                                 RouterConfig, ShardedLatencyModel,
                                 TabularLatencyModel,
                                 sharded_latency_table, simulate_fleet,
                                 simulate_fleet_autoscaled, uniform_fleet)
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import (STATUS_FAILED, STATUS_NAMES,
                                     STATUS_SERVED, STATUS_SHED,
                                     STATUS_TIMEOUT, BatchingConfig,
                                     BatchRecord, BatchLatencyModel,
                                     ServingReport, simulate_serving)
from repro.serving.slo import (SLOMonitor, SLOSummary, SLOWindow,
                               slo_from_report)
from repro.serving.tail import TailAttribution, attribute_tail
from repro.serving.telemetry import ServingTelemetry, emit_exemplar_spans
from repro.serving.traffic import TRACES, Burst, TrafficTrace, trace_preset

__all__ = [
    "AutoscaleConfig",
    "BatchingConfig",
    "BatchLatencyModel",
    "BatchRecord",
    "Burst",
    "CapacityPlan",
    "FleetCapacityPlan",
    "FleetConfig",
    "FleetReport",
    "ObservedLatencyFeed",
    "ROUTING_POLICIES",
    "ReplicaSpec",
    "ResilienceConfig",
    "RouterConfig",
    "SLOMonitor",
    "SLOSummary",
    "SLOWindow",
    "STATUS_FAILED",
    "STATUS_NAMES",
    "STATUS_SERVED",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "ServingReport",
    "ServingTelemetry",
    "ShardedLatencyModel",
    "TRACES",
    "TabularLatencyModel",
    "TailAttribution",
    "TrafficTrace",
    "attribute_tail",
    "emit_exemplar_spans",
    "plan_capacity",
    "plan_fleet_capacity",
    "sharded_latency_table",
    "simulate_fleet",
    "simulate_fleet_autoscaled",
    "simulate_serving",
    "simulate_serving_resilient",
    "slo_from_report",
    "trace_preset",
    "uniform_fleet",
]
