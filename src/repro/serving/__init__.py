"""Serving-level simulation: requests, batching, SLAs, capacity.

The paper's motivation is datacenter economics — perf/TCO of *serving*
recommendation requests (Sections 1-2).  This package closes the loop
from the operator-level models back to that context:

* :mod:`repro.serving.simulator` — a request-level queueing simulator:
  Poisson arrivals, a batching window, per-batch latency from the
  analytical model, latency percentiles and throughput, plus an exact
  per-request queue-wait / batch-formation-wait / execute attribution
  and optional request-waterfall span tracing;
* :mod:`repro.serving.resilience` — the failure-handling layer:
  per-attempt deadlines, capped-backoff retries, hedged dispatch, load
  shedding, and card failover driven by :mod:`repro.faults`;
* :mod:`repro.serving.slo` — rolling p50/p95/p99 windows and
  error-budget burn against an SLA (aborted requests burn budget but
  never enter the percentile stream);
* :mod:`repro.serving.tail` — differential tail attribution: the
  phase / operator / stall-cause mix of ≥p99 requests contrasted with
  median requests;
* :mod:`repro.serving.capacity` — fleet sizing: accelerators (and
  watts) needed to serve a target QPS under a latency SLA on each
  platform, the quantity behind Figure 2's server-count curves;
* :mod:`repro.serving.telemetry` — fleet-grade bounded telemetry:
  mergeable quantile sketches, windowed time series, tail-biased
  exemplars with post-hoc span reconstruction, and anomaly detection,
  all derived from finished reports so observation never perturbs the
  simulation.

``python -m repro.serve_report`` drives the whole stack and exports
text/JSON reports or a merged Chrome trace (request waterfall down to
cycle-level unit activity).
"""

from repro.serving.capacity import CapacityPlan, plan_capacity
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import (STATUS_FAILED, STATUS_NAMES,
                                     STATUS_SERVED, STATUS_SHED,
                                     STATUS_TIMEOUT, BatchingConfig,
                                     BatchRecord, BatchLatencyModel,
                                     ServingReport, simulate_serving)
from repro.serving.slo import (SLOMonitor, SLOSummary, SLOWindow,
                               slo_from_report)
from repro.serving.tail import TailAttribution, attribute_tail
from repro.serving.telemetry import ServingTelemetry, emit_exemplar_spans

__all__ = [
    "BatchingConfig",
    "BatchLatencyModel",
    "BatchRecord",
    "CapacityPlan",
    "ResilienceConfig",
    "SLOMonitor",
    "SLOSummary",
    "SLOWindow",
    "STATUS_FAILED",
    "STATUS_NAMES",
    "STATUS_SERVED",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "ServingReport",
    "ServingTelemetry",
    "TailAttribution",
    "attribute_tail",
    "emit_exemplar_spans",
    "plan_capacity",
    "simulate_serving",
    "simulate_serving_resilient",
    "slo_from_report",
]
