"""Serving-level simulation: requests, batching, SLAs, capacity.

The paper's motivation is datacenter economics — perf/TCO of *serving*
recommendation requests (Sections 1-2).  This package closes the loop
from the operator-level models back to that context:

* :mod:`repro.serving.simulator` — a request-level queueing simulator:
  Poisson arrivals, a batching window, per-batch latency from the
  analytical model, latency percentiles and throughput;
* :mod:`repro.serving.capacity` — fleet sizing: accelerators (and
  watts) needed to serve a target QPS under a latency SLA on each
  platform, the quantity behind Figure 2's server-count curves.
"""

from repro.serving.capacity import CapacityPlan, plan_capacity
from repro.serving.simulator import (BatchingConfig, ServingReport,
                                     simulate_serving)

__all__ = [
    "BatchingConfig",
    "CapacityPlan",
    "ServingReport",
    "plan_capacity",
    "simulate_serving",
]
