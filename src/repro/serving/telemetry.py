"""Fleet-grade serving telemetry: sketches, series, exemplars.

The serving simulator measures one replica exactly — every latency, in
order, in memory.  A fleet does not have that luxury: telemetry must
leave each replica as *bounded, mergeable aggregates* and still answer
the questions operators actually ask (what is the fleet p99, what did
it look like over time, show me the slowest request).  This module is
that contract, built entirely post-hoc from a finished
:class:`~repro.serving.simulator.ServingReport` so telemetry can never
perturb the simulation it observes:

* **Distributions** → :class:`~repro.obs.sketch.QuantileSketch` per
  signal (latency, each request phase, batch size): fixed memory,
  relative-error quantiles, order-invariant merges.
* **Time series** → :class:`~repro.obs.timeseries.WindowedSeries` for
  request rate, per-window latency quantiles, and queue depth.
* **Tail exemplars** → :class:`~repro.obs.exemplars.ExemplarStore`:
  the exact slowest-k requests plus a seeded priority reservoir, each
  carrying its full phase attribution so
  :func:`emit_exemplar_spans` can reconstruct the *same* request
  waterfall the full tracer would have drawn (PR 3's span trees),
  without tracing every request.
* **Anomalies** → :func:`ServingTelemetry.anomalies` runs the EWMA /
  CUSUM detectors over the windowed signals.

Replica merging is deterministic by construction: sketches and
exemplar stores are fully order-invariant, and series are always
merged in replica-index order, so a report assembled at ``--jobs 4``
is byte-identical to ``--jobs 1`` (the conformance determinism pillar
and the CI telemetry job both assert this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.detect import AnomalyReport, detect_series
from repro.obs.exemplars import ExemplarRecord, ExemplarStore
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.timeseries import DEFAULT_WINDOW_US, WindowedSeries
from repro.serving.simulator import STATUS_NAMES, ServingReport

__all__ = ["ServingTelemetry", "emit_exemplar_spans",
           "PHASES", "SERIES_NAMES"]

#: request phases sketched individually (attribution invariant:
#: queue_wait + batch_wait [+ retry_overhead] + execute == latency)
PHASES = ("queue_wait", "batch_wait", "execute", "retry_overhead")

#: windowed signals, in canonical export order
SERIES_NAMES = ("requests", "latency_us", "queue_depth")


class ServingTelemetry:
    """Bounded, mergeable telemetry for one or many serving replicas.

    Build per replica with :meth:`from_report`, combine with
    :meth:`merge` (always in replica-index order), export with
    :meth:`to_dict` / :meth:`summary`.
    """

    def __init__(self, window_us: float = DEFAULT_WINDOW_US,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 slowest_k: int = 8, reservoir_size: int = 16,
                 seed: int = 0) -> None:
        self.window_us = float(window_us)
        self.relative_accuracy = float(relative_accuracy)
        self.seed = int(seed)
        self.replicas: List[int] = []
        self.latency = QuantileSketch(relative_accuracy)
        self.phases: Dict[str, QuantileSketch] = {
            name: QuantileSketch(relative_accuracy) for name in PHASES}
        self.batch_size = QuantileSketch(relative_accuracy)
        self.series: Dict[str, WindowedSeries] = {
            "requests": WindowedSeries(window_us, name="requests"),
            "latency_us": WindowedSeries(
                window_us, track_quantiles=True,
                relative_accuracy=relative_accuracy, name="latency_us"),
            "queue_depth": WindowedSeries(window_us, name="queue_depth"),
        }
        self.exemplars = ExemplarStore(slowest_k=slowest_k,
                                       reservoir_size=reservoir_size,
                                       seed=seed)
        self.status_counts: Dict[str, int] = {n: 0 for n in STATUS_NAMES}

    # -- construction ----------------------------------------------------
    @classmethod
    def from_report(cls, report: ServingReport, replica: int = 0,
                    window_us: float = DEFAULT_WINDOW_US,
                    relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                    slowest_k: int = 8, reservoir_size: int = 16,
                    seed: int = 0) -> "ServingTelemetry":
        """Derive telemetry from a finished report (never perturbs it).

        Latency-family signals cover *served* requests only, matching
        the report's own percentile convention (an aborted request has
        no meaningful latency); the request-rate series and status
        counts cover every arrival.
        """
        out = cls(window_us=window_us, relative_accuracy=relative_accuracy,
                  slowest_k=slowest_k, reservoir_size=reservoir_size,
                  seed=seed)
        out.replicas = [int(replica)]
        mask = report.served_mask
        n = report.latencies_us.size

        def served(values: np.ndarray) -> np.ndarray:
            if values.size == 0:
                return values
            return values if mask is None else values[mask]

        lat = served(report.latencies_us)
        out.latency.add_many(lat)
        for name in PHASES:
            values = served(getattr(report, f"{name}_us"))
            if values.size:
                out.phases[name].add_many(values)
        out.batch_size.add_many(np.asarray(report.batch_sizes, dtype=float))

        for name, count in report.counts_by_status().items():
            out.status_counts[name] += count

        arrivals = report.arrivals_us
        if arrivals.size:
            out.series["requests"].record_many(arrivals)
            finish = served(arrivals) + lat
            out.series["latency_us"].record_many(finish, lat)
        if report.batches:
            out.series["queue_depth"].record_many(
                [b.dispatch_us for b in report.batches],
                [float(b.queue_depth) for b in report.batches])

        if n and report.batch_index.size:
            indices = range(n) if mask is None else np.flatnonzero(mask)
            retry = report.retry_overhead_us
            status = report.status
            for r in indices:
                r = int(r)
                b = int(report.batch_index[r])
                record = ExemplarRecord(
                    replica=int(replica), request_id=r,
                    arrival_us=float(arrivals[r]),
                    latency_us=float(report.latencies_us[r]),
                    queue_wait_us=float(report.queue_wait_us[r]),
                    batch_wait_us=float(report.batch_wait_us[r]),
                    execute_us=float(report.execute_us[r]),
                    batch_index=b,
                    batch_size=(report.batches[b].size
                                if 0 <= b < len(report.batches) else 0),
                    status=(STATUS_NAMES[int(status[r])]
                            if status.size else "served"),
                    retry_overhead_us=(float(retry[r])
                                       if retry.size else 0.0))
                out.exemplars.offer(record)
        return out

    # -- merging ---------------------------------------------------------
    def merge(self, other: "ServingTelemetry") -> "ServingTelemetry":
        """Fold another replica's telemetry in (in place; returns self).

        Sketches and exemplars are order-invariant; series sums are
        floats, so callers must merge replicas in index order for
        byte-identical output (``merge_all`` does).
        """
        if other.window_us != self.window_us:
            raise ValueError("cannot merge telemetry with different "
                             f"windows: {self.window_us} vs "
                             f"{other.window_us}")
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError("cannot merge telemetry with different "
                             "relative_accuracy")
        self.replicas = sorted(set(self.replicas) | set(other.replicas))
        self.latency.merge(other.latency)
        for name in PHASES:
            self.phases[name].merge(other.phases[name])
        self.batch_size.merge(other.batch_size)
        for name in SERIES_NAMES:
            self.series[name].merge(other.series[name])
        self.exemplars.merge(other.exemplars)
        for name, count in other.status_counts.items():
            self.status_counts[name] = self.status_counts.get(name, 0) + count
        return self

    @classmethod
    def merge_all(cls, parts: Sequence["ServingTelemetry"]
                  ) -> "ServingTelemetry":
        """Merge per-replica telemetry in replica-index order."""
        if not parts:
            raise ValueError("nothing to merge")
        ordered = sorted(parts, key=lambda t: min(t.replicas or [0]))
        out = ordered[0]
        for part in ordered[1:]:
            out.merge(part)
        return out

    # -- queries ---------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return sum(self.status_counts.values())

    def anomalies(self, stats: Sequence[Tuple[str, str]] = (
            ("requests", "rate"), ("latency_us", "p99"),
            ("queue_depth", "mean"))) -> List[AnomalyReport]:
        """Detector sweep over the windowed signals.

        Each ``(series, stat)`` pair is fed through the EWMA and CUSUM
        detectors; the report list is in argument order (deterministic).
        """
        out: List[AnomalyReport] = []
        for series_name, stat in stats:
            series = self.series[series_name]
            report = detect_series(series, stat)
            report.stat = f"{series_name}.{stat}"
            out.append(report)
        return out

    def sketch_vs_exact(self, report: ServingReport) -> Dict[str, Dict]:
        """Sketch error vs the exact percentiles of one report.

        The observability bargain made explicit: for each headline
        quantile, the sketch estimate, the exact value, and the
        relative delta (which must stay within ``relative_accuracy``).
        """
        mask = report.served_mask
        lat = (report.latencies_us if mask is None
               else report.latencies_us[mask])
        out: Dict[str, Dict] = {}
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(lat, q)) if lat.size else 0.0
            est = self.latency.percentile(q)
            rel = abs(est - exact) / exact if exact else 0.0
            out[f"p{q:g}"] = {"sketch": est, "exact": exact,
                              "relative_error": rel}
        return out

    # -- export ----------------------------------------------------------
    def record_into(self, registry) -> None:
        """Mirror the telemetry into a metric registry.

        Gives the Prometheus/JSON exporters the sketch and series
        instruments alongside the exact histograms the simulator
        already records.
        """
        registry.sketch(
            "serving_latency_sketch_us",
            "request latency, bounded-memory quantile sketch",
            relative_accuracy=self.relative_accuracy,
        ).labels().merge(self.latency)
        for name in PHASES:
            if self.phases[name].count:
                registry.sketch(
                    "serving_phase_sketch_us",
                    "per-phase latency, quantile sketch",
                    relative_accuracy=self.relative_accuracy,
                ).labels(phase=name).merge(self.phases[name])
        registry.timeseries(
            "serving_request_rate",
            "request arrivals per window",
            window_us=self.window_us,
        ).labels().merge(self.series["requests"])

    def to_dict(self, include_state: bool = False,
                max_windows: int = 64) -> Dict:
        """Canonical JSON-ready dump (keys and ordering are stable).

        ``include_state`` adds the full sketch key maps (what replicas
        would actually ship); the default keeps report JSON compact.
        ``max_windows`` resamples each series to a bounded render.
        """
        phases = {}
        for name in PHASES:
            sketch = self.phases[name]
            if sketch.count:
                phases[name] = sketch.summary()
        series = {}
        for name in SERIES_NAMES:
            series[name] = self.series[name].resampled(max_windows).to_dict()
        out: Dict = {
            "window_us": self.window_us,
            "relative_accuracy": self.relative_accuracy,
            "replicas": list(self.replicas),
            "num_requests": self.num_requests,
            "status_counts": {n: self.status_counts[n]
                              for n in STATUS_NAMES},
            "latency": self.latency.summary(),
            "phases": phases,
            "batch_size": self.batch_size.summary(),
            "series": series,
            "exemplars": self.exemplars.to_dict(),
            "anomalies": [r.to_dict() for r in self.anomalies()],
        }
        if include_state:
            out["latency_state"] = self.latency.to_dict()
            out["phase_state"] = {
                name: self.phases[name].to_dict() for name in PHASES
                if self.phases[name].count}
        return out

    def summary(self) -> Dict:
        """Headline numbers for text reports."""
        anomalous = [r.stat for r in self.anomalies() if r.anomalous]
        return {"num_requests": self.num_requests,
                "replicas": len(self.replicas),
                "latency": self.latency.summary(),
                "sketch_buckets": self.latency.num_buckets,
                "slowest": [r.to_dict() for r in self.exemplars.slowest],
                "anomalous_signals": anomalous}

    def to_text(self) -> str:
        lines = [
            f"telemetry: {self.num_requests} requests across "
            f"{len(self.replicas)} replica(s)",
            f"  latency sketch (alpha={self.relative_accuracy:g}, "
            f"{self.latency.num_buckets} buckets): "
            f"p50={self.latency.p50:.1f}us  p95={self.latency.p95:.1f}us  "
            f"p99={self.latency.p99:.1f}us",
        ]
        for name in PHASES:
            sketch = self.phases[name]
            if sketch.count:
                lines.append(f"  {name}: mean={sketch.mean:.1f}us "
                             f"p99={sketch.p99:.1f}us")
        lines.append("  slowest requests:")
        for record in self.exemplars.slowest:
            lines.append(
                f"    replica {record.replica} req {record.request_id}: "
                f"{record.latency_us:.1f}us (queue {record.queue_wait_us:.1f}"
                f" + batch {record.batch_wait_us:.1f}"
                f" + exec {record.execute_us:.1f})")
        for report in self.anomalies():
            lines.append("  " + report.to_text().split("\n")[0])
        return "\n".join(lines)


def emit_exemplar_spans(report: ServingReport,
                        request_ids: Iterable[int],
                        spans,
                        track_prefix: str = "exemplar.") -> List[int]:
    """Reconstruct request-waterfall span trees for chosen requests.

    Produces, post-hoc and per request, exactly the span structure the
    simulator's live tracer emits (request span with batch_wait /
    queue_wait / execute children, flow-linked to a device batch span)
    — every input is already in the report's per-request arrays and
    :class:`BatchRecord` list.  This is what makes tail-biased tracing
    honest: the slowest-k exemplars get the *same* waterfall a full
    trace would have drawn, verified against PR 3's tracer in the
    tests.  Returns the request ids actually emitted (sorted).

    ``track_prefix`` namespaces the reconstructed rows (tracks
    ``{prefix}request.N`` / ``{prefix}device`` under the
    ``serving.exemplars`` process) so a merged Chrome trace keeps them
    visually and programmatically distinct from the live tracer's
    ``request.N`` rows — identical track ids previously interleaved
    both span sets on one row.  Pass ``""`` to reproduce the live
    tracer's naming exactly (the equivalence test does).
    """
    if spans is None or not spans.enabled:
        return []
    pid = "serving.exemplars" if track_prefix else "serving.requests"
    device_pid = "serving.exemplars" if track_prefix else "serving"
    device_track = (f"{track_prefix}device" if track_prefix
                    else "serving.device")
    emitted: List[int] = []
    by_batch: Dict[int, List[int]] = {}
    for r in sorted(set(int(r) for r in request_ids)):
        if r < 0 or r >= report.latencies_us.size:
            continue
        b = int(report.batch_index[r]) if report.batch_index.size else -1
        if not 0 <= b < len(report.batches):
            continue
        by_batch.setdefault(b, []).append(r)
    for b in sorted(by_batch):
        batch = report.batches[b]
        flow_ids = []
        for r in by_batch[b]:
            arrival = float(report.arrivals_us[r])
            track = f"{track_prefix}request.{r}"
            with spans.span(track, f"req{r}", arrival, batch.finish_us,
                            pid=pid, batch=b,
                            batch_size=batch.size) as req:
                boundary = max(arrival,
                               min(batch.ready_us, batch.dispatch_us))
                if boundary > arrival:
                    spans.add(track, "batch_wait", arrival, boundary,
                              pid=pid)
                if batch.dispatch_us > boundary:
                    spans.add(track, "queue_wait", boundary,
                              batch.dispatch_us, pid=pid)
                spans.add(track, "execute", batch.dispatch_us,
                          batch.finish_us, pid=pid)
            fid = spans.link(req)
            if fid is not None:
                flow_ids.append(fid)
            emitted.append(r)
        spans.add(device_track, f"batch{b}", batch.dispatch_us,
                  batch.finish_us, pid=device_pid, size=batch.size,
                  flow_in=tuple(flow_ids))
    return emitted
