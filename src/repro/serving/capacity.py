"""Fleet sizing: accelerators and watts to serve a workload.

The Motivation section's argument in numbers: given a model, a target
aggregate QPS and a latency SLA, how many cards (and how much
provisioned power) does each platform need?  This is the per-platform
efficiency of Figure 14 turned back into the server-count units of
Figure 2.

Two layers answer the question at two fidelities:

* :func:`plan_capacity` — closed-form-ish: binary-search one card's
  sustainable QPS, divide the target by it (ignores routing skew,
  traffic shape, and failures);
* :func:`plan_fleet_capacity` — by simulation: binary-search the
  minimum *replica count* whose full fleet run
  (:func:`repro.serving.fleet.simulate_fleet` under a real traffic
  trace, routing policy, and optional fault plan) meets p99 <= SLA
  *and* an availability floor.  Seeded and byte-identical at any
  ``jobs`` count, so the answer is a reproducible artifact, not a
  point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serving.simulator import (BatchingConfig, BatchLatencyModel,
                                     simulate_serving)


@dataclass
class CapacityPlan:
    platform: str
    cards: int
    card_qps: float
    provisioned_watts: float
    sla_us: float
    p99_us: float
    #: request-phase attribution at the operating point (mean us per
    #: request): queue_wait / batch_wait / execute — what the fleet's
    #: latency budget is actually spent on
    breakdown_us: Dict[str, float] = None
    #: error-budget burn at the operating point (violations of the SLA
    #: divided by the allowed 0.1 % violation budget)
    error_budget_burn: float = 0.0

    @property
    def total_watts(self) -> float:
        return self.cards * self.provisioned_watts

    @property
    def qps_per_watt(self) -> float:
        return self.card_qps / self.provisioned_watts


def max_qps_per_card(latency_model, sla_us: float,
                     batching: BatchingConfig = BatchingConfig(),
                     lo: float = 100.0, hi: float = 4e6,
                     num_requests: int = 3000) -> tuple:
    """Binary-search the highest per-card QPS whose p99 meets the SLA."""
    report_at = {}

    def ok(qps: float) -> bool:
        report = simulate_serving(latency_model, qps, batching,
                                  num_requests=num_requests)
        report_at[qps] = report
        return report.meets_sla(sla_us) and report.busy_fraction < 0.97

    if not ok(lo):
        return 0.0, report_at[lo]
    while hi / lo > 1.05:
        mid = (lo * hi) ** 0.5
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo, report_at[lo]


def plan_capacity(model_config, target_qps: float, sla_us: float,
                  machines: Optional[Dict[str, object]] = None,
                  batching: BatchingConfig = BatchingConfig()
                  ) -> Dict[str, CapacityPlan]:
    """Size a fleet per platform for ``target_qps`` under ``sla_us``."""
    from repro.eval.machines import MACHINES
    machines = machines or MACHINES
    plans = {}
    from repro.serving.slo import slo_from_report
    for family, machine in machines.items():
        latency_model = BatchLatencyModel(model_config, machine)
        card_qps, report = max_qps_per_card(latency_model, sla_us, batching)
        cards = int(target_qps // card_qps) + 1 if card_qps > 0 else 0
        plans[family] = CapacityPlan(
            platform=machine.name,
            cards=cards,
            card_qps=card_qps,
            provisioned_watts=machine.provisioned_watts,
            sla_us=sla_us,
            p99_us=report.p99_us,
            breakdown_us=report.breakdown_means(),
            error_budget_burn=slo_from_report(report, sla_us).burn_rate,
        )
    return plans


# ---------------------------------------------------------------------------
# fleet capacity: answered by simulation, not a closed-form guess
# ---------------------------------------------------------------------------

@dataclass
class FleetCapacityPlan:
    """Minimum fleet size meeting the SLOs for one traffic trace."""

    replicas: int
    policy: str
    sla_us: float
    availability_target: float
    p99_us: float
    availability: float
    #: whether any fleet size within ``max_replicas`` satisfied the SLOs
    feasible: bool
    #: (replicas, p99_us, availability, ok) per size probed, in probe order
    probes: List[Dict] = field(default_factory=list)
    trace: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {
            "replicas": self.replicas,
            "policy": self.policy,
            "sla_us": self.sla_us,
            "availability_target": self.availability_target,
            "p99_us": self.p99_us,
            "availability": self.availability,
            "feasible": self.feasible,
            "probes": self.probes,
            "trace": self.trace,
        }


def plan_fleet_capacity(latency_model, traffic, sla_us: float,
                        availability_target: float = 0.999,
                        config=None, policy: str = "power_of_two",
                        max_replicas: int = 64, fault_plan=None,
                        jobs: int = 1) -> FleetCapacityPlan:
    """Minimum replica count meeting p99 <= SLA and the availability floor.

    Doubles the fleet size until the SLOs hold (or ``max_replicas`` is
    hit), then binary-searches the boundary.  Every probe is a full
    seeded :func:`~repro.serving.fleet.simulate_fleet` run over the
    *same* trace, so the answer accounts for routing skew, burstiness,
    and (when ``fault_plan`` targets replicas) correlated failures —
    and replays byte-identically at any ``jobs`` count.

    ``config`` supplies the non-size knobs (router, batching,
    resilience, topology); its replica tuple is re-sized per probe.
    """
    from dataclasses import replace as _replace

    from repro.serving.fleet import (FleetConfig, RouterConfig,
                                     simulate_fleet, uniform_fleet)
    from repro.serving.traffic import TrafficTrace

    if config is None:
        config = FleetConfig(replicas=uniform_fleet(1),
                             router=RouterConfig(policy=policy))
    elif config.router.policy != policy:
        config = _replace(config, router=_replace(config.router,
                                                  policy=policy))

    probes: List[Dict] = []
    results: Dict[int, object] = {}

    def ok(replicas: int) -> bool:
        report = simulate_fleet(latency_model, traffic,
                                config.with_replica_count(replicas),
                                fault_plan=fault_plan, jobs=jobs,
                                collect_telemetry=False)
        results[replicas] = report
        good = (report.meets_sla(sla_us)
                and report.availability >= availability_target)
        probes.append({"replicas": replicas,
                       "p99_us": report.percentile(99),
                       "availability": report.availability,
                       "ok": bool(good)})
        return good

    lo, hi = 1, None
    n = 1
    while n <= max_replicas:
        if ok(n):
            hi = n
            break
        lo = n + 1
        n *= 2
    feasible = hi is not None
    if feasible:
        # smallest size in [lo, hi] that passes; hi is known-good
        while lo < hi:
            mid = (lo + hi) // 2
            if ok(mid):
                hi = mid
            else:
                lo = mid + 1
        best = hi
    else:
        best = max_replicas
    report = results.get(best)
    if report is None:
        ok(best)
        report = results[best]
    return FleetCapacityPlan(
        replicas=best,
        policy=policy,
        sla_us=sla_us,
        availability_target=availability_target,
        p99_us=report.percentile(99),
        availability=report.availability,
        feasible=feasible,
        probes=probes,
        trace=(traffic.to_dict()
               if isinstance(traffic, TrafficTrace) else None),
    )
