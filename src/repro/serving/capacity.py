"""Fleet sizing: accelerators and watts to serve a workload.

The Motivation section's argument in numbers: given a model, a target
aggregate QPS and a latency SLA, how many cards (and how much
provisioned power) does each platform need?  This is the per-platform
efficiency of Figure 14 turned back into the server-count units of
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.serving.simulator import (BatchingConfig, BatchLatencyModel,
                                     simulate_serving)


@dataclass
class CapacityPlan:
    platform: str
    cards: int
    card_qps: float
    provisioned_watts: float
    sla_us: float
    p99_us: float
    #: request-phase attribution at the operating point (mean us per
    #: request): queue_wait / batch_wait / execute — what the fleet's
    #: latency budget is actually spent on
    breakdown_us: Dict[str, float] = None
    #: error-budget burn at the operating point (violations of the SLA
    #: divided by the allowed 0.1 % violation budget)
    error_budget_burn: float = 0.0

    @property
    def total_watts(self) -> float:
        return self.cards * self.provisioned_watts

    @property
    def qps_per_watt(self) -> float:
        return self.card_qps / self.provisioned_watts


def max_qps_per_card(latency_model, sla_us: float,
                     batching: BatchingConfig = BatchingConfig(),
                     lo: float = 100.0, hi: float = 4e6,
                     num_requests: int = 3000) -> tuple:
    """Binary-search the highest per-card QPS whose p99 meets the SLA."""
    report_at = {}

    def ok(qps: float) -> bool:
        report = simulate_serving(latency_model, qps, batching,
                                  num_requests=num_requests)
        report_at[qps] = report
        return report.meets_sla(sla_us) and report.busy_fraction < 0.97

    if not ok(lo):
        return 0.0, report_at[lo]
    while hi / lo > 1.05:
        mid = (lo * hi) ** 0.5
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo, report_at[lo]


def plan_capacity(model_config, target_qps: float, sla_us: float,
                  machines: Optional[Dict[str, object]] = None,
                  batching: BatchingConfig = BatchingConfig()
                  ) -> Dict[str, CapacityPlan]:
    """Size a fleet per platform for ``target_qps`` under ``sla_us``."""
    from repro.eval.machines import MACHINES
    machines = machines or MACHINES
    plans = {}
    from repro.serving.slo import slo_from_report
    for family, machine in machines.items():
        latency_model = BatchLatencyModel(model_config, machine)
        card_qps, report = max_qps_per_card(latency_model, sla_us, batching)
        cards = int(target_qps // card_qps) + 1 if card_qps > 0 else 0
        plans[family] = CapacityPlan(
            platform=machine.name,
            cards=cards,
            card_qps=card_qps,
            provisioned_watts=machine.provisioned_watts,
            sla_us=sla_us,
            p99_us=report.p99_us,
            breakdown_us=report.breakdown_means(),
            error_budget_burn=slo_from_report(report, sla_us).burn_rate,
        )
    return plans
