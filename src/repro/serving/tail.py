"""Differential tail-latency attribution: why p99 ≠ p50.

Aggregate percentiles say *that* a tail exists; capacity decisions need
to know *why*.  This module contrasts the requests at or beyond a tail
percentile against the requests around the median, along three axes:

* **phase mix** — queue-wait vs batch-formation-wait vs execute
  microseconds (from the serving simulator's exact per-request
  attribution).  A tail dominated by ``queue_wait`` is head-of-line
  blocking (shrink batches or add cards); a ``batch_wait`` tail is the
  batching window itself (shrink ``max_wait_us``); an ``execute`` tail
  is big-batch amortisation pricing in (the paper's Section 6.1
  tension).
* **operator-category mix** — what the batches serving tail requests
  actually executed, from the cached per-batch-size
  :class:`~repro.eval.opmodel.GraphEstimate` breakdowns.
* **stall-cause mix** (optional) — cycle-level stall attribution of a
  tail-exemplar vs a median-exemplar simulated execution, when the
  caller profiled them (see ``python -m repro.serve_report``).

Every axis reports tail, median, and delta so the answer reads as a
diff, not two tables to eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


def _mix_delta(tail: Dict[str, float],
               median: Dict[str, float]) -> Dict[str, float]:
    keys = sorted(set(tail) | set(median))
    return {k: tail.get(k, 0.0) - median.get(k, 0.0) for k in keys}


@dataclass
class TailAttribution:
    """Tail vs median contrast for one serving run."""

    tail_q: float
    tail_threshold_us: float
    median_band: tuple            #: (lo percentile, hi percentile)
    tail_requests: int
    median_requests: int
    #: mean microseconds per phase
    phase_us: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: mean batch size each cohort was served in
    batch_size: Dict[str, float] = field(default_factory=dict)
    #: operator-category time fractions (when a latency model with
    #: per-batch estimates was supplied)
    category_mix: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: cycle-level stall-cause fractions (when exemplars were profiled)
    stall_mix: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: batch indices of the exemplar tail / median batches
    exemplar_batches: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "tail_q": self.tail_q,
            "tail_threshold_us": self.tail_threshold_us,
            "median_band": list(self.median_band),
            "tail_requests": self.tail_requests,
            "median_requests": self.median_requests,
            "phase_us": self.phase_us,
            "batch_size": self.batch_size,
            "category_mix": self.category_mix,
            "stall_mix": self.stall_mix,
            "exemplar_batches": self.exemplar_batches,
        }

    def to_text(self) -> str:
        lines = [
            f"tail (>= p{self.tail_q:g} = {self.tail_threshold_us:.0f} us, "
            f"n={self.tail_requests}) vs median "
            f"(p{self.median_band[0]:g}-p{self.median_band[1]:g}, "
            f"n={self.median_requests})",
            "",
            f"  {'phase':<12}{'tail us':>10}{'median us':>11}{'delta':>10}",
        ]
        for phase in ("queue_wait", "batch_wait", "execute"):
            t = self.phase_us.get("tail", {}).get(phase, 0.0)
            m = self.phase_us.get("median", {}).get(phase, 0.0)
            lines.append(f"  {phase:<12}{t:>10.1f}{m:>11.1f}{t - m:>10.1f}")
        if self.batch_size:
            lines.append(
                f"  {'batch size':<12}"
                f"{self.batch_size.get('tail', 0):>10.1f}"
                f"{self.batch_size.get('median', 0):>11.1f}"
                f"{self.batch_size.get('tail', 0) - self.batch_size.get('median', 0):>10.1f}")
        if self.category_mix:
            lines.append("")
            lines.append(f"  {'op category':<12}{'tail %':>10}"
                         f"{'median %':>11}{'delta':>10}")
            delta = self.category_mix.get("delta", {})
            for cat in sorted(delta, key=lambda c: -abs(delta[c])):
                t = 100 * self.category_mix["tail"].get(cat, 0.0)
                m = 100 * self.category_mix["median"].get(cat, 0.0)
                lines.append(f"  {cat:<12}{t:>10.1f}{m:>11.1f}{t - m:>10.1f}")
        if self.stall_mix:
            lines.append("")
            lines.append(f"  {'stall cause':<18}{'tail %':>8}"
                         f"{'median %':>10}{'delta':>8}")
            delta = self.stall_mix.get("delta", {})
            for cause in sorted(delta, key=lambda c: -abs(delta[c])):
                t = 100 * self.stall_mix["tail"].get(cause, 0.0)
                m = 100 * self.stall_mix["median"].get(cause, 0.0)
                lines.append(f"  {cause:<18}{t:>8.1f}{m:>10.1f}"
                             f"{t - m:>8.1f}")
        return "\n".join(lines)


def _phase_means(report, idx: np.ndarray) -> Dict[str, float]:
    if idx.size == 0:
        return {"queue_wait": 0.0, "batch_wait": 0.0, "execute": 0.0}
    return {"queue_wait": float(report.queue_wait_us[idx].mean()),
            "batch_wait": float(report.batch_wait_us[idx].mean()),
            "execute": float(report.execute_us[idx].mean())}


def _cohort_category_mix(report, idx: np.ndarray,
                         latency_model) -> Dict[str, float]:
    """Request-weighted operator-category mix for one cohort."""
    mix: Dict[str, float] = {}
    for r in idx:
        batch = report.batches[int(report.batch_index[r])].size
        for cat, frac in latency_model.category_fractions(batch).items():
            mix[cat] = mix.get(cat, 0.0) + frac
    total = sum(mix.values())
    if total > 0:
        mix = {k: v / total for k, v in mix.items()}
    return mix


def attribute_tail(report, latency_model=None, tail_q: float = 99.0,
                   median_band=(25.0, 75.0),
                   stall_mix: Optional[Dict[str, Dict[str, float]]] = None
                   ) -> TailAttribution:
    """Contrast tail (≥ ``tail_q``) requests against the median band.

    ``latency_model`` may be a
    :class:`~repro.serving.simulator.BatchLatencyModel` (or anything
    with ``category_fractions(batch)``); without it the operator-mix
    axis is omitted.  ``stall_mix`` is an optional precomputed
    ``{"tail": {...}, "median": {...}}`` of stall-cause fractions from
    exemplar cycle-level profiles.
    """
    latency = np.asarray(report.latencies_us)
    if latency.size == 0:
        return TailAttribution(tail_q=tail_q, tail_threshold_us=float("nan"),
                               median_band=tuple(median_band),
                               tail_requests=0, median_requests=0)
    threshold = float(np.percentile(latency, tail_q))
    lo = float(np.percentile(latency, median_band[0]))
    hi = float(np.percentile(latency, median_band[1]))
    tail_idx = np.flatnonzero(latency >= threshold)
    median_idx = np.flatnonzero((latency >= lo) & (latency <= hi))

    def mean_batch(idx: np.ndarray) -> float:
        if idx.size == 0:
            return 0.0
        sizes = [report.batches[int(report.batch_index[r])].size
                 for r in idx]
        return float(np.mean(sizes))

    result = TailAttribution(
        tail_q=tail_q,
        tail_threshold_us=threshold,
        median_band=tuple(median_band),
        tail_requests=int(tail_idx.size),
        median_requests=int(median_idx.size),
        phase_us={
            "tail": _phase_means(report, tail_idx),
            "median": _phase_means(report, median_idx),
            "delta": _mix_delta(_phase_means(report, tail_idx),
                                _phase_means(report, median_idx)),
        },
        batch_size={"tail": mean_batch(tail_idx),
                    "median": mean_batch(median_idx)},
    )
    if latency_model is not None and hasattr(latency_model,
                                             "category_fractions"):
        tail_mix = _cohort_category_mix(report, tail_idx, latency_model)
        median_mix = _cohort_category_mix(report, median_idx, latency_model)
        result.category_mix = {"tail": tail_mix, "median": median_mix,
                               "delta": _mix_delta(tail_mix, median_mix)}
    if stall_mix:
        tail_s = stall_mix.get("tail", {})
        median_s = stall_mix.get("median", {})
        result.stall_mix = {"tail": tail_s, "median": median_s,
                            "delta": _mix_delta(tail_s, median_s)}
    # Exemplars: the batch serving the worst request, and the batch
    # serving the request closest to p50 — the pair a cycle-level
    # profile should contrast.
    worst = int(np.argmax(latency))
    p50 = float(np.percentile(latency, 50))
    nearest = int(np.argmin(np.abs(latency - p50)))
    result.exemplar_batches = {
        "tail": int(report.batch_index[worst]),
        "median": int(report.batch_index[nearest]),
    }
    return result
