"""Request-level serving simulation.

A single accelerator card serves a Poisson stream of single-sample
inference requests through a batching front end: requests accumulate
until either ``max_batch`` are waiting or the oldest has waited
``max_wait_us``; the batch then executes for the model's batch-dependent
latency (from the analytical operator model), during which further
arrivals queue.

This is the mechanism behind the paper's latency/batch-size tension:
larger batches raise hardware utilisation ("the kernels are able to
better amortize the setup costs", Section 6.1) but serving "under
stringent latency requirements" caps how large a batch the SLA allows.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class BatchingConfig:
    max_batch: int = 256
    max_wait_us: float = 200.0


@dataclass
class ServingReport:
    """What one serving simulation measured."""

    qps_offered: float
    qps_served: float
    latencies_us: np.ndarray
    batch_sizes: List[int]
    busy_fraction: float

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies_us, q))

    @property
    def p50_us(self) -> float:
        return self.percentile(50)

    @property
    def p99_us(self) -> float:
        return self.percentile(99)

    @property
    def mean_batch(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def meets_sla(self, sla_us: float, q: float = 99.0) -> bool:
        return self.percentile(q) <= sla_us


class BatchLatencyModel:
    """Caches per-batch-size model latency from the analytical stack."""

    def __init__(self, model_config, machine,
                 candidate_batches=(1, 2, 4, 8, 16, 32, 64, 128, 256)):
        from repro.eval.opmodel import estimate_graph
        from repro.models.dlrm import build_dlrm_graph
        from repro.runtime.executor import GraphExecutor

        self.latency_us: Dict[int, float] = {}
        for batch in candidate_batches:
            graph = build_dlrm_graph(model_config, batch)
            executor = GraphExecutor(machine, mode="graph")
            placement = executor.compile(graph)
            estimate = estimate_graph(
                machine, graph,
                placement if machine.family == "mtia" else None)
            self.latency_us[batch] = estimate.total_seconds * 1e6
        self._batches = sorted(self.latency_us)

    def __call__(self, batch: int) -> float:
        """Latency for an arbitrary batch (ceil to the next candidate)."""
        idx = bisect.bisect_left(self._batches, batch)
        idx = min(idx, len(self._batches) - 1)
        return self.latency_us[self._batches[idx]]


def simulate_serving(latency_model: Callable[[int], float],
                     qps: float,
                     batching: BatchingConfig = BatchingConfig(),
                     num_requests: int = 5000,
                     seed: int = 0,
                     registry=None) -> ServingReport:
    """Simulate serving ``num_requests`` Poisson arrivals at ``qps``.

    ``latency_model(batch_size)`` returns the execution latency in
    microseconds.  Single server, single in-flight batch (the runtime's
    default stream), FIFO within the queue.

    ``registry`` (or the opt-in :func:`repro.obs.default_registry`)
    receives the request-latency histogram (p50/p95/p99 via the
    ``serving_latency_us`` instrument), batch-size histogram, and a
    device-busy-fraction gauge.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = np.random.default_rng(seed)
    inter_us = rng.exponential(1e6 / qps, size=num_requests)
    arrivals = np.cumsum(inter_us)

    latencies = np.zeros(num_requests)
    batch_sizes: List[int] = []
    busy_us = 0.0
    device_free = 0.0
    i = 0
    while i < num_requests:
        first_arrival = max(arrivals[i], device_free)
        # Collect the batch: everyone who arrives before dispatch.
        dispatch = min(arrivals[i] + batching.max_wait_us,
                       max(device_free, arrivals[i]))
        # The batch closes when either the window expires or max_batch
        # arrivals are in; while the device is busy the window keeps
        # filling.
        deadline = arrivals[i] + batching.max_wait_us
        dispatch_at = max(deadline, device_free)
        j = i
        while (j < num_requests and j - i < batching.max_batch
               and arrivals[j] <= dispatch_at):
            j += 1
        batch = j - i
        # If the batch filled early, dispatch as soon as the last member
        # arrived (no pointless waiting) — but never before the device
        # frees up.
        if batch == batching.max_batch:
            dispatch_at = max(arrivals[j - 1], device_free)
        execute_us = latency_model(batch)
        finish = dispatch_at + execute_us
        latencies[i:j] = finish - arrivals[i:j]
        batch_sizes.append(batch)
        busy_us += execute_us
        device_free = finish
        i = j

    span_us = device_free - arrivals[0] if num_requests else 1.0
    report = ServingReport(
        qps_offered=qps,
        qps_served=num_requests / (span_us / 1e6),
        latencies_us=latencies,
        batch_sizes=batch_sizes,
        busy_fraction=min(1.0, busy_us / span_us),
    )
    if registry is None:
        from repro.obs.metrics import default_registry
        registry = default_registry()
    if registry is not None:
        latency_hist = registry.histogram(
            "serving_latency_us",
            "end-to-end request latency (arrival to batch finish)").labels()
        for value in latencies:
            latency_hist.observe(float(value))
        batch_hist = registry.histogram(
            "serving_batch_size", "dispatched batch sizes").labels()
        for batch in batch_sizes:
            batch_hist.observe(batch)
        registry.counter("serving_requests",
                         "requests served").labels().inc(num_requests)
        registry.gauge("serving_busy_fraction",
                       "device busy fraction").labels().set(
                           report.busy_fraction)
    return report
