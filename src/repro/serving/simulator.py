"""Request-level serving simulation.

A single accelerator card serves a Poisson stream of single-sample
inference requests through a batching front end: requests accumulate
until either ``max_batch`` are waiting or the oldest has waited
``max_wait_us``; the batch then executes for the model's batch-dependent
latency (from the analytical operator model), during which further
arrivals queue.

This is the mechanism behind the paper's latency/batch-size tension:
larger batches raise hardware utilisation ("the kernels are able to
better amortize the setup costs", Section 6.1) but serving "under
stringent latency requirements" caps how large a batch the SLA allows.

Beyond aggregate percentiles, the simulation attributes *every* request
microsecond to one of three phases (so tail requests can be explained,
not just counted — see :mod:`repro.serving.tail`):

* ``batch_wait`` — arrival until the batch is complete-and-eligible
  (the window expired or ``max_batch`` arrivals are in);
* ``queue_wait`` — batch ready but the device still busy with its
  predecessor (head-of-line blocking);
* ``execute`` — dispatch to finish.

``queue_wait + batch_wait + execute == latency`` exactly, per request.
With a :class:`~repro.obs.spans.SpanTracer` attached, selected batches
additionally emit a request-waterfall span tree (request → phase spans,
flow-linked to the batch's device span) onto one Chrome/Perfetto
timeline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np


def resolve_arrivals(qps: float, num_requests: int, seed: int,
                     arrivals=None):
    """The arrival stream of one serving run: drawn or injected.

    With ``arrivals=None`` (the historical path) a Poisson stream is
    drawn from ``seed`` at rate ``qps`` — bit-identical to what the
    simulators always produced.  A fleet router instead *injects* the
    arrival subsequence it assigned to this replica; the replica engine
    then consumes it verbatim (sorted, in microseconds).  Returns
    ``(arrivals, qps)`` where ``qps`` falls back to the stream's own
    offered rate when the caller passed ``qps <= 0`` alongside explicit
    arrivals (an empty replica simply offers 0).
    """
    if arrivals is None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        rng = np.random.default_rng(seed)
        inter_us = rng.exponential(1e6 / qps, size=num_requests)
        return np.cumsum(inter_us), qps
    arrivals = np.asarray(arrivals, dtype=float)
    if arrivals.size > 1 and np.any(np.diff(arrivals) < 0):
        raise ValueError("injected arrivals must be non-decreasing")
    if qps <= 0:
        span_us = (float(arrivals[-1] - arrivals[0])
                   if arrivals.size > 1 else 0.0)
        qps = (arrivals.size / (span_us / 1e6) if span_us > 0
               else float(arrivals.size))
    return arrivals, qps


@dataclass(frozen=True)
class BatchingConfig:
    max_batch: int = 256
    max_wait_us: float = 200.0


#: Request outcome codes (``ServingReport.status``).  Anything but
#: SERVED is an *abort*: excluded from latency quantiles, counted
#: against availability (see ``ServingReport.availability``).
STATUS_SERVED = 0      #: completed and delivered in time
STATUS_SHED = 1        #: dropped at admission (queue saturation)
STATUS_TIMEOUT = 2     #: missed its deadline, retry budget exhausted
STATUS_FAILED = 3      #: lost to a card failure, retry budget exhausted
STATUS_NAMES = ("served", "shed", "timeout", "failed")


@dataclass
class BatchRecord:
    """One dispatched batch: when it formed, ran, and what it held."""

    index: int
    size: int
    first_arrival_us: float    #: arrival of the oldest member
    ready_us: float            #: complete-and-eligible (window/full)
    dispatch_us: float         #: device actually started
    finish_us: float
    queue_depth: int           #: requests still waiting at dispatch

    @property
    def execute_us(self) -> float:
        return self.finish_us - self.dispatch_us

    def to_dict(self) -> Dict:
        return {"index": self.index, "size": self.size,
                "first_arrival_us": self.first_arrival_us,
                "ready_us": self.ready_us,
                "dispatch_us": self.dispatch_us,
                "finish_us": self.finish_us,
                "execute_us": self.execute_us,
                "queue_depth": self.queue_depth}


def _empty() -> np.ndarray:
    return np.zeros(0)


@dataclass
class ServingReport:
    """What one serving simulation measured."""

    qps_offered: float
    qps_served: float
    latencies_us: np.ndarray
    batch_sizes: List[int]
    busy_fraction: float
    #: per-request phase attribution; each sums with the others to the
    #: request's latency (arrays align with ``latencies_us``)
    queue_wait_us: np.ndarray = field(default_factory=_empty)
    batch_wait_us: np.ndarray = field(default_factory=_empty)
    execute_us: np.ndarray = field(default_factory=_empty)
    arrivals_us: np.ndarray = field(default_factory=_empty)
    #: index into ``batches`` for each request
    batch_index: np.ndarray = field(default_factory=_empty)
    batches: List[BatchRecord] = field(default_factory=list)
    #: per-request outcome (``STATUS_*``); empty means "all served"
    #: (the plain simulator never aborts, so it skips the allocation)
    status: np.ndarray = field(default_factory=_empty)
    #: microseconds a request spent on attempts that did *not* serve it
    #: (timeout/failure + backoff before the successful attempt)
    retry_overhead_us: np.ndarray = field(default_factory=_empty)
    #: dispatch attempts per request (1 = first try succeeded)
    attempts: np.ndarray = field(default_factory=_empty)
    #: abort instant for non-served requests (NaN for served ones);
    #: aligns with ``arrivals_us``
    abort_us: np.ndarray = field(default_factory=_empty)
    #: batches dispatched twice (hedged) and how often the hedge won
    hedged_batches: int = 0
    hedge_wins: int = 0
    #: bounded mergeable telemetry (:class:`ServingTelemetry`), attached
    #: when the simulation ran with ``collect_telemetry=True``
    telemetry: Optional[object] = None

    @property
    def served_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of served requests, or ``None`` if all served."""
        if self.status.size == 0:
            return None
        return self.status == STATUS_SERVED

    @property
    def availability(self) -> float:
        """Fraction of offered requests actually served (1.0 = no aborts).

        Aborted requests (shed/timeout/failed) count against availability
        but are *excluded* from latency quantiles — a shed request has no
        meaningful latency, and folding abort times into percentiles
        would let load shedding "improve" the p99.
        """
        n = self.arrivals_us.size or self.latencies_us.size
        if n == 0:
            return 1.0
        mask = self.served_mask
        if mask is None:
            return 1.0
        return float(np.count_nonzero(mask)) / n

    def counts_by_status(self) -> Dict[str, int]:
        """Request counts keyed by outcome name."""
        n = self.arrivals_us.size or self.latencies_us.size
        if self.status.size == 0:
            return {"served": int(n), "shed": 0, "timeout": 0, "failed": 0}
        return {name: int(np.count_nonzero(self.status == code))
                for code, name in enumerate(STATUS_NAMES)}

    def percentile(self, q: float) -> float:
        """Latency percentile over *served* requests only."""
        mask = self.served_mask
        lat = self.latencies_us if mask is None else self.latencies_us[mask]
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def p50_us(self) -> float:
        return self.percentile(50)

    @property
    def p99_us(self) -> float:
        return self.percentile(99)

    @property
    def mean_batch(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def meets_sla(self, sla_us: float, q: float = 99.0) -> bool:
        p = self.percentile(q)
        return bool(p <= sla_us)   # NaN (empty run) never meets an SLA

    # -- request-phase queries -------------------------------------------
    def breakdown_means(self) -> Dict[str, float]:
        """Mean microseconds per phase across *served* requests."""
        mask = self.served_mask
        zero = {"queue_wait": 0.0, "batch_wait": 0.0, "execute": 0.0,
                "retry_overhead": 0.0}
        if self.latencies_us.size == 0:
            return zero

        def mean_of(values: np.ndarray) -> float:
            if values.size == 0:
                return 0.0
            served = values if mask is None else values[mask]
            return float(served.mean()) if served.size else 0.0

        return {"queue_wait": mean_of(self.queue_wait_us),
                "batch_wait": mean_of(self.batch_wait_us),
                "execute": mean_of(self.execute_us),
                "retry_overhead": mean_of(self.retry_overhead_us)}

    def queue_depth_series(self) -> Dict[str, List[float]]:
        """Queue depth sampled at each dispatch instant."""
        return {"time_us": [b.dispatch_us for b in self.batches],
                "depth": [float(b.queue_depth) for b in self.batches]}

    def batch_occupancy_series(self, max_batch: int) -> Dict[str, List[float]]:
        """Dispatched batch size as a fraction of ``max_batch``."""
        return {"time_us": [b.dispatch_us for b in self.batches],
                "occupancy": [b.size / max_batch for b in self.batches]}

    def request_rows(self, limit: Optional[int] = None) -> List[Dict]:
        """Per-request breakdown rows (JSON-ready), optionally capped."""
        n = self.latencies_us.size
        if limit is not None:
            n = min(n, limit)
        rows = []
        for r in range(n):
            b = int(self.batch_index[r]) if self.batch_index.size else -1
            row = {
                "request": r,
                "arrival_us": float(self.arrivals_us[r]),
                "queue_wait_us": float(self.queue_wait_us[r]),
                "batch_wait_us": float(self.batch_wait_us[r]),
                "execute_us": float(self.execute_us[r]),
                "latency_us": float(self.latencies_us[r]),
                "batch": b,
                "batch_size": self.batches[b].size if 0 <= b < len(
                    self.batches) else 0,
                "status": (STATUS_NAMES[int(self.status[r])]
                           if self.status.size else "served"),
                "attempts": (int(self.attempts[r])
                             if self.attempts.size else 1),
                "retry_overhead_us": (float(self.retry_overhead_us[r])
                                      if self.retry_overhead_us.size
                                      else 0.0),
            }
            rows.append(row)
        return rows


class BatchLatencyModel:
    """Caches per-batch-size model latency from the analytical stack.

    Also retains each candidate batch's :class:`GraphEstimate`, so the
    tail-attribution layer can ask "what *operator mix* did a batch of
    this size execute" without re-running the model.
    """

    def __init__(self, model_config, machine,
                 candidate_batches=(1, 2, 4, 8, 16, 32, 64, 128, 256)):
        from repro.eval.opmodel import estimate_graph
        from repro.models.dlrm import build_dlrm_graph
        from repro.runtime.executor import GraphExecutor

        self.latency_us: Dict[int, float] = {}
        self.estimates: Dict[int, object] = {}
        for batch in candidate_batches:
            graph = build_dlrm_graph(model_config, batch)
            executor = GraphExecutor(machine, mode="graph")
            placement = executor.compile(graph)
            estimate = estimate_graph(
                machine, graph,
                placement if machine.family == "mtia" else None)
            self.latency_us[batch] = estimate.total_seconds * 1e6
            self.estimates[batch] = estimate
        self._batches = sorted(self.latency_us)

    def candidate_for(self, batch: int) -> int:
        """The candidate batch size used for an arbitrary batch."""
        idx = bisect.bisect_left(self._batches, batch)
        idx = min(idx, len(self._batches) - 1)
        return self._batches[idx]

    def __call__(self, batch: int) -> float:
        """Latency for an arbitrary batch (ceil to the next candidate)."""
        return self.latency_us[self.candidate_for(batch)]

    def estimate_for(self, batch: int):
        """The :class:`GraphEstimate` behind ``self(batch)``."""
        return self.estimates[self.candidate_for(batch)]

    def category_fractions(self, batch: int) -> Dict[str, float]:
        """Operator-category time mix for a batch of this size."""
        return self.estimate_for(batch).category_fractions()


def simulate_serving(latency_model: Callable[[int], float],
                     qps: float,
                     batching: BatchingConfig = BatchingConfig(),
                     num_requests: int = 5000,
                     seed: int = 0,
                     registry=None,
                     spans=None,
                     trace_batches: Optional[Set[int]] = None,
                     trace_requests_per_batch: int = 8,
                     collect_telemetry: bool = False,
                     replica: int = 0,
                     arrivals: Optional[np.ndarray] = None) -> ServingReport:
    """Simulate serving ``num_requests`` Poisson arrivals at ``qps``.

    ``latency_model(batch_size)`` returns the execution latency in
    microseconds.  Single server, single in-flight batch (the runtime's
    default stream), FIFO within the queue.

    ``registry`` (or the opt-in :func:`repro.obs.default_registry`)
    receives the request-latency histogram (p50/p95/p99 via the
    ``serving_latency_us`` instrument), per-phase wait histograms,
    batch-size/occupancy histograms, queue-depth samples, and a
    device-busy-fraction gauge.

    ``spans`` is an optional :class:`~repro.obs.spans.SpanTracer`; when
    enabled, batches in ``trace_batches`` (default: all) emit a device
    span plus per-request waterfalls (first ``trace_requests_per_batch``
    members), flow-linked request → batch.  Tracing never alters the
    simulation: results are bit-identical with spans on or off (the
    conformance determinism pillar checks this).

    ``collect_telemetry=True`` attaches a
    :class:`~repro.serving.telemetry.ServingTelemetry` (quantile
    sketches, windowed series, tail exemplars tagged ``replica``) to
    ``report.telemetry``.  Telemetry is derived *from* the finished
    report, so it can never perturb the simulation either.

    ``arrivals`` injects an explicit (sorted, microsecond) arrival
    vector instead of drawing a Poisson stream — the fleet layer routes
    a traffic trace and hands each replica its assigned subsequence.
    """
    arrivals, qps = resolve_arrivals(qps, num_requests, seed, arrivals)
    num_requests = int(arrivals.size)

    tracing = spans is not None and spans.enabled

    latencies = np.zeros(num_requests)
    queue_wait = np.zeros(num_requests)
    batch_wait = np.zeros(num_requests)
    execute = np.zeros(num_requests)
    batch_index = np.zeros(num_requests, dtype=np.int64)
    batch_sizes: List[int] = []
    batches: List[BatchRecord] = []
    busy_us = 0.0
    device_free = 0.0
    i = 0
    while i < num_requests:
        # The batch closes when either the window expires or max_batch
        # arrivals are in; while the device is busy the window keeps
        # filling.
        deadline = arrivals[i] + batching.max_wait_us
        dispatch_at = max(deadline, device_free)
        j = i
        while (j < num_requests and j - i < batching.max_batch
               and arrivals[j] <= dispatch_at):
            j += 1
        batch = j - i
        # If the batch filled early, dispatch as soon as the last member
        # arrived (no pointless waiting) — but never before the device
        # frees up.
        if batch == batching.max_batch:
            dispatch_at = max(arrivals[j - 1], device_free)
        # The instant the batch became complete-and-eligible: the last
        # member's arrival when it filled, the window deadline otherwise
        # (never after dispatch).  Before it: forming.  After it: queued
        # behind the busy device.
        ready = min(dispatch_at,
                    arrivals[j - 1] if batch == batching.max_batch
                    else deadline)
        execute_us = latency_model(batch)
        finish = dispatch_at + execute_us
        k = len(batches)
        latencies[i:j] = finish - arrivals[i:j]
        batch_wait[i:j] = np.clip(ready - arrivals[i:j], 0.0, None)
        queue_wait[i:j] = dispatch_at - np.maximum(arrivals[i:j], ready)
        execute[i:j] = execute_us
        batch_index[i:j] = k
        batch_sizes.append(batch)
        depth = int(np.searchsorted(arrivals, dispatch_at, side="right")) - j
        batches.append(BatchRecord(
            index=k, size=batch, first_arrival_us=float(arrivals[i]),
            ready_us=float(ready), dispatch_us=float(dispatch_at),
            finish_us=float(finish), queue_depth=depth))
        if tracing and (trace_batches is None or k in trace_batches):
            _trace_batch(spans, k, batch, arrivals[i:j], ready, dispatch_at,
                         finish, trace_requests_per_batch, i)
        busy_us += execute_us
        device_free = finish
        i = j

    span_us = device_free - arrivals[0] if num_requests else 0.0
    report = ServingReport(
        qps_offered=qps,
        qps_served=num_requests / (span_us / 1e6) if span_us > 0 else 0.0,
        latencies_us=latencies,
        batch_sizes=batch_sizes,
        busy_fraction=min(1.0, busy_us / span_us) if span_us > 0 else 0.0,
        queue_wait_us=queue_wait,
        batch_wait_us=batch_wait,
        execute_us=execute,
        arrivals_us=arrivals,
        batch_index=batch_index,
        batches=batches,
    )
    if collect_telemetry:
        from repro.serving.telemetry import ServingTelemetry
        report.telemetry = ServingTelemetry.from_report(report,
                                                        replica=replica)
    if registry is None:
        from repro.obs.metrics import default_registry
        registry = default_registry()
    if registry is not None:
        _record_metrics(registry, report, batching)
    return report


def _trace_batch(spans, k: int, batch: int, arrivals: np.ndarray,
                 ready: float, dispatch_at: float, finish: float,
                 requests_per_batch: int, first_request: int) -> None:
    """Emit the request-waterfall span tree for one traced batch."""
    flow_ids = []
    for offset in range(min(batch, requests_per_batch)):
        r = first_request + offset
        arrival = float(arrivals[offset])
        track = f"request.{r}"
        with spans.span(track, f"req{r}", arrival, finish,
                        pid="serving.requests", batch=k,
                        batch_size=batch) as req:
            boundary = max(arrival, min(ready, dispatch_at))
            if boundary > arrival:
                spans.add(track, "batch_wait", arrival, boundary,
                          pid="serving.requests")
            if dispatch_at > boundary:
                spans.add(track, "queue_wait", boundary, dispatch_at,
                          pid="serving.requests")
            spans.add(track, "execute", dispatch_at, finish,
                      pid="serving.requests")
        fid = spans.link(req)
        if fid is not None:
            flow_ids.append(fid)
    spans.add("serving.device", f"batch{k}", dispatch_at, finish,
              pid="serving", size=batch, flow_in=tuple(flow_ids))


def _record_metrics(registry, report: ServingReport,
                    batching: BatchingConfig) -> None:
    """Bulk-record one serving run into a metric registry."""
    registry.histogram(
        "serving_latency_us",
        "end-to-end request latency (arrival to batch finish)"
    ).labels().observe_many(report.latencies_us)
    for phase, values in (("queue_wait", report.queue_wait_us),
                          ("batch_wait", report.batch_wait_us),
                          ("execute", report.execute_us)):
        registry.histogram(
            "serving_phase_us",
            "per-request phase attribution (queue/batch/execute)"
        ).labels(phase=phase).observe_many(values)
    registry.histogram(
        "serving_batch_size", "dispatched batch sizes"
    ).labels().observe_many(report.batch_sizes)
    registry.histogram(
        "serving_queue_depth", "queue depth sampled at dispatch"
    ).labels().observe_many([b.queue_depth for b in report.batches])
    registry.counter("serving_requests", "requests served").labels().inc(
        report.latencies_us.size)
    registry.gauge("serving_availability",
                   "fraction of offered requests served").labels().set(
                       report.availability)
    if report.status.size:
        for name, count in report.counts_by_status().items():
            if count:
                registry.counter(
                    "serving_outcomes", "requests by outcome"
                ).labels(status=name).inc(count)
    registry.gauge("serving_busy_fraction",
                   "device busy fraction").labels().set(
                       report.busy_fraction)
    registry.gauge("serving_batch_occupancy",
                   "mean batch size / max_batch").labels().set(
                       report.mean_batch / batching.max_batch
                       if batching.max_batch else 0.0)
    if report.telemetry is not None:
        report.telemetry.record_into(registry)
