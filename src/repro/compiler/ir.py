"""FX-like graph IR.

A :class:`Graph` is an ordered list of SSA nodes; each node names an
operator from :mod:`repro.compiler.ops`, its input nodes, attributes,
and the inferred output :class:`~repro.runtime.tensor.TensorMeta`.
The ML-model compiler "applies several transformations and model-level
optimizations to the PyTorch graph represented as FX IR" (Section 5);
our passes do the same over this IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.runtime.tensor import TensorMeta


@dataclass
class Node:
    """One SSA operation in the graph."""

    name: str
    op: str
    inputs: List[str] = field(default_factory=list)
    attrs: Dict = field(default_factory=dict)
    meta: Optional[TensorMeta] = None

    def __repr__(self) -> str:
        shape = self.meta.shape if self.meta else "?"
        return (f"%{self.name} = {self.op}({', '.join(self.inputs)}) "
                f"-> {shape}")


class Graph:
    """An ordered operator graph with named outputs."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self.outputs: List[str] = []

    # -- construction ----------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        for inp in node.inputs:
            if inp not in self._nodes:
                raise ValueError(
                    f"node {node.name!r} references undefined input {inp!r}")
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node

    def insert_before(self, anchor: str, node: Node) -> Node:
        """Add ``node`` immediately before ``anchor`` in execution order."""
        self.add_node(node)
        self._order.remove(node.name)
        self._order.insert(self._order.index(anchor), node.name)
        return node

    def mark_output(self, name: str) -> None:
        if name not in self._nodes:
            raise ValueError(f"unknown node {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    # -- access ------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Node]:
        for name in self._order:
            yield self._nodes[name]

    def nodes_by_op(self, op: str) -> List[Node]:
        return [n for n in self if n.op == op]

    def users(self, name: str) -> List[Node]:
        """Nodes that consume ``name``."""
        return [n for n in self if name in n.inputs]

    # -- mutation (used by passes) ------------------------------------------
    def replace_uses(self, old: str, new: str) -> None:
        """Rewrite every use of ``old`` to ``new``."""
        for node in self:
            node.inputs = [new if i == old else i for i in node.inputs]
        self.outputs = [new if o == old else o for o in self.outputs]

    def remove_node(self, name: str) -> None:
        if self.users(name):
            raise ValueError(f"cannot remove {name!r}: it still has users")
        if name in self.outputs:
            raise ValueError(f"cannot remove graph output {name!r}")
        del self._nodes[name]
        self._order.remove(name)

    def prune_dead(self) -> int:
        """Remove nodes unreachable from the outputs; returns the count."""
        live = set(self.outputs)
        for name in reversed(self._order):
            if name in live:
                live.update(self._nodes[name].inputs)
        dead = [n for n in self._order if n not in live]
        for name in dead:
            del self._nodes[name]
            self._order.remove(name)
        return len(dead)

    def copy(self, name: Optional[str] = None) -> "Graph":
        """Structural copy: independent nodes/order/outputs.

        Node ``attrs`` dicts and ``inputs`` lists are copied so passes
        mutating the clone (fusion, placement) leave the original
        untouched; bound constant arrays inside ``attrs`` and the frozen
        :class:`TensorMeta` objects are shared, not duplicated.
        """
        clone = Graph(name or self.name)
        for node in self:
            clone._nodes[node.name] = Node(
                name=node.name, op=node.op, inputs=list(node.inputs),
                attrs=dict(node.attrs), meta=node.meta)
            clone._order.append(node.name)
        clone.outputs = list(self.outputs)
        return clone

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation.

        * every node's inputs are defined *earlier* in execution order;
        * every node (except sources) has inferred output metadata that
          matches a fresh shape-inference pass;
        * every graph output exists.
        """
        from repro.compiler.ops import infer_meta
        seen = set()
        for node in self:
            for inp in node.inputs:
                if inp not in seen:
                    raise ValueError(
                        f"node {node.name!r} uses {inp!r} before it is "
                        "defined in execution order")
            if node.meta is None:
                raise ValueError(f"node {node.name!r} has no metadata")
            fresh = infer_meta(self, node)
            if fresh.shape != node.meta.shape:
                raise ValueError(
                    f"node {node.name!r} metadata is stale: stored "
                    f"{node.meta.shape}, inferred {fresh.shape}")
            seen.add(node.name)
        for out in self.outputs:
            if out not in self._nodes:
                raise ValueError(f"graph output {out!r} does not exist")

    def __repr__(self) -> str:
        lines = [f"Graph {self.name!r}:"]
        lines.extend(f"  {node!r}" for node in self)
        lines.append(f"  outputs: {self.outputs}")
        return "\n".join(lines)


class GraphBuilder:
    """Convenience builder with automatic naming and shape inference."""

    def __init__(self, name: str = "graph") -> None:
        self.graph = Graph(name)
        self._counter = 0

    def _fresh(self, op: str) -> str:
        self._counter += 1
        return f"{op}_{self._counter}"

    def add(self, op: str, inputs: Sequence[str] = (),
            name: Optional[str] = None, **attrs) -> Node:
        """Append an operator node, inferring its output metadata."""
        from repro.compiler.ops import infer_meta  # late: avoids a cycle
        node = Node(name=name or self._fresh(op), op=op,
                    inputs=list(inputs), attrs=dict(attrs))
        node.meta = infer_meta(self.graph, node)
        return self.graph.add_node(node)

    def input(self, shape, dtype="fp32", name: Optional[str] = None,
              **attrs) -> Node:
        return self.add("input", (), name=name, shape=tuple(shape),
                        dtype=dtype, **attrs)

    def weight(self, shape, dtype="fp32", name: Optional[str] = None,
               **attrs) -> Node:
        return self.add("weight", (), name=name, shape=tuple(shape),
                        dtype=dtype, **attrs)

    def output(self, *names: str) -> Graph:
        for name in names:
            self.graph.mark_output(name)
        return self.graph
