"""The MTIA compiler stack (Section 5).

Mirrors the paper's three-layer stack:

* :mod:`repro.compiler.ir` / :mod:`repro.compiler.ops` — an FX-like
  graph IR with shape inference and per-operator cost metadata;
* graph-level passes: :mod:`repro.compiler.fusion` (operator fusion,
  EB->TBE merging, DCE), :mod:`repro.compiler.placement` (best-effort
  producer-consumer tensor placement into on-chip SRAM) and
  :mod:`repro.compiler.partitioner` (multi-card and sub-grid splits);
* :mod:`repro.compiler.knyfe` — a small declarative kernel DSL that
  generates PE core programs, standing in for the paper's KNYFE
  DSL-to-C++ compiler.

The LLVM layer of the real stack (register allocation, codegen) has no
analogue here: our "machine code" is the command stream itself.
"""

from repro.compiler.ir import Graph, GraphBuilder, Node
from repro.compiler.ops import OP_REGISTRY, OpCosts, infer_meta, op_costs
from repro.compiler.fusion import fuse_graph
from repro.compiler.placement import PlacementResult, place_tensors
from repro.compiler.partitioner import (Partition, choose_subgrid,
                                        partition_by_memory)

__all__ = [
    "Graph",
    "GraphBuilder",
    "Node",
    "OP_REGISTRY",
    "OpCosts",
    "Partition",
    "PlacementResult",
    "choose_subgrid",
    "fuse_graph",
    "infer_meta",
    "op_costs",
    "partition_by_memory",
    "place_tensors",
]
