"""Operator registry: shape inference, numpy semantics, and costs.

Every operator the DLRM workloads use is registered here with three
facets:

* ``infer``   — output :class:`TensorMeta` from the input metas/attrs;
* ``execute`` — functional numpy semantics (used by the eager/graph
  executor and by tests as the reference);
* ``costs``   — FLOPs and bytes moved, consumed by the analytical
  performance model and the placement pass.

The operator *category* groups ops the way Table III does (FC, EB,
Concat, Transpose, Quantize, Dequantize, BatchMatMul, Others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.dtypes import dtype as resolve_dtype
from repro.runtime.tensor import TensorMeta


@dataclass(frozen=True)
class OpCosts:
    """Work and traffic of one operator instance."""

    flops: float            #: multiply-adds counted as 2 ops
    bytes_in: float         #: activation + weight bytes read
    bytes_out: float        #: activation bytes written
    category: str           #: Table III bucket

    @property
    def bytes_total(self) -> float:
        return self.bytes_in + self.bytes_out

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes_total if self.bytes_total else 0.0


@dataclass(frozen=True)
class OpDef:
    infer: Callable
    execute: Callable
    costs: Callable
    category: str


OP_REGISTRY: Dict[str, OpDef] = {}


def register(name: str, category: str):
    """Class decorator-free registration helper."""
    def wrap(infer, execute, costs):
        OP_REGISTRY[name] = OpDef(infer, execute, costs, category)
    return wrap


def infer_meta(graph, node) -> TensorMeta:
    """Shape-infer ``node`` against its input nodes in ``graph``."""
    opdef = OP_REGISTRY.get(node.op)
    if opdef is None:
        raise ValueError(f"unknown operator {node.op!r}")
    input_metas = [graph.node(i).meta for i in node.inputs]
    return opdef.infer(input_metas, node.attrs)


def execute_node(node, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Run ``node`` functionally on numpy inputs."""
    return OP_REGISTRY[node.op].execute(list(inputs), node.attrs, node.meta)


def op_costs(node, input_metas: Sequence[TensorMeta]) -> OpCosts:
    """Cost metadata for one node instance."""
    return OP_REGISTRY[node.op].costs(list(input_metas), node.attrs,
                                      node.meta)


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------

def _source_infer(inputs, attrs):
    return TensorMeta(tuple(attrs["shape"]), attrs.get("dtype", "fp32"),
                      attrs.get("scale", 1.0), attrs.get("zero_point", 0))


def _source_execute(inputs, attrs, meta):
    data = attrs.get("data")
    if data is None:
        raise ValueError("source node executed without bound data")
    return np.asarray(data)


def _source_costs(inputs, attrs, meta):
    return OpCosts(0.0, 0.0, meta.nbytes, "other")


register("input", "other")(_source_infer, _source_execute, _source_costs)
register("weight", "other")(_source_infer, _source_execute, _source_costs)


# ---------------------------------------------------------------------------
# FC (fully connected): x (batch, k) @ w^T with w stored (n, k)
# ---------------------------------------------------------------------------

def _fc_infer(inputs, attrs):
    x, w = inputs[0], inputs[1]
    if x.shape[-1] != w.shape[1]:
        raise ValueError(f"FC k mismatch: {x.shape} @ {w.shape}^T")
    out_dtype = attrs.get("out_dtype", x.dtype)
    return TensorMeta(x.shape[:-1] + (w.shape[0],), out_dtype)


def _fc_execute(inputs, attrs, meta):
    x, w = inputs[0], inputs[1]
    acc = x.astype(np.float32) @ w.astype(np.float32).T
    if len(inputs) > 2:
        acc = acc + inputs[2].astype(np.float32)
    return acc.astype(meta.dtype.numpy_dtype)


def _fc_costs(inputs, attrs, meta):
    x, w = inputs[0], inputs[1]
    batch = int(np.prod(x.shape[:-1]))
    k, n = x.shape[-1], w.shape[0]
    flops = 2.0 * batch * k * n
    return OpCosts(flops, x.nbytes + w.nbytes, meta.nbytes, "fc")


register("fc", "fc")(_fc_infer, _fc_execute, _fc_costs)


# ---------------------------------------------------------------------------
# EmbeddingBag and TBE
# ---------------------------------------------------------------------------

def _eb_infer(inputs, attrs):
    table = inputs[0]
    return TensorMeta((attrs["batch"], table.shape[1]), "fp32")


def _eb_execute(inputs, attrs, meta):
    table, indices = inputs[0], inputs[1]
    scale = attrs.get("scale", 1.0)
    rows = table[indices].astype(np.float32)
    if len(inputs) > 2:
        # Optional per-sample weights: shape (batch, pooling).
        rows = rows * inputs[2].astype(np.float32)[..., None]
    pooled = rows.sum(axis=1) * scale
    return pooled.astype(np.float32)


def _eb_costs(inputs, attrs, meta):
    table = inputs[0]
    batch = attrs["batch"]
    pooling = attrs["pooling"]
    dim = table.shape[1]
    row_bytes = dim * table.dtype.bytes
    lookups = batch * pooling * row_bytes
    index_bytes = batch * pooling * 4
    # Pooling is adds only: dim adds per row.
    return OpCosts(float(batch * pooling * dim), lookups + index_bytes,
                   meta.nbytes, "eb")


register("embedding_bag", "eb")(_eb_infer, _eb_execute, _eb_costs)


def _tbe_infer(inputs, attrs):
    # inputs: [table0, indices0, table1, indices1, ...]
    tables = inputs[0::2]
    batch = attrs["batch"]
    total_dim = sum(t.shape[1] for t in tables)
    return TensorMeta((batch, total_dim), "fp32")


def _tbe_execute(inputs, attrs, meta):
    tables = inputs[0::2]
    index_sets = inputs[1::2]
    scale = attrs.get("scale", 1.0)
    pooled = [t[idx].astype(np.float32).sum(axis=1) * scale
              for t, idx in zip(tables, index_sets)]
    return np.concatenate(pooled, axis=1).astype(np.float32)


def _tbe_costs(inputs, attrs, meta):
    tables = inputs[0::2]
    batch = attrs["batch"]
    pooling = attrs["pooling"]
    flops = bytes_in = 0.0
    for t in tables:
        dim = t.shape[1]
        flops += batch * pooling * dim
        bytes_in += batch * pooling * (dim * t.dtype.bytes + 4)
    return OpCosts(flops, bytes_in, meta.nbytes, "eb")


register("tbe", "eb")(_tbe_infer, _tbe_execute, _tbe_costs)


# ---------------------------------------------------------------------------
# Data movement
# ---------------------------------------------------------------------------

def _concat_infer(inputs, attrs):
    axis = attrs.get("axis", 1)
    base = list(inputs[0].shape)
    for m in inputs[1:]:
        for d, (a, b) in enumerate(zip(base, m.shape)):
            if d != axis and a != b:
                raise ValueError("concat shapes disagree off-axis")
        base[axis] += m.shape[axis]
    return TensorMeta(tuple(base), inputs[0].dtype)


def _concat_execute(inputs, attrs, meta):
    return np.concatenate(inputs, axis=attrs.get("axis", 1)).astype(
        meta.dtype.numpy_dtype)


def _concat_costs(inputs, attrs, meta):
    total_in = sum(m.nbytes for m in inputs)
    return OpCosts(0.0, total_in, meta.nbytes, "concat")


register("concat", "concat")(_concat_infer, _concat_execute, _concat_costs)


def _transpose_infer(inputs, attrs):
    x = inputs[0]
    if len(x.shape) != 2:
        raise ValueError("transpose expects a 2D tensor")
    return TensorMeta((x.shape[1], x.shape[0]), x.dtype)


def _transpose_execute(inputs, attrs, meta):
    return np.ascontiguousarray(inputs[0].T)


def _transpose_costs(inputs, attrs, meta):
    return OpCosts(0.0, inputs[0].nbytes, meta.nbytes, "transpose")


register("transpose", "transpose")(_transpose_infer, _transpose_execute,
                                   _transpose_costs)


def _relayout_infer(inputs, attrs):
    x = inputs[0]
    return TensorMeta(x.shape, x.dtype, x.scale, x.zero_point)


def _relayout_execute(inputs, attrs, meta):
    # A physical-layout change (row-major <-> k-major tiling for the
    # DPE's operand format) with identical logical contents — the MLU
    # work Section 3.1.1 describes and Table III's Transpose bucket
    # largely consists of.
    return np.ascontiguousarray(inputs[0])


def _relayout_costs(inputs, attrs, meta):
    return OpCosts(0.0, inputs[0].nbytes, meta.nbytes, "transpose")


register("relayout", "transpose")(_relayout_infer, _relayout_execute,
                                  _relayout_costs)


# ---------------------------------------------------------------------------
# BatchMatMul: (B, m, k) @ (B, k, n) -> (B, m, n)
# ---------------------------------------------------------------------------

def _bmm_infer(inputs, attrs):
    x, y = inputs
    if x.shape[0] != y.shape[0] or x.shape[2] != y.shape[1]:
        raise ValueError(f"bmm shape mismatch: {x.shape} @ {y.shape}")
    return TensorMeta((x.shape[0], x.shape[1], y.shape[2]), x.dtype)


def _bmm_execute(inputs, attrs, meta):
    x, y = inputs
    out = np.matmul(x.astype(np.float32), y.astype(np.float32))
    return out.astype(meta.dtype.numpy_dtype)


def _bmm_costs(inputs, attrs, meta):
    x, y = inputs
    b, m, k = x.shape
    n = y.shape[2]
    return OpCosts(2.0 * b * m * k * n, x.nbytes + y.nbytes, meta.nbytes,
                   "bmm")


register("batch_matmul", "bmm")(_bmm_infer, _bmm_execute, _bmm_costs)


# ---------------------------------------------------------------------------
# Quantisation
# ---------------------------------------------------------------------------

def _quantize_infer(inputs, attrs):
    x = inputs[0]
    return TensorMeta(x.shape, "int8", attrs.get("scale", 1.0),
                      attrs.get("zero_point", 0))


def _quantize_execute(inputs, attrs, meta):
    scale = attrs.get("scale", 1.0)
    zp = attrs.get("zero_point", 0)
    q = np.round(inputs[0].astype(np.float32) / scale) + zp
    return np.clip(q, -128, 127).astype(np.int8)


def _quantize_costs(inputs, attrs, meta):
    n = inputs[0].numel
    return OpCosts(float(n), inputs[0].nbytes, meta.nbytes, "quantize")


register("quantize", "quantize")(_quantize_infer, _quantize_execute,
                                 _quantize_costs)


def _dequantize_infer(inputs, attrs):
    return TensorMeta(inputs[0].shape, "fp32")


def _dequantize_execute(inputs, attrs, meta):
    x = inputs[0]
    scale = attrs.get("scale", 1.0)
    zp = attrs.get("zero_point", 0)
    return ((x.astype(np.float32) - zp) * scale).astype(np.float32)


def _dequantize_costs(inputs, attrs, meta):
    n = inputs[0].numel
    return OpCosts(float(n), inputs[0].nbytes, meta.nbytes, "dequantize")


register("dequantize", "dequantize")(_dequantize_infer, _dequantize_execute,
                                     _dequantize_costs)


# ---------------------------------------------------------------------------
# Elementwise / normalisation
# ---------------------------------------------------------------------------

def _unary_infer(inputs, attrs):
    return TensorMeta(inputs[0].shape, "fp32")


def _make_unary(fn):
    def execute(inputs, attrs, meta):
        return fn(inputs[0].astype(np.float32)).astype(np.float32)
    return execute


def _unary_costs(inputs, attrs, meta):
    n = inputs[0].numel
    return OpCosts(4.0 * n, inputs[0].nbytes, meta.nbytes, "other")


def _gelu(x):
    return 0.5 * x * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


for _name, _fn in (("relu", lambda x: np.maximum(x, 0.0)),
                   ("tanh", np.tanh),
                   ("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x))),
                   ("gelu", _gelu)):
    register(_name, "other")(_unary_infer, _make_unary(_fn), _unary_costs)


def _softmax_execute(inputs, attrs, meta):
    x = inputs[0].astype(np.float64)
    axis = attrs.get("axis", -1)
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def _softmax_costs(inputs, attrs, meta):
    n = inputs[0].numel
    # exp + sum + divide: ~3 passes of SE work.
    return OpCosts(12.0 * n, inputs[0].nbytes, meta.nbytes, "other")


register("softmax", "other")(_unary_infer, _softmax_execute, _softmax_costs)


def _binary_infer(inputs, attrs):
    x, y = inputs
    if x.shape != y.shape:
        raise ValueError(f"elementwise shape mismatch {x.shape} vs {y.shape}")
    return TensorMeta(x.shape, x.dtype)


def _make_binary(fn):
    def execute(inputs, attrs, meta):
        out = fn(inputs[0].astype(np.float32), inputs[1].astype(np.float32))
        return out.astype(meta.dtype.numpy_dtype)
    return execute


def _binary_costs(inputs, attrs, meta):
    n = inputs[0].numel
    return OpCosts(float(n), inputs[0].nbytes + inputs[1].nbytes,
                   meta.nbytes, "other")


for _name, _fn in (("add", np.add), ("mul", np.multiply)):
    register(_name, "other")(_binary_infer, _make_binary(_fn), _binary_costs)


def _layernorm_infer(inputs, attrs):
    return TensorMeta(inputs[0].shape, "fp32")


def _layernorm_execute(inputs, attrs, meta):
    x = inputs[0].astype(np.float64)
    eps = attrs.get("eps", 1e-5)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return ((x - mean) / np.sqrt(var + eps)).astype(np.float32)


def _layernorm_costs(inputs, attrs, meta):
    n = inputs[0].numel
    return OpCosts(8.0 * n, inputs[0].nbytes, meta.nbytes, "other")


register("layernorm", "other")(_layernorm_infer, _layernorm_execute,
                               _layernorm_costs)


def _reshape_infer(inputs, attrs):
    x = inputs[0]
    shape = tuple(attrs["shape"])
    if int(np.prod(shape)) != x.numel:
        raise ValueError(f"reshape {x.shape} -> {shape} changes element count")
    return TensorMeta(shape, x.dtype, x.scale, x.zero_point)


def _reshape_execute(inputs, attrs, meta):
    return inputs[0].reshape(meta.shape)


def _reshape_costs(inputs, attrs, meta):
    return OpCosts(0.0, 0.0, 0.0, "other")


register("reshape", "other")(_reshape_infer, _reshape_execute, _reshape_costs)


def _slice_infer(inputs, attrs):
    x = inputs[0]
    axis = attrs.get("axis", 1)
    start, stop = attrs["start"], attrs["stop"]
    if not (0 <= start < stop <= x.shape[axis]):
        raise ValueError(f"slice [{start}:{stop}] outside axis {axis} "
                         f"of {x.shape}")
    shape = list(x.shape)
    shape[axis] = stop - start
    return TensorMeta(tuple(shape), x.dtype, x.scale, x.zero_point)


def _slice_execute(inputs, attrs, meta):
    axis = attrs.get("axis", 1)
    index = [slice(None)] * inputs[0].ndim
    index[axis] = slice(attrs["start"], attrs["stop"])
    return np.ascontiguousarray(inputs[0][tuple(index)])


def _slice_costs(inputs, attrs, meta):
    return OpCosts(0.0, meta.nbytes, meta.nbytes, "other")


register("slice", "other")(_slice_infer, _slice_execute, _slice_costs)
