"""KNYFE: the kernel DSL (Section 5).

The paper's KNYFE compiler "takes a short high-level description of an
ML kernel and produces low-level optimized C++ code" against the
hardware APIs.  Our analogue takes a declarative pipeline description
and *generates the PE core programs* directly: circular-buffer
assignment, DMA staging, SE command selection, and tile distribution
over a sub-grid all happen in the compiler, exactly the chores the
paper says KNYFE automates (Section 7, "Automated Code Generation").

Example — a fused dequantise+tanh kernel::

    spec = (KernelSpec("dq_tanh")
            .tile(2048)
            .load("x", dtype="int8")
            .dequantize(scale=0.05)
            .apply("tanh")
            .store("y"))
    kernel = compile_kernel(spec)
    out = kernel.run(acc, {"x": q_values})["y"]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.dtypes import DType, FP32, INT8, dtype as resolve_dtype
from repro.isa.commands import (DMALoad, DMAStore, ElementwiseCmd, InitCB,
                                NonlinearCmd, QuantizeCmd)
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.sim import SimulationError


@dataclass
class Stage:
    kind: str                 # load / quantize / dequantize / apply /
                              # binary / store
    name: str = ""            # tensor name for load/binary/store
    func: str = ""            # nonlinear function for apply
    op: str = ""              # binary op
    scale: float = 1.0
    dtype: Optional[DType] = None


class KernelSpec:
    """A declarative elementwise-pipeline kernel description."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tile_elems = 4096
        self.stages: List[Stage] = []

    def tile(self, elements: int) -> "KernelSpec":
        if elements <= 0:
            raise ValueError("tile size must be positive")
        self.tile_elems = elements
        return self

    def load(self, name: str, dtype="fp32") -> "KernelSpec":
        if self.stages:
            raise SimulationError("load must be the first stage")
        self.stages.append(Stage("load", name=name,
                                 dtype=resolve_dtype(dtype)))
        return self

    def quantize(self, scale: float) -> "KernelSpec":
        self.stages.append(Stage("quantize", scale=scale))
        return self

    def dequantize(self, scale: float) -> "KernelSpec":
        self.stages.append(Stage("dequantize", scale=scale))
        return self

    def apply(self, func: str) -> "KernelSpec":
        self.stages.append(Stage("apply", func=func))
        return self

    def binary(self, op: str, operand: str, dtype="fp32") -> "KernelSpec":
        self.stages.append(Stage("binary", op=op, name=operand,
                                 dtype=resolve_dtype(dtype)))
        return self

    def store(self, name: str) -> "KernelSpec":
        self.stages.append(Stage("store", name=name))
        return self


@dataclass
class _Plan:
    """Per-stage CB/dtype bookkeeping produced by compilation."""

    stage: Stage
    src_cb: int = -1
    dst_cb: int = -1
    operand_cb: int = -1
    in_dtype: Optional[DType] = None
    out_dtype: Optional[DType] = None


class CompiledKernel:
    """A KNYFE-compiled kernel ready to launch."""

    def __init__(self, spec: KernelSpec, plans: List[_Plan],
                 cb_sizes: Dict[int, int]) -> None:
        self.spec = spec
        self.plans = plans
        self.cb_sizes = cb_sizes
        self.cycles: float = 0.0

    @property
    def output_dtype(self) -> DType:
        return self.plans[-1].in_dtype

    def run(self, acc: Accelerator, inputs: Dict[str, np.ndarray],
            subgrid: Optional[SubGrid] = None,
            in_sram: bool = False) -> Dict[str, np.ndarray]:
        """Execute on the accelerator; returns {output_name: array}."""
        loads = [p for p in self.plans if p.stage.kind in ("load", "binary")]
        store = self.plans[-1]
        count = None
        addrs: Dict[str, int] = {}
        alloc = acc.alloc_sram if in_sram else acc.alloc_dram
        for plan in loads:
            arr = np.ascontiguousarray(inputs[plan.stage.name])
            if arr.dtype != plan.stage.dtype.numpy_dtype:
                raise SimulationError(
                    f"input {plan.stage.name!r} dtype {arr.dtype} does not "
                    f"match declared {plan.stage.dtype.name}")
            if count is None:
                count = arr.size
            elif arr.size != count:
                raise SimulationError("kernel inputs must be equal length")
            addr = alloc(arr.nbytes)
            acc.memory.poke(addr, arr)
            addrs[plan.stage.name] = addr
        out_elem = self.output_dtype.bytes
        out_addr = alloc(count * out_elem)
        addrs[store.stage.name] = out_addr

        if subgrid is None:
            subgrid = acc.subgrid()
        tile = self.spec.tile_elems
        num_tiles = (count + tile - 1) // tile
        pes = list(subgrid)
        assignments: List[List[int]] = [[] for _ in pes]
        for t in range(num_tiles):
            assignments[t % len(pes)].append(t)
        active = [(pe, ts) for pe, ts in zip(pes, assignments) if ts]
        barrier = acc.barrier(len(active), f"{self.spec.name}.start")
        start = acc.engine.now
        for pe, ts in active:
            acc.launch(self._program, pe.cores[0], ts, count, addrs, barrier,
                       name=f"{self.spec.name}{pe.coord}")
        acc.run()
        self.cycles = acc.engine.now - start
        output = acc.download(out_addr, (count,),
                              self.output_dtype.numpy_dtype)
        return {store.stage.name: output}

    def _program(self, ctx, tile_ids: Sequence[int], count: int,
                 addrs: Dict[str, int], barrier: Barrier) -> Generator:
        tile = self.spec.tile_elems
        base = 0
        for cb_id in sorted(self.cb_sizes):
            size = self.cb_sizes[cb_id]
            yield from ctx.issue(InitCB(cb_id=cb_id, base=base, size=size))
            base += size
        yield from ctx.drain()
        yield from barrier.wait()
        for t in tile_ids:
            elems = min(tile, count - t * tile)
            for plan in self.plans:
                yield from self._stage_commands(ctx, plan, t, elems, addrs)
        yield from ctx.drain()

    def _stage_commands(self, ctx, plan: _Plan, t: int, elems: int,
                        addrs: Dict[str, int]) -> Generator:
        stage = plan.stage
        tile = self.spec.tile_elems
        if stage.kind == "load":
            eb = stage.dtype.bytes
            yield from ctx.issue(DMALoad(
                addr=addrs[stage.name] + t * tile * eb,
                row_bytes=elems * eb, cb_id=plan.dst_cb))
        elif stage.kind == "binary":
            eb = stage.dtype.bytes
            yield from ctx.issue(DMALoad(
                addr=addrs[stage.name] + t * tile * eb,
                row_bytes=elems * eb, cb_id=plan.operand_cb))
            yield from ctx.issue(ElementwiseCmd(
                op=stage.op, src_cb_a=plan.src_cb, src_cb_b=plan.operand_cb,
                dst_cb=plan.dst_cb, count=elems, dtype=plan.out_dtype))
        elif stage.kind in ("quantize", "dequantize"):
            yield from ctx.issue(QuantizeCmd(
                src_cb=plan.src_cb, dst_cb=plan.dst_cb, count=elems,
                scale=stage.scale, direction=stage.kind,
                src_dtype=plan.in_dtype, dst_dtype=plan.out_dtype))
        elif stage.kind == "apply":
            yield from ctx.issue(NonlinearCmd(
                func=stage.func, src_cb=plan.src_cb, dst_cb=plan.dst_cb,
                count=elems, src_dtype=plan.in_dtype))
        elif stage.kind == "store":
            eb = plan.in_dtype.bytes
            yield from ctx.issue(DMAStore(
                addr=addrs[stage.name] + t * tile * eb,
                row_bytes=elems * eb, cb_id=plan.src_cb))
        else:  # pragma: no cover - spec construction prevents this
            raise SimulationError(f"unknown stage kind {stage.kind!r}")

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Numpy semantics of the pipeline (for verification)."""
        value = None
        for plan in self.plans:
            stage = plan.stage
            if stage.kind == "load":
                value = np.asarray(inputs[stage.name])
            elif stage.kind == "quantize":
                q = np.round(value.astype(np.float32) / stage.scale)
                value = np.clip(q, -128, 127).astype(np.int8)
            elif stage.kind == "dequantize":
                value = value.astype(np.float32) * stage.scale
            elif stage.kind == "apply":
                fns = {"tanh": np.tanh, "relu": lambda x: np.maximum(x, 0),
                       "sigmoid": lambda x: 1 / (1 + np.exp(-x)),
                       "exp": np.exp}
                value = fns[stage.func](value.astype(np.float32)).astype(
                    np.float32)
            elif stage.kind == "binary":
                other = np.asarray(inputs[stage.name])
                ops = {"add": np.add, "mul": np.multiply,
                       "sub": np.subtract, "max": np.maximum}
                value = ops[stage.op](
                    value.astype(plan.out_dtype.numpy_dtype),
                    other.astype(plan.out_dtype.numpy_dtype))
            elif stage.kind == "store":
                value = value.astype(plan.in_dtype.numpy_dtype)
        return value


def compile_kernel(spec: KernelSpec) -> CompiledKernel:
    """Type-check the pipeline, assign CBs, and size them."""
    if not spec.stages or spec.stages[0].kind != "load":
        raise SimulationError("kernel must start with a load stage")
    if spec.stages[-1].kind != "store":
        raise SimulationError("kernel must end with a store stage")
    plans: List[_Plan] = []
    cb_sizes: Dict[int, int] = {}
    next_cb = 0
    current_dtype: Optional[DType] = None
    current_cb = -1

    def new_cb(dtype: DType) -> int:
        nonlocal next_cb
        cb = next_cb
        next_cb += 1
        cb_sizes[cb] = 2 * spec.tile_elems * dtype.bytes
        return cb

    for stage in spec.stages:
        plan = _Plan(stage=stage, src_cb=current_cb, in_dtype=current_dtype)
        if stage.kind == "load":
            plan.out_dtype = stage.dtype
            plan.dst_cb = new_cb(stage.dtype)
        elif stage.kind == "quantize":
            if not current_dtype.is_float:
                raise SimulationError("quantize needs a float input")
            plan.out_dtype = INT8
            plan.dst_cb = new_cb(INT8)
        elif stage.kind == "dequantize":
            if current_dtype.name != "int8":
                raise SimulationError("dequantize needs an int8 input")
            plan.out_dtype = FP32
            plan.dst_cb = new_cb(FP32)
        elif stage.kind == "apply":
            plan.out_dtype = FP32
            plan.dst_cb = new_cb(FP32)
        elif stage.kind == "binary":
            if stage.dtype.name != current_dtype.name:
                raise SimulationError(
                    f"binary operand dtype {stage.dtype.name} does not "
                    f"match pipeline dtype {current_dtype.name}")
            plan.operand_cb = new_cb(stage.dtype)
            plan.out_dtype = current_dtype
            plan.dst_cb = new_cb(current_dtype)
        elif stage.kind == "store":
            plan.out_dtype = current_dtype
        else:
            raise SimulationError(f"unknown stage kind {stage.kind!r}")
        plans.append(plan)
        current_dtype = plan.out_dtype
        current_cb = plan.dst_cb
    return CompiledKernel(spec, plans, cb_sizes)
