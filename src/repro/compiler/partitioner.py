"""Model partitioning: across cards and across sub-grids.

Two mechanisms from the paper:

* Section 5: the runtime "supports running models split into partitions
  spanning multiple cards" — necessary because Table IV's models reach
  725 GB against 32 GB of device memory per card.  We shard by memory:
  embedding tables are assigned card-by-card first-fit by size; the
  dense pipeline runs on every card against its local tables, with the
  pooled sparse outputs gathered to the card owning the dense part.
* Section 7 ("Architecture Hierarchy"): small jobs don't fill the 8x8
  grid, so the firmware carves sub-grids.  :func:`choose_subgrid`
  replicates that decision from an operator's work size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compiler.ir import Graph, Node
from repro.config import ChipConfig, MTIA_V1


@dataclass
class Partition:
    """One card's share of a model."""

    card: int
    weight_nodes: List[str] = field(default_factory=list)
    weight_bytes: int = 0
    #: whether the dense (MLP/interaction) pipeline runs here
    owns_dense: bool = False


def partition_by_memory(graph: Graph, card_capacity_bytes: int,
                        max_cards: int = 64) -> List[Partition]:
    """Shard a model's weights across cards by capacity, first-fit.

    Embedding tables (the memory hogs) are placed largest-first; dense
    weights ride with card 0, which also owns the dense pipeline.
    Raises if the model cannot fit in ``max_cards`` cards.
    """
    weights = [(n.name, n.meta.nbytes) for n in graph.nodes_by_op("weight")]
    dense = [(name, size) for name, size in weights
             if not name.startswith("table")]
    tables = sorted((ws for ws in weights if ws[0].startswith("table")),
                    key=lambda ws: -ws[1])
    partitions = [Partition(card=0, owns_dense=True)]
    for name, size in dense:
        partitions[0].weight_nodes.append(name)
        partitions[0].weight_bytes += size
    for name, size in tables:
        target = None
        for part in partitions:
            if part.weight_bytes + size <= card_capacity_bytes:
                target = part
                break
        if target is None:
            if len(partitions) >= max_cards:
                raise MemoryError(
                    f"model needs more than {max_cards} cards of "
                    f"{card_capacity_bytes} B")
            target = Partition(card=len(partitions))
            partitions.append(target)
        if size > card_capacity_bytes:
            raise MemoryError(
                f"table {name!r} ({size} B) exceeds a whole card; "
                "row-sharding is not implemented")
        target.weight_nodes.append(name)
        target.weight_bytes += size
    return partitions


def cross_card_traffic(graph: Graph, partitions: List[Partition]) -> int:
    """Bytes of pooled embedding output gathered to the dense card."""
    owner: Dict[str, int] = {}
    for part in partitions:
        for name in part.weight_nodes:
            owner[name] = part.card
    traffic = 0
    for node in graph:
        if node.op not in ("embedding_bag", "tbe"):
            continue
        table_inputs = node.inputs[0::2]
        cards = {owner.get(t, 0) for t in table_inputs}
        if cards - {0}:
            traffic += node.meta.nbytes
    return traffic


def choose_subgrid(node: Node, config: ChipConfig = MTIA_V1) -> Tuple[int, int]:
    """Pick a sub-grid size for one operator (Section 7 discussion).

    Sizing keeps every PE busy with at least one 64x64 output tile for
    GEMM-like work, or one work item for data-parallel operators —
    smaller jobs get smaller sub-grids so the rest of the grid can run
    other sub-graphs concurrently.
    """
    max_rows, max_cols = config.grid_rows, config.grid_cols
    if node.op == "fc":
        batch = int(node.meta.shape[0])
        n = int(node.meta.shape[-1])
        rows = _fit_pow2(math.ceil(batch / 64), max_rows)
        cols = _fit_pow2(math.ceil(n / 64), max_cols)
        return rows, cols
    if node.op in ("embedding_bag", "tbe", "batch_matmul"):
        items = int(node.meta.shape[0])
        if node.op == "tbe":
            items *= max(1, len(node.inputs) // 2)
        total = _fit_pow2(items, max_rows * max_cols)
        rows = _fit_pow2(int(math.sqrt(total)), max_rows)
        return rows, min(max_cols, max(1, total // rows))
    # Data movement / elementwise: size by tiles of 4 KB.
    tiles = max(1, node.meta.nbytes // 4096)
    total = _fit_pow2(tiles, max_rows * max_cols)
    rows = _fit_pow2(int(math.sqrt(total)), max_rows)
    return rows, min(max_cols, max(1, total // rows))


def _fit_pow2(value: int, cap: int) -> int:
    """Largest power of two <= max(value, 1), capped at ``cap``."""
    power = 1
    while power * 2 <= min(value, cap):
        power *= 2
    return power
