"""Graph-level fusion passes (Section 5 / Section 6.1).

Three optimisations the paper's stack performs:

* **EB -> TBE merging** — "they can be merged together into one or more
  TableBatchedEmbedding (TBE) operators to amortize kernel launch
  overhead and increase the work that can be parallelized across the
  device" (Section 6.1).  We merge every EmbeddingBag with the same
  batch size and pooling factor into TBE groups of up to
  ``max_tables_per_tbe`` tables.
* **Elementwise epilogue fusion** — a unary elementwise op (relu/tanh/
  sigmoid) directly following an FC or BMM folds into it as an epilogue
  the SE applies on the way out of the RE.
* **Dead-code elimination** after the rewrites.

``fuse_graph`` returns (graph, FusionReport); the graph is mutated in
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compiler.ir import Graph, Node
from repro.compiler.ops import infer_meta

#: unary ops an FC/BMM can absorb as an epilogue
EPILOGUE_OPS = ("relu", "tanh", "sigmoid")


@dataclass
class FusionReport:
    eb_merged: int = 0
    tbe_created: int = 0
    epilogues_fused: int = 0
    cse_merged: int = 0
    dead_removed: int = 0


def fuse_graph(graph: Graph, max_tables_per_tbe: int = 64,
               merge_eb: bool = True,
               fuse_epilogues: bool = True,
               eliminate_common: bool = True) -> Tuple[Graph, FusionReport]:
    """Run all fusion passes over ``graph``."""
    report = FusionReport()
    if eliminate_common:
        _eliminate_common_subexpressions(graph, report)
    if merge_eb:
        _merge_embedding_bags(graph, max_tables_per_tbe, report)
    if fuse_epilogues:
        _fuse_epilogues(graph, report)
    report.dead_removed = graph.prune_dead()
    return graph, report


def _attr_key(attrs: Dict) -> tuple:
    """Hashable view of a node's attributes (data blobs excluded)."""
    items = []
    for key in sorted(attrs):
        if key == "data":
            return None   # constant-carrying nodes are never deduped
        value = attrs[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        items.append((key, value))
    return tuple(items)


def _eliminate_common_subexpressions(graph: Graph,
                                     report: FusionReport) -> None:
    """Merge structurally identical pure operators.

    Two nodes compute the same value when they run the same op over the
    same inputs with the same attributes; the duplicate is rewired to
    the first occurrence.  Sources (input/weight) are identity-keyed.
    """
    seen: Dict[tuple, str] = {}
    for node in list(graph):
        if node.op in ("input", "weight"):
            continue
        attr_key = _attr_key(node.attrs)
        if attr_key is None:
            continue
        key = (node.op, tuple(node.inputs), attr_key)
        original = seen.get(key)
        if original is None:
            seen[key] = node.name
        else:
            graph.replace_uses(node.name, original)
            report.cse_merged += 1


def _merge_embedding_bags(graph: Graph, max_tables: int,
                          report: FusionReport) -> None:
    """Group compatible EmbeddingBag nodes into TBE nodes.

    Only EB nodes whose single user is the same concat (the standard
    DLRM sparse-feature concat) are merged, so the rewrite preserves
    the concat's operand order trivially by replacing the group's
    members with one TBE whose output is their concatenation.
    """
    groups: Dict[tuple, List[Node]] = {}
    for node in list(graph):
        if node.op != "embedding_bag":
            continue
        users = graph.users(node.name)
        if len(users) != 1 or users[0].op != "concat":
            continue
        key = (node.attrs["batch"], node.attrs["pooling"],
               node.attrs.get("scale", 1.0), users[0].name,
               node.meta.shape[1])
        groups.setdefault(key, []).append(node)

    tbe_index = 0
    for key, members in groups.items():
        if len(members) < 2:
            continue
        concat_name = key[3]
        concat = graph.node(concat_name)
        # Preserve concat operand order: members sorted by their position.
        position = {name: i for i, name in enumerate(concat.inputs)}
        members.sort(key=lambda n: position[n.name])
        # Only *contiguous* operand runs may merge: the TBE output lays
        # its members' columns adjacently, so merging operands that have
        # other concat inputs between them would reorder the concat's
        # columns (e.g. [eb_a, other, eb_b] -> [eb_a|eb_b, other]).
        runs: List[List[Node]] = [[members[0]]]
        for prev, node in zip(members, members[1:]):
            if position[node.name] == position[prev.name] + 1:
                runs[-1].append(node)
            else:
                runs.append([node])
        chunks = [run[start:start + max_tables]
                  for run in runs
                  for start in range(0, len(run), max_tables)]
        for chunk in chunks:
            if len(chunk) < 2:
                continue
            tbe_inputs: List[str] = []
            for eb in chunk:
                tbe_inputs.extend(eb.inputs)   # (table, indices) pairs
            tbe = Node(name=f"tbe_m{tbe_index}", op="tbe",
                       inputs=tbe_inputs,
                       attrs={"batch": chunk[0].attrs["batch"],
                              "pooling": chunk[0].attrs["pooling"],
                              "scale": chunk[0].attrs.get("scale", 1.0)})
            tbe_index += 1
            tbe.meta = infer_meta(graph, tbe)
            graph.insert_before(concat_name, tbe)
            # Splice: first member becomes the TBE, the rest drop out of
            # the concat operand list (the TBE output already contains
            # their dims, in order).
            first = chunk[0].name
            graph.replace_uses(first, tbe.name)
            for eb in chunk[1:]:
                concat.inputs = [i for i in concat.inputs if i != eb.name]
            concat.meta = infer_meta(graph, concat)
            report.eb_merged += len(chunk)
            report.tbe_created += 1


def _fuse_epilogues(graph: Graph, report: FusionReport) -> None:
    """Fold unary elementwise followers into FC/BMM producers."""
    for node in list(graph):
        if node.op not in EPILOGUE_OPS:
            continue
        producer = graph.node(node.inputs[0])
        if producer.op not in ("fc", "batch_matmul"):
            continue
        if len(graph.users(producer.name)) != 1:
            continue
        if "epilogue" in producer.attrs:
            continue
        producer.attrs["epilogue"] = node.op
        graph.replace_uses(node.name, producer.name)
        report.epilogues_fused += 1
