"""Tensor placement: best-effort producer-consumer data in on-chip SRAM.

Section 5: the model compiler "implements a tensor placement scheme
that takes a best-effort approach to keep producer-consumer data in
on-chip memory", and the evaluation repeatedly shows why — operators
run at SRAM bandwidth when their tensors are resident and drop to ~40 %
efficiency from DRAM (Figure 13).

The pass walks the graph in execution order with a free-list-less bump
model of SRAM liveness: an intermediate tensor is placed in SRAM if it
fits alongside the other live SRAM tensors; otherwise it spills to
DRAM.  Weights (including embedding tables) always live in DRAM — they
are far larger than the 128 MB SRAM (Table IV) — unless pinned
explicitly via ``pin_weights``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.ir import Graph


@dataclass
class PlacementResult:
    """Per-tensor region decisions plus accounting."""

    regions: Dict[str, str] = field(default_factory=dict)
    sram_peak_bytes: int = 0
    spilled: List[str] = field(default_factory=list)

    def region(self, name: str) -> str:
        return self.regions.get(name, "dram")

    def sram_hit_fraction(self, graph: Graph) -> float:
        """Fraction of inter-operator traffic that stays in SRAM."""
        sram = total = 0
        for node in graph:
            if node.op in ("input", "weight"):
                continue
            for inp in node.inputs:
                nbytes = graph.node(inp).meta.nbytes
                total += nbytes
                if self.region(inp) == "sram":
                    sram += nbytes
        return sram / total if total else 0.0


def place_tensors(graph: Graph, sram_capacity: int,
                  pin_weights: Set[str] = frozenset()) -> PlacementResult:
    """Decide SRAM/DRAM placement for every tensor in ``graph``.

    ``sram_capacity`` is the budget in bytes (usually
    ``ChipConfig.sram.capacity_bytes``, possibly reduced when part of
    the SRAM runs as a cache).  ``pin_weights`` names weight nodes to
    force-resident in SRAM (small hot tables).
    """
    result = PlacementResult()
    # Last use index of each tensor, for liveness.
    last_use: Dict[str, int] = {}
    order = list(graph)
    for idx, node in enumerate(order):
        for inp in node.inputs:
            last_use[inp] = idx
    for out in graph.outputs:
        last_use[out] = len(order)

    live_sram: Dict[str, int] = {}
    used = 0
    for idx, node in enumerate(order):
        # Expire dead SRAM tensors first.
        for name in [n for n, last in list(last_use.items())
                     if last <= idx and n in live_sram]:
            used -= live_sram.pop(name)
        nbytes = node.meta.nbytes
        if node.op == "weight":
            if node.name in pin_weights and used + nbytes <= sram_capacity:
                result.regions[node.name] = "sram"
                live_sram[node.name] = nbytes
                # Pinned weights stay resident for the whole graph.
                last_use[node.name] = len(order)
                used += nbytes
            else:
                result.regions[node.name] = "dram"
            continue
        if node.op == "input":
            result.regions[node.name] = "dram"
            continue
        # Graph outputs must land in DRAM for the host to read them.
        if node.name in graph.outputs:
            result.regions[node.name] = "dram"
            continue
        # TBE/EmbeddingBag kernels write their pooled output to DRAM:
        # the gather itself streams table rows from DRAM through the
        # cache-mode SRAM, so there is no scratchpad slot to land in.
        if node.op in ("embedding_bag", "tbe"):
            result.regions[node.name] = "dram"
            continue
        if used + nbytes <= sram_capacity:
            result.regions[node.name] = "sram"
            live_sram[node.name] = nbytes
            used += nbytes
            result.sram_peak_bytes = max(result.sram_peak_bytes, used)
        else:
            result.regions[node.name] = "dram"
            result.spilled.append(node.name)
    return result
