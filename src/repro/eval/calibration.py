"""Software-efficiency curves — the calibrated model inputs.

The paper is explicit that measured efficiency is a product of hardware
ceilings *and* software maturity: the MTIA stack was "not currently as
optimized as the GPU's software stack" (Section 6); TBE kernels reached
"just 10-20 % of its memory bandwidth" while hand-written kernels hit
">60 % of roofline" (Section 6.1); the GPU "is able to achieve higher
utilization with the increased amount of work" at large batch sizes.

Every function here encodes one of those statements as a documented
curve.  They are inputs to the analytical model, calibrated so that

* small-operator estimates agree with the cycle-level simulator
  (``tests/eval/test_calibration.py``), and
* relative platform results reproduce the paper's evaluation shapes
  (``benchmarks/``).
"""

from __future__ import annotations

import math

from repro.eval.machines import MachineModel


def gemm_utilization(machine: MachineModel, gflops: float) -> float:
    """Fraction of peak MACs a GEMM of ``gflops`` total work achieves.

    A saturation curve ``util_max * W / (W + half_sat)``: devices with
    more parallelism to fill (the GPU's 108 SMs vs MTIA's 64 small PEs)
    have a larger ``half_sat`` and therefore suffer more at the small
    shapes DLRM serving produces — the central effect behind Figure 10's
    "particularly effective for low batch sizes".
    """
    if gflops <= 0:
        return 0.0
    return (machine.gemm_util_max * gflops
            / (gflops + machine.gemm_half_sat_gflops))


def gemm_memory_gbs(machine: MachineModel, bytes_total: float,
                    in_sram: bool) -> float:
    """Effective bandwidth feeding a GEMM.

    MTIA "is most efficient when tensors can be streamed directly from
    SRAM" (Section 6.1); when the placement pass keeps operands
    on-chip the operand path runs at on-chip bandwidth.
    """
    if in_sram:
        return machine.onchip_gbs
    return machine.dram_gbs * machine.stream_eff


def model_context_utilization(machine: MachineModel) -> float:
    """GEMM utilisation factor for FCs inside a *full model*.

    Standalone GemmBench shapes run with ideal blocking; the same FC
    inside a 750-operator model loses efficiency to graph overheads:
    operand layout produced by upstream operators, sub-grid setup and
    teardown (Section 7, "Architecture Hierarchy"), and missed fusion.
    The GPU stack's "aggressive operator fusion" and mature graph
    optimisations keep more of the benchmark efficiency than MTIA's
    under-development stack does (Section 6.2) — this gap is exactly
    what the paper attributes the HC-model loss to.
    """
    return {"mtia": 0.16, "gpu": 1.0, "nnpi": 0.65}[machine.family]


#: Per-family embedding-gather curve parameters: how quickly the kernel
#: amortises per-bag setup (pooling), how strongly small batches starve
#: the request pipeline, and how many bytes of bus overfetch each row
#: read drags along (GPU cache-sector/line quantisation on short rows).
_TBE_PARAMS = {
    "mtia": {"pooling_half": 4.0, "batch_half": 75.0, "overfetch": 0.0},
    "gpu": {"pooling_half": 40.0, "batch_half": 8.0, "overfetch": 48.0},
    "nnpi": {"pooling_half": 8.0, "batch_half": 40.0, "overfetch": 16.0},
}

#: Reference shape the ``machine.tbe_bw_frac`` anchor is quoted at.
_TBE_REF = (32, 128, 256)   # pooling, dim, batch


def tbe_bw_fraction(machine: MachineModel, pooling: int, dim: int,
                    batch: int = 256, hand_tuned: bool = False) -> float:
    """Fraction of DRAM bandwidth an embedding gather puts to *useful*
    row bytes.

    Anchored at ``machine.tbe_bw_frac`` for the reference shape
    (pooling 32, 128 B rows, saturating batch) and scaled by:

    * **pooling factor** — longer pooled reads amortise per-bag setup;
      Section 7 notes "EmbeddingBag operators with small pooling
      groups" expose latency.  MTIA's per-PE bags amortise quickly
      (small half-constant); the GPU needs longer bags to fill a warp's
      access stream.
    * **batch** — more concurrent bags = deeper request pipelining.
      MTIA's production kernel is the slow-to-saturate one ("there are
      not enough outstanding requests to hide the latency"); the GPU's
      massive thread-level parallelism saturates almost immediately.
    * **row-size overfetch** — the GPU's 128 B-class sector/line
      granularity wastes bus bytes on short rows, so its *useful*
      fraction sits well below its ~60 % bus utilisation; MTIA's 32 B
      LPDDR granularity wastes almost nothing on >=32 B rows.

    ``hand_tuned`` models the paper's RTL-validation kernels ("as high
    as 500 GB/s ... given sufficient locality in the SRAM"): deep
    software pipelining raises the anchor to the mid-60 % range (the
    cycle-level simulator reproduces this regime directly, see
    ``tests/kernels/test_tbe.py``).
    """
    params = _TBE_PARAMS[machine.family]
    base = 0.65 if hand_tuned else machine.tbe_bw_frac

    def shape_terms(p: float, d: float, b: float) -> float:
        pooling_term = p / (p + params["pooling_half"])
        dim_term = (d / (d + 16.0)) ** 0.5
        batch_term = b / (b + params["batch_half"])
        return pooling_term * dim_term * batch_term

    ref = shape_terms(*_TBE_REF)
    useful = dim / (dim + params["overfetch"])
    frac = base * shape_terms(pooling, dim, batch) / ref * useful
    return max(0.02, min(frac, 0.9))


def move_bw_fraction(machine: MachineModel, in_sram: bool) -> float:
    """Efficiency of pure data-movement operators (Figure 13).

    With operands resident on-chip, BatchMatMul and Tanh "reach more
    than 90 % and 80 % of the SRAM bandwidth"; from DRAM "the
    efficiency drops down to around 40 % on average" because the longer
    latency is harder to hide.
    """
    if machine.family == "mtia":
        return 0.93 if in_sram else 0.42
    if machine.family == "gpu":
        return 0.8 if in_sram else 0.65
    return 0.7 if in_sram else 0.65


def elementwise_ops_per_sec(machine: MachineModel, dtype: str) -> float:
    """Elementwise compute ceiling (SE/SIMD path, CUDA cores, etc.)."""
    if machine.family == "mtia":
        table = {"int8": 3.2e12, "fp16": 1.6e12, "fp32": 0.8e12}
        return table.get(dtype, 0.8e12)
    if machine.family == "gpu":
        return 19.5e12
    return 3.0e12


def dispatch_overhead_s(machine: MachineModel, fused_ops: int = 1) -> float:
    """Per-operator dispatch cost after fusion amortisation."""
    return machine.launch_overhead_s / max(1, fused_ops)
