"""Per-operator analytical timing.

``estimate_op`` maps one operator instance (category + costs + attrs +
placement) to seconds on a machine model, as
``launch_overhead + max(compute_time, memory_time)`` with the
shape-dependent efficiencies from :mod:`repro.eval.calibration`.
``estimate_graph`` runs a whole IR graph through the model and returns
the per-category breakdown Table III reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.ir import Graph
from repro.compiler.ops import OpCosts, op_costs
from repro.eval import calibration
from repro.eval.machines import MachineModel


@dataclass
class OpEstimate:
    """Timing of one operator instance."""

    name: str
    category: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    launch_seconds: float
    flops: float
    bytes_total: float

    @property
    def bound(self) -> str:
        """Which term dominates: "compute", "memory" or "launch"."""
        parts = {"compute": self.compute_seconds,
                 "memory": self.memory_seconds,
                 "launch": self.launch_seconds}
        return max(parts, key=parts.get)


def estimate_op(machine: MachineModel, category: str, costs: OpCosts,
                dtype: str = "fp16", in_sram: bool = False,
                attrs: Optional[dict] = None) -> OpEstimate:
    """Estimate one operator's execution time on ``machine``."""
    attrs = attrs or {}
    launch = calibration.dispatch_overhead_s(
        machine, attrs.get("fused_ops", 1))
    compute = memory = 0.0

    if category in ("fc", "bmm"):
        gflops = costs.flops / 1e9
        util = calibration.gemm_utilization(machine, gflops)
        util *= attrs.get("util_factor", 1.0)
        peak = machine.peak_ops(dtype if dtype in machine.peak_tops
                                else "fp16")
        compute = costs.flops / (peak * util) if util > 0 else 0.0
        bw = calibration.gemm_memory_gbs(machine, costs.bytes_total, in_sram)
        memory = costs.bytes_total / (bw * 1e9)
    elif category == "eb":
        pooling = attrs.get("pooling", 32)
        dim = attrs.get("dim", 128)
        frac = calibration.tbe_bw_fraction(
            machine, pooling, dim, batch=attrs.get("batch", 256),
            hand_tuned=attrs.get("hand_tuned", False))
        memory = costs.bytes_in / (machine.dram_gbs * 1e9 * frac)
        compute = costs.flops / calibration.elementwise_ops_per_sec(
            machine, "fp32")
    elif category in ("concat", "transpose"):
        frac = calibration.move_bw_fraction(machine, in_sram)
        bw = (machine.onchip_gbs if in_sram else machine.dram_gbs) * frac
        memory = costs.bytes_total / (bw * 1e9)
    elif category in ("quantize", "dequantize", "other"):
        ops_per_sec = calibration.elementwise_ops_per_sec(machine, dtype)
        compute = costs.flops / ops_per_sec if costs.flops else 0.0
        frac = calibration.move_bw_fraction(machine, in_sram)
        bw = (machine.onchip_gbs if in_sram else machine.dram_gbs) * frac
        memory = costs.bytes_total / (bw * 1e9)
    else:
        raise ValueError(f"unknown operator category {category!r}")

    seconds = launch + max(compute, memory)
    return OpEstimate(name=attrs.get("name", category), category=category,
                      seconds=seconds, compute_seconds=compute,
                      memory_seconds=memory, launch_seconds=launch,
                      flops=costs.flops, bytes_total=costs.bytes_total)


@dataclass
class GraphEstimate:
    """Whole-graph timing with per-category breakdown."""

    total_seconds: float
    estimates: List[OpEstimate] = field(default_factory=list)

    def category_seconds(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for est in self.estimates:
            out[est.category] = out.get(est.category, 0.0) + est.seconds
        return out

    def category_fractions(self) -> Dict[str, float]:
        seconds = self.category_seconds()
        total = sum(seconds.values())
        if total <= 0:
            return {k: 0.0 for k in seconds}
        return {k: v / total for k, v in seconds.items()}

    @property
    def total_flops(self) -> float:
        return sum(e.flops for e in self.estimates)

    def tflops_per_sec(self) -> float:
        return (self.total_flops / self.total_seconds / 1e12
                if self.total_seconds else 0.0)


def estimate_graph(machine: MachineModel, graph: Graph,
                   placement: Optional[object] = None,
                   dtype: str = "fp16") -> GraphEstimate:
    """Estimate every operator of a compiled graph.

    ``placement`` is a :class:`repro.compiler.placement.PlacementResult`;
    when given, an operator counts as SRAM-resident if all its
    activation inputs are placed in SRAM.  GPU/NNPI machines ignore
    placement (their on-chip staging is implicit in the efficiency
    curves) except that their large caches are modelled through
    ``move_bw_fraction``.
    """
    estimates: List[OpEstimate] = []
    for node in graph:
        if node.op in ("input", "weight"):
            continue
        input_metas = [graph.node(i).meta for i in node.inputs]
        costs = op_costs(node, input_metas)
        in_sram = False
        if placement is not None and machine.family == "mtia":
            activations = [i for i in node.inputs
                           if graph.node(i).op not in ("weight",)]
            in_sram = bool(activations) and all(
                placement.region(i) == "sram" for i in activations)
        attrs = {"name": node.name,
                 "util_factor":
                     calibration.model_context_utilization(machine)}
        if node.op in ("embedding_bag", "tbe"):
            attrs["pooling"] = node.attrs.get("pooling", 32)
            attrs["batch"] = node.attrs.get("batch", 256)
            tables = node.inputs[0::2]
            dims = [graph.node(t).meta.shape[1] for t in tables]
            attrs["dim"] = int(sum(dims) / len(dims)) if dims else 128
        if "epilogue" in node.attrs:
            attrs["fused_ops"] = 2
        if node.op in ("fc", "batch_matmul") and input_metas:
            # GEMMs run at the *operand* precision (INT8 after the
            # quantize bracket), not the accumulator's output precision.
            op_dtype = input_metas[0].dtype.name
        else:
            op_dtype = node.meta.dtype.name if node.meta else dtype
        if op_dtype not in ("int8", "fp16", "fp32"):
            op_dtype = dtype
        estimates.append(estimate_op(machine, costs.category, costs,
                                     dtype=op_dtype, in_sram=in_sram,
                                     attrs=attrs))
    total = sum(e.seconds for e in estimates)
    return GraphEstimate(total_seconds=total, estimates=estimates)
