"""Metric helpers: perf/W and aggregation.

Performance-per-watt is the paper's primary metric ("we report perf/W
as a proxy for perf/TCO, given the sensitive nature of TCO",
Section 6), always against *provisioned* power (platform / cards).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from repro.eval.machines import MachineModel


def perf_per_watt(performance: float, machine: MachineModel) -> float:
    """Normalise any performance number by provisioned card power."""
    return performance / machine.provisioned_watts


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_mean(values: Sequence[float],
                  weights: Sequence[float]) -> float:
    if len(values) != len(weights):
        raise ValueError("values and weights must align")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def relative(series: Dict[str, float], baseline: str) -> Dict[str, float]:
    """Normalise a {name: value} series by one entry."""
    if baseline not in series:
        raise KeyError(f"baseline {baseline!r} not in series")
    base = series[baseline]
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {name: value / base for name, value in series.items()}
