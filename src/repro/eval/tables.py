"""Row generators for every table in the paper.

Table I comes from the chip configuration's derived quantities; Table
II from the platform specs; Table III from the operator-level estimate
of the medium-complexity model; Table IV from the model zoo.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import MTIA_V1, ChipConfig
from repro.eval.machines import MACHINES
from repro.eval.opmodel import estimate_graph
from repro.platforms.server import PLATFORMS

#: Paper values for Table III (percent of execution time), used by the
#: benchmark to compare shape.
TABLE_III_PAPER = {
    64: {"fc": 42.10, "eb": 31.19, "concat": 2.86, "transpose": 8.47,
         "quantize": 1.55, "dequantize": 2.94, "bmm": 3.30, "other": 7.59},
    256: {"fc": 32.4, "eb": 30.0, "concat": 11.5, "transpose": 5.9,
          "quantize": 5.3, "dequantize": 3.3, "bmm": 1.7, "other": 11.0},
}


def table_i(config: ChipConfig = MTIA_V1) -> Dict[str, object]:
    """Table I: chip feature summary, with derived headline numbers."""
    return config.summary()


def table_ii() -> Dict[str, Dict[str, object]]:
    """Table II: the three platform columns."""
    return {spec.name: spec.as_table_row() for spec in PLATFORMS.values()}


def table_iii(batch_size: int, model_name: str = "MC1") -> Dict[str, float]:
    """Table III: operator-time percentage breakdown on MTIA.

    Runs the medium-complexity model through the compiled-graph
    estimate and returns percentages by Table III bucket.
    """
    from repro.models.configs import MODEL_ZOO
    from repro.models.dlrm import build_dlrm_graph
    from repro.runtime.executor import GraphExecutor

    graph = build_dlrm_graph(MODEL_ZOO[model_name], batch_size)
    executor = GraphExecutor(MACHINES["mtia"], mode="graph")
    placement = executor.compile(graph)
    estimate = estimate_graph(MACHINES["mtia"], graph, placement)
    return {category: 100.0 * fraction
            for category, fraction in estimate.category_fractions().items()}


def table_iv() -> Dict[str, Dict[str, float]]:
    """Table IV: the model zoo's size/complexity, from the solver."""
    from repro.models.configs import table_iv_rows
    return table_iv_rows()


def format_table(rows: Dict[str, Dict], title: str = "") -> str:
    """Render nested dicts as an aligned text table (for bench output)."""
    columns = list(rows)
    keys: List[str] = []
    for col in columns:
        for key in rows[col]:
            if key not in keys:
                keys.append(key)
    width = max(len(k) for k in keys) + 2
    col_width = max(max(len(str(c)) for c in columns) + 2, 14)
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * width + "".join(str(c).rjust(col_width)
                                       for c in columns))
    for key in keys:
        cells = []
        for col in columns:
            value = rows[col].get(key, "")
            if isinstance(value, float):
                value = f"{value:.3g}"
            cells.append(str(value).rjust(col_width))
        lines.append(key.ljust(width) + "".join(cells))
    return "\n".join(lines)
