"""``python -m repro.eval.sweep`` — the calibration sweep CLI.

Sweeps fuzzed FC (and optionally TBE) shapes through both the
cycle-level simulator and the analytical model and reports the
model/sim ratio distribution — the widest view of calibration drift
short of the conformance gate::

    python -m repro.eval.sweep --seeds 40 --jobs 4
    python -m repro.eval.sweep --kinds fc,tbe --json sweep.json
    python -m repro.eval.sweep --sim-cache .simcache   # re-sweep cheap

The simulator side honours the content-addressed sim-result cache
(``--sim-cache`` / ``REPRO_SIM_CACHE``): re-sweeping the same seed
range after a model-side change replays sim results from disk
bit-identically instead of re-simulating.  Results are ordered
deterministically (by kind, then seed) at any ``--jobs`` count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

SWEEP_KINDS = ("fc", "tbe")


def _sweep_job(job: Tuple[str, int]) -> Dict:
    """Module-level so ``--jobs`` spawn workers can pickle it."""
    from repro.conformance.crossval import (crossval_fc, crossval_tbe,
                                            fuzz_fc_shape, fuzz_tbe_shape)
    kind, seed = job
    if kind == "fc":
        return crossval_fc(fuzz_fc_shape(seed)).to_dict()
    return crossval_tbe(fuzz_tbe_shape(seed)).to_dict()


def sweep(kinds: Sequence[str], seeds: int, seed_start: int = 0,
          jobs: int = 1) -> List[Dict]:
    """Run the calibration sweep; returns a list of result dicts."""
    from repro.parallel import parallel_map
    jobs_list = [(kind, seed) for kind in kinds
                 for seed in range(seed_start, seed_start + seeds)]
    return parallel_map(_sweep_job, jobs_list, jobs=jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.sweep",
        description="Sweep fuzzed shapes through the cycle-level "
                    "simulator and the analytical model; report the "
                    "model/sim ratio distribution.")
    parser.add_argument("--seeds", type=int, default=20,
                        help="seeds per kind (default 20)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--kinds", default="fc",
                        help="comma-separated kinds to sweep: "
                        f"{','.join(SWEEP_KINDS)} (default fc; tbe is "
                        "much slower)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial); "
                        "results are identical at any job count")
    parser.add_argument("--sim-cache", default=None, metavar="WHERE",
                        const="mem", nargs="?",
                        help="enable the sim-result cache ('mem' or a "
                        "directory); repeated sweeps replay cached sim "
                        "results bit-identically")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON to PATH "
                        "('-' for stdout)")
    args = parser.parse_args(argv)

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = set(kinds) - set(SWEEP_KINDS)
    if unknown:
        parser.error(f"unknown kind(s) {sorted(unknown)}; "
                     f"choose from {','.join(SWEEP_KINDS)}")
    if args.sim_cache:
        os.environ["REPRO_SIM_CACHE"] = args.sim_cache
        from repro.simcache import reset_env_cache
        reset_env_cache()

    results = sweep(kinds, args.seeds, args.seed_start, jobs=args.jobs)

    out_of_band = 0
    for res in results:
        flag = "  " if res["in_band"] else "!!"
        out_of_band += 0 if res["in_band"] else 1
        shape = ",".join(f"{k}={v}"
                         for k, v in sorted(res["shape"].items()))
        print(f"{flag} {res['kind']:<4} ratio {res['ratio']:7.3f}  "
              f"sim {res['sim_seconds']:.3e}s  "
              f"model {res['model_seconds']:.3e}s  {shape}")
    ratios = sorted(r["ratio"] for r in results)
    mid = ratios[len(ratios) // 2] if ratios else float("nan")
    print(f"\n{len(results)} shapes, median ratio {mid:.3f}, "
          f"{out_of_band} outside the band")

    if args.json:
        text = json.dumps(results, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
    return 0 if out_of_band == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
