"""Data-series generators for every figure in the paper's evaluation.

Each ``figure*`` function returns the rows/series the corresponding
paper figure plots; the ``benchmarks/`` suite calls these, asserts the
qualitative reproduction targets, and prints the series for
EXPERIMENTS.md.  Everything here uses the *analytical* models — the
cycle-level simulator backs the calibration tests instead, because
sweeping full figures through a Python DES would take hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.ops import OpCosts
from repro.eval import calibration
from repro.eval.machines import MACHINES, MachineModel
from repro.eval.opmodel import estimate_graph, estimate_op


# ---------------------------------------------------------------------------
# Figures 10/11: FC (GEMM) benchmark, INT8 and FP16
# ---------------------------------------------------------------------------

#: GemmBench-style shapes (m, k, n) spanning the paper's intensity range,
#: small serving shapes first.
FC_BENCH_SHAPES: List[Tuple[int, int, int]] = [
    (64, 256, 128),
    (64, 512, 256),
    (128, 512, 512),
    (256, 1024, 512),
    (512, 1024, 1024),
    (1024, 1024, 1024),
    (2048, 2048, 1024),
    (4096, 2048, 2048),
    (8192, 4096, 2048),
]


@dataclass
class FCBenchRow:
    shape: Tuple[int, int, int]
    gflops: float
    perf_w: Dict[str, float]          #: machine family -> TFLOPS/s/W

    @property
    def ratio_vs_gpu(self) -> float:
        return self.perf_w["mtia"] / self.perf_w["gpu"]


def _fc_costs(m: int, k: int, n: int, elem_bytes: int,
              quantized: bool) -> OpCosts:
    flops = 2.0 * m * k * n
    bytes_in = (m * k + n * k) * elem_bytes
    bytes_out = m * n * elem_bytes
    if quantized:
        # quantize/dequantize wrappers move the activations once more
        bytes_in += m * k * 4
        bytes_out += m * n * 4
    return OpCosts(flops, bytes_in, bytes_out, "fc")


def fc_bench(dtype: str = "int8",
             shapes: Optional[List[Tuple[int, int, int]]] = None,
             machines: Optional[Dict[str, MachineModel]] = None
             ) -> List[FCBenchRow]:
    """Figures 10 (INT8) and 11 (FP16): FC perf/W across shapes.

    MTIA streams benchmark operands from SRAM (the graph optimiser's
    job, Section 6.1); the GPU's staging is folded into its efficiency
    curve.
    """
    machines = machines or MACHINES
    shapes = shapes or FC_BENCH_SHAPES
    elem = 1 if dtype == "int8" else 2
    rows = []
    for m, k, n in shapes:
        costs = _fc_costs(m, k, n, elem, quantized=(dtype == "int8"))
        perf_w = {}
        for family, machine in machines.items():
            est = estimate_op(machine, "fc", costs, dtype=dtype,
                              in_sram=(family == "mtia"))
            tflops = costs.flops / est.seconds / 1e12
            perf_w[family] = tflops / machine.provisioned_watts
        rows.append(FCBenchRow((m, k, n), costs.flops / 1e9, perf_w))
    return rows


# ---------------------------------------------------------------------------
# Figure 12: TBE benchmark
# ---------------------------------------------------------------------------

#: (pooling factor, rows per table, embedding dim) triplets, with the
#: batch/tables fixed; spans small-pooling latency-bound shapes through
#: wide-row streaming shapes like the paper's x-axis.
TBE_BENCH_SHAPES: List[Tuple[int, int, int]] = [
    (4, 10_000_000, 64),
    (8, 1_000_000, 64),
    (8, 100_000, 128),
    (16, 1_000_000, 64),
    (16, 100_000, 128),
    (32, 1_000_000, 64),
    (32, 100_000, 128),
]

TBE_BENCH_BATCH = 256
TBE_BENCH_TABLES = 32


@dataclass
class TBEBenchRow:
    shape: Tuple[int, int, int]        #: (pooling, rows, dim)
    gbs_w: Dict[str, float]            #: family -> GB/s per watt
    mtia_bw_fraction: float            #: fraction of MTIA DRAM bandwidth

    @property
    def ratio_vs_gpu(self) -> float:
        return self.gbs_w["mtia"] / self.gbs_w["gpu"]


def tbe_bench(shapes: Optional[List[Tuple[int, int, int]]] = None,
              batch: int = TBE_BENCH_BATCH,
              hand_tuned: bool = False) -> List[TBEBenchRow]:
    """Figure 12: TBE GB/s/W for MTIA and GPU.

    Performance is *useful gathered bytes per second*, the natural
    metric for a memory-bound gather (Section 6.1 reports GB/s).
    """
    shapes = shapes or TBE_BENCH_SHAPES
    rows = []
    for pooling, table_rows, dim in shapes:
        gbs_w = {}
        mtia_frac = 0.0
        for family in ("mtia", "gpu"):
            machine = MACHINES[family]
            frac = calibration.tbe_bw_fraction(
                machine, pooling, dim, batch=batch,
                hand_tuned=hand_tuned and family == "mtia")
            achieved_gbs = machine.dram_gbs * frac
            gbs_w[family] = achieved_gbs / machine.provisioned_watts
            if family == "mtia":
                mtia_frac = frac
        rows.append(TBEBenchRow((pooling, table_rows, dim), gbs_w,
                                mtia_frac))
    return rows


# ---------------------------------------------------------------------------
# Figure 13: other operators, SRAM vs DRAM placement
# ---------------------------------------------------------------------------

FIG13_M, FIG13_K, FIG13_N = 256, 128, 32
FIG13_BATCH = 256
FIG13_OPERATORS = ("BatchMatMul", "Concat", "Transpose", "Quantize",
                   "Dequantize", "Tanh")


@dataclass
class OtherOpRow:
    operator: str
    placement: str                   #: "sram" or "dram"
    achieved_gbs: float
    fraction_of_bw: float            #: of the placement's bandwidth


def other_operators_bench(machine: Optional[MachineModel] = None
                          ) -> List[OtherOpRow]:
    """Figure 13: BMM/Concat/Transpose/Quantize/Dequantize/Tanh on MTIA
    with tensors in SRAM and in DRAM (M=256, K=128, N=32)."""
    machine = machine or MACHINES["mtia"]
    m, k, n, batch = FIG13_M, FIG13_K, FIG13_N, FIG13_BATCH
    specs = {
        "BatchMatMul": OpCosts(2.0 * batch * m * k * n,
                               batch * (m * k + k * n), batch * m * n,
                               "bmm"),
        "Concat": OpCosts(0.0, 2 * batch * m * k, 2 * batch * m * k,
                          "concat"),
        "Transpose": OpCosts(0.0, batch * m * k, batch * m * k,
                             "transpose"),
        "Quantize": OpCosts(batch * m * k, 4.0 * batch * m * k,
                            batch * m * k, "quantize"),
        "Dequantize": OpCosts(batch * m * k, batch * m * k,
                              4.0 * batch * m * k, "dequantize"),
        "Tanh": OpCosts(4.0 * batch * m * k, 4.0 * batch * m * k,
                        4.0 * batch * m * k, "other"),
    }
    rows = []
    for op in FIG13_OPERATORS:
        costs = specs[op]
        for placement in ("sram", "dram"):
            in_sram = placement == "sram"
            if op == "BatchMatMul":
                # The benchmark BMM is perfectly data-parallel over the
                # PEs (one small GEMM per PE), so it runs at saturated
                # utilisation and is *memory bound* — "exemplified by
                # BatchMatMul ... which reach more than 90 % of the SRAM
                # bandwidth" (Section 6.1).
                peak_ops = machine.peak_ops("int8") * machine.gemm_util_max
                compute = costs.flops / peak_ops
                bw = (machine.onchip_gbs if in_sram else machine.dram_gbs)
                bw *= calibration.move_bw_fraction(machine, in_sram)
                memory = costs.bytes_total / (bw * 1e9)
                seconds = machine.launch_overhead_s + max(compute, memory)
            else:
                est = estimate_op(machine, costs.category, costs,
                                  dtype="int8" if op != "Tanh" else "fp32",
                                  in_sram=in_sram)
                seconds = est.seconds
            gbs = costs.bytes_total / seconds / 1e9
            peak = machine.onchip_gbs if in_sram else machine.dram_gbs
            rows.append(OtherOpRow(op, placement, gbs, gbs / peak))
    return rows


# ---------------------------------------------------------------------------
# Figure 14: full DLRM models
# ---------------------------------------------------------------------------

@dataclass
class DLRMPerfRow:
    model: str
    tflops_w: Dict[str, float]
    seconds: Dict[str, float]

    @property
    def ratio_vs_gpu(self) -> float:
        return self.tflops_w["mtia"] / self.tflops_w["gpu"]

    @property
    def ratio_vs_nnpi(self) -> float:
        return self.tflops_w["mtia"] / self.tflops_w["nnpi"]


def dlrm_bench(batch: int = 256,
               model_names: Optional[List[str]] = None) -> List[DLRMPerfRow]:
    """Figure 14: TFLOPS/s/W for the Table IV zoo on all platforms."""
    from repro.models.configs import MODEL_ZOO
    from repro.models.dlrm import build_dlrm_graph, model_flops
    from repro.runtime.executor import GraphExecutor

    rows = []
    for name in model_names or list(MODEL_ZOO):
        config = MODEL_ZOO[name]
        graph = build_dlrm_graph(config, batch)
        executor = GraphExecutor(MACHINES["mtia"], mode="graph")
        placement = executor.compile(graph)
        flops = model_flops(config) * batch
        tflops_w, seconds = {}, {}
        for family, machine in MACHINES.items():
            est = estimate_graph(machine, graph,
                                 placement if family == "mtia" else None)
            seconds[family] = est.total_seconds
            tflops_w[family] = (flops / est.total_seconds / 1e12
                                / machine.provisioned_watts)
        rows.append(DLRMPerfRow(name, tflops_w, seconds))
    return rows
