"""Analytical machine models for MTIA, the A100 GPU, and NNPI.

Each model carries the hardware ceilings (from Table I for MTIA and
Table II for all three) and the software-stack parameters the
evaluation section describes qualitatively: kernel-launch/job-dispatch
overheads, GEMM utilisation saturation, and memory-path efficiencies.
The shape-dependent curves themselves live in
:mod:`repro.eval.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config import MTIA_V1
from repro.platforms.server import YOSEMITE_V2, YOSEMITE_V3, ZION_4S


@dataclass(frozen=True)
class MachineModel:
    """One accelerator card + its software stack, for timing estimates."""

    name: str
    family: str                     #: "mtia" | "gpu" | "nnpi"
    peak_tops: Dict[str, float]     #: dtype -> TOPS (1 MAC = 2 ops)
    dram_gbs: float                 #: device memory bandwidth
    onchip_gbs: float               #: on-chip SRAM/L2 bandwidth
    onchip_capacity_bytes: int
    provisioned_watts: float        #: platform power / cards (Section 6)
    card_tdp_watts: float
    #: per-operator dispatch overhead, seconds.  For MTIA this is the
    #: job-creation/dispatch path Section 7 discusses; for the GPU it is
    #: kernel-launch overhead the paper says fusion works to amortise.
    launch_overhead_s: float
    #: peak GEMM utilisation the software stack reaches at saturation
    gemm_util_max: float
    #: GFLOPs of work at which GEMM utilisation reaches half of max —
    #: how much parallelism the device needs before it is efficient.
    gemm_half_sat_gflops: float
    #: fraction of DRAM bandwidth achievable on streaming access
    stream_eff: float
    #: fraction of DRAM bandwidth the *production* embedding kernel
    #: reaches at reference shape (pooling 32, dim 128); Section 6.1
    #: reports 10-20 % for MTIA and ~60 % for the GPU.
    tbe_bw_frac: float

    def peak_ops(self, dtype: str) -> float:
        """Peak ops/s for a dtype."""
        if dtype not in self.peak_tops:
            raise KeyError(f"{self.name} has no {dtype} peak")
        return self.peak_tops[dtype] * 1e12


MTIA_MACHINE = MachineModel(
    name="MTIA (Yosemite V3)",
    family="mtia",
    peak_tops={"int8": MTIA_V1.gemm_tops("int8"),
               "fp16": MTIA_V1.gemm_tops("fp16"),
               "fp32": MTIA_V1.gemm_tops("fp16") / 2},
    dram_gbs=YOSEMITE_V3.device_bw_gbs_per_card,   # 150 effective
    onchip_gbs=MTIA_V1.sram_gbs(),
    onchip_capacity_bytes=MTIA_V1.sram.capacity_bytes,
    provisioned_watts=YOSEMITE_V3.provisioned_watts_per_card,  # 65 W
    card_tdp_watts=YOSEMITE_V3.card_power_w,
    # A lean firmware dispatch path: ~1 us per job including sub-grid
    # setup (Section 7 "Architecture Hierarchy" overheads).
    launch_overhead_s=1.0e-6,
    # With the under-development stack, GEMM sustains ~55 % of peak at
    # saturation (Section 6: the stack "is not currently as optimized as
    # the GPU's"), but it saturates on little work because the PEs are
    # efficient at small tiles (Section 6.1: "particularly effective for
    # low batch sizes").
    gemm_util_max=0.55,
    gemm_half_sat_gflops=0.35,
    stream_eff=0.85,
    # Useful-byte fraction at the reference shape with a saturating
    # batch; at serving batch sizes the pipeline-depth term pulls this
    # into the paper's "10-20 %" band (see calibration.tbe_bw_fraction).
    tbe_bw_frac=0.18,
)

A100_MACHINE = MachineModel(
    name="A100 (Zion4S)",
    family="gpu",
    peak_tops={"int8": ZION_4S.int8_tops_per_card,
               "fp16": ZION_4S.fp16_tflops_per_card,
               "fp32": 19.5},
    dram_gbs=ZION_4S.device_bw_gbs_per_card,
    onchip_gbs=5000.0,              # A100 L2 bandwidth class
    onchip_capacity_bytes=40 * 1024 * 1024,
    provisioned_watts=ZION_4S.provisioned_watts_per_card,  # 562.5 W
    card_tdp_watts=ZION_4S.card_power_w,
    # CUDA kernel launch + framework overhead per operator; the paper
    # notes the GPU stack leans on fusion/CUDA graphs to amortise this.
    launch_overhead_s=1.2e-6,
    # Mature cuBLASLt kernels reach ~85 % of peak, but only with a lot
    # of parallel work to fill 108 SMs x large tiles ("For large batch
    # sizes, the GPU is able to achieve higher utilization").
    gemm_util_max=0.85,
    gemm_half_sat_gflops=4.0,
    stream_eff=0.9,
    # ~60 % *bus* utilisation ("the GPU is achieving about 60% of its
    # HBM bandwidth"); the useful-byte fraction is that times the
    # row-overfetch term in calibration.tbe_bw_fraction.
    tbe_bw_frac=0.60,
)

NNPI_MACHINE = MachineModel(
    name="NNPI (Yosemite V2)",
    family="nnpi",
    peak_tops={"int8": YOSEMITE_V2.int8_tops_per_card,
               "fp16": YOSEMITE_V2.fp16_tflops_per_card,
               "fp32": YOSEMITE_V2.fp16_tflops_per_card / 2},
    dram_gbs=YOSEMITE_V2.device_bw_gbs_per_card,
    onchip_gbs=300.0,
    onchip_capacity_bytes=24 * 1024 * 1024,   # Spring Hill class LLC
    provisioned_watts=YOSEMITE_V2.provisioned_watts_per_card,  # ~49.7 W
    card_tdp_watts=YOSEMITE_V2.card_power_w,
    launch_overhead_s=2.0e-6,
    # Inference-oriented like MTIA: efficient at small shapes, but a
    # lower ceiling.
    gemm_util_max=0.58,
    gemm_half_sat_gflops=0.20,
    stream_eff=0.8,
    tbe_bw_frac=0.55,
)

MACHINES: Dict[str, MachineModel] = {
    "mtia": MTIA_MACHINE,
    "gpu": A100_MACHINE,
    "nnpi": NNPI_MACHINE,
}
