"""Evaluation harness: machine models, operator timing, metrics.

This package turns operator graphs into the performance numbers the
paper reports:

* :mod:`repro.eval.machines` — analytical machine models of the three
  accelerators (MTIA, A100, NNPI) built from Table I/II specs;
* :mod:`repro.eval.calibration` — the software-efficiency curves that
  stand in for each platform's kernel maturity (documented, first-class
  model inputs);
* :mod:`repro.eval.opmodel` — per-operator time estimation;
* :mod:`repro.eval.metrics` — perf/W computation and aggregation.

The analytical model is calibrated against the cycle-level simulator
for small operators (``tests/eval/test_calibration.py``) and against
the paper's reported relative results for full models
(``benchmarks/``).
"""

from repro.eval.machines import (A100_MACHINE, MACHINES, MTIA_MACHINE,
                                 NNPI_MACHINE, MachineModel)
from repro.eval.metrics import geomean, perf_per_watt
from repro.eval.opmodel import OpEstimate, estimate_graph, estimate_op

__all__ = [
    "A100_MACHINE",
    "MACHINES",
    "MTIA_MACHINE",
    "MachineModel",
    "NNPI_MACHINE",
    "OpEstimate",
    "estimate_graph",
    "estimate_op",
    "geomean",
    "perf_per_watt",
]
