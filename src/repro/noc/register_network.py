"""The register-access network.

Section 3.4: "The interconnects consist of two networks for carrying
memory and register accesses separately."  The register network carries
small control-plane transactions — CSR reads/writes, doorbells, status
polls — between the control subsystem, the host interface, and the PEs,
so control traffic never contends with bulk DMA on the data network.

Registers live in a flat CSR space keyed by (block, offset); blocks
register themselves (the control processor, each PE's monitor, the
host mailbox).  Transactions are small (4-8 B) and latency- rather than
bandwidth-dominated.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from repro.config import ChipConfig
from repro.sim import Engine, Resource, SimulationError, StatGroup

#: Cycles for one register transaction to cross the network.
REGISTER_HOP_LATENCY = 4
#: Transactions per cycle the network sustains.
TRANSACTIONS_PER_CYCLE = 4.0


class RegisterFile:
    """One block's CSRs: a dict of offsets with optional write hooks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}

    def define(self, offset: int, initial: int = 0,
               on_write: Optional[Callable[[int], None]] = None) -> None:
        self._values[offset] = initial
        if on_write is not None:
            self._write_hooks[offset] = on_write

    def read(self, offset: int) -> int:
        if offset not in self._values:
            raise SimulationError(
                f"{self.name}: read of undefined register {offset:#x}")
        return self._values[offset]

    def write(self, offset: int, value: int) -> None:
        if offset not in self._values:
            raise SimulationError(
                f"{self.name}: write to undefined register {offset:#x}")
        self._values[offset] = value
        hook = self._write_hooks.get(offset)
        if hook is not None:
            hook(value)

    def poke(self, offset: int, value: int) -> None:
        """Internal (non-transactional) update, e.g. status published by
        the block itself."""
        self._values[offset] = value


class RegisterNetwork:
    """Routes CSR transactions between registered blocks."""

    def __init__(self, engine: Engine, config: ChipConfig) -> None:
        self.engine = engine
        self.config = config
        self.stats = StatGroup("regnet")
        self._blocks: Dict[str, RegisterFile] = {}
        self._port = Resource(engine, TRANSACTIONS_PER_CYCLE, "regnet.port")

    def register_block(self, name: str) -> RegisterFile:
        if name in self._blocks:
            raise SimulationError(f"register block {name!r} already exists")
        block = RegisterFile(name)
        self._blocks[name] = block
        return block

    def block(self, name: str) -> RegisterFile:
        try:
            return self._blocks[name]
        except KeyError:
            raise SimulationError(f"no register block {name!r}") from None

    # -- timed transactions -----------------------------------------------
    def read(self, block: str, offset: int) -> Generator:
        """Process: a CSR read transaction; returns the value."""
        self.stats.add("reads")
        yield self._port.delay_for(1)
        yield REGISTER_HOP_LATENCY
        return self.block(block).read(offset)

    def write(self, block: str, offset: int, value: int) -> Generator:
        """Process: a CSR write transaction."""
        self.stats.add("writes")
        yield self._port.delay_for(1)
        yield REGISTER_HOP_LATENCY
        self.block(block).write(offset, value)

    def poll(self, block: str, offset: int, expected: int,
             interval: int = 16, timeout: Optional[int] = None) -> Generator:
        """Process: poll a CSR until it reads ``expected``.

        The firmware's wait-for-status idiom; each poll is a real
        transaction on the network.
        """
        waited = 0
        while True:
            value = yield from self.read(block, offset)
            if value == expected:
                return waited
            if timeout is not None and waited >= timeout:
                raise SimulationError(
                    f"poll of {block}:{offset:#x} timed out at {waited} "
                    f"cycles (last value {value})")
            yield interval
            waited += interval + REGISTER_HOP_LATENCY
