"""AXI-style memory-access network with row/column multicast.

The network carries DMA traffic between PEs and the memory system.  Each
grid row and column has a link resource; an access from PE ``(r, c)`` to
the perimeter charges its row and column links and pays a per-hop
latency proportional to the Manhattan distance to the nearest edge.

Multicast (Section 3.4): requests from multiple PEs *along the same row
or column* to the same set of addresses are coalesced — a single request
is sent to memory and the response is delivered to every requester.  We
expose this through :class:`MulticastGroup`: kernels join a group (the
``JoinMulticastGroup`` call in the paper's Figure 8 pseudocode) and
issue group reads; the first arrival for a given (address, size) pays
the memory-side cost, later arrivals only pay delivery.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ChipConfig
from repro.memory.system import MemorySystem
from repro.sim import Engine, Event, Resource, SimulationError, StatGroup

Coord = Tuple[int, int]


class NoC:
    """The chip's main request/response interconnect."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 memory: MemorySystem) -> None:
        self.engine = engine
        self.config = config
        self.memory = memory
        self.stats = StatGroup("noc")
        rate = config.noc.link_bytes_per_cycle
        self.row_links: List[Resource] = [
            Resource(engine, rate, f"noc.row{r}", stall_cause="noc_link_arb")
            for r in range(config.grid_rows)]
        self.col_links: List[Resource] = [
            Resource(engine, rate, f"noc.col{c}", stall_cause="noc_link_arb")
            for c in range(config.grid_cols)]

    # -- helpers ---------------------------------------------------------
    def hop_count(self, source: Coord) -> int:
        """Hops from PE ``source`` to the nearest grid edge (plus one)."""
        row, col = source
        to_edge = min(row, self.config.grid_rows - 1 - row,
                      col, self.config.grid_cols - 1 - col)
        return to_edge + 1

    def _traverse(self, source: Coord, nbytes: int) -> Generator:
        """Charge link bandwidth and hop latency for one traversal."""
        row, col = source
        self.stats.add("link_bytes", nbytes)
        charged = nbytes
        retransmit = 0.0
        faults = self.engine.faults
        if faults is not None:
            # Link degradation charges extra bytes (the usable-bandwidth
            # fraction shrinks); retransmission pays extra latency after
            # delivery.  Both are no-ops outside a fault window.
            now = self.engine.now
            multiplier = faults.noc_degrade(row, col, now)
            if multiplier != 1.0:
                charged = nbytes * multiplier
                self.stats.add("degraded_bytes", charged - nbytes)
            retransmit = faults.noc_retransmit(row, col, now)
        row_use = self.row_links[row].charge(charged)
        col_use = self.col_links[col].charge(charged)
        yield self.engine.all_of([row_use, col_use])
        yield self.hop_count(source) * self.config.noc.hop_latency
        if retransmit:
            now = self.engine.now
            self.stats.add("retransmit_cycles", retransmit)
            self.engine.obs.stall(f"noc.row{row}", "noc_retransmit",
                                  now, now + retransmit)
            yield retransmit

    # -- unicast accesses --------------------------------------------------
    def read(self, source: Coord, addr: int, nbytes: int) -> Generator:
        """Process: PE at ``source`` reads ``nbytes`` from ``addr``."""
        self.stats.add("reads")
        yield from self._traverse(source, nbytes)
        data = yield from self.memory.read(addr, nbytes, requester=source)
        return data

    def write(self, source: Coord, addr: int, data: np.ndarray) -> Generator:
        """Process: PE at ``source`` writes ``data`` to ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self.stats.add("writes")
        yield from self._traverse(source, raw.size)
        yield from self.memory.write(addr, raw, requester=source)

    def read_2d(self, source: Coord, addr: int, rows: int, row_bytes: int,
                stride: int) -> Generator:
        """Process: strided (DMA-descriptor) read; returns gathered data."""
        self.stats.add("reads")
        yield from self._traverse(source, rows * row_bytes)
        data = yield from self.memory.read_2d(addr, rows, row_bytes, stride,
                                              requester=source)
        return data

    def write_2d(self, source: Coord, addr: int, data: np.ndarray,
                 rows: int, row_bytes: int, stride: int) -> Generator:
        """Process: strided (DMA-descriptor) scatter write."""
        self.stats.add("writes")
        yield from self._traverse(source, rows * row_bytes)
        yield from self.memory.write_2d(addr, data, rows, row_bytes, stride,
                                        requester=source)

    # -- multicast ----------------------------------------------------------
    def multicast_group(self, members: Sequence[Coord]) -> "MulticastGroup":
        """Create a multicast group; members must share a row or a column."""
        return MulticastGroup(self, members)


class MulticastGroup:
    """Coalesces identical reads from PEs in the same row or column.

    The hardware restriction (Section 3.4) is enforced at construction:
    "Multicast is only supported for the PEs that are located along the
    same row or column in the grid ... and cannot be used for an
    arbitrary group of PEs."
    """

    def __init__(self, noc: NoC, members: Sequence[Coord]) -> None:
        members = [tuple(m) for m in members]
        if len(members) != len(set(members)):
            raise SimulationError("duplicate PEs in multicast group")
        if not members:
            raise SimulationError("empty multicast group")
        rows = {r for r, _ in members}
        cols = {c for _, c in members}
        if len(rows) != 1 and len(cols) != 1:
            raise SimulationError(
                f"multicast group {members} is not a single row or column")
        self.noc = noc
        self.members = members
        self.axis = "row" if len(rows) == 1 else "col"
        #: (addr, nbytes) -> completion event carrying the data
        self._pending: Dict[Tuple[int, int], Event] = {}
        self.stats = StatGroup("multicast")

    def read(self, source: Coord, addr: int, nbytes: int) -> Generator:
        """Process: a coalesced contiguous read by group member ``source``."""
        data = yield from self.read_2d(source, addr, 1, nbytes, nbytes)
        return data

    def read_2d(self, source: Coord, addr: int, rows: int, row_bytes: int,
                stride: int) -> Generator:
        """Process: a coalesced (possibly strided) read by ``source``.

        The first member to request a given descriptor performs the
        memory access; every member (including the first) additionally
        pays its own delivery traversal, because the response still has
        to reach each PE over its row/column links.
        """
        if tuple(source) not in self.members:
            raise SimulationError(f"{source} is not in this multicast group")
        key = (addr, rows, row_bytes, stride)
        nbytes = rows * row_bytes
        fetch = self._pending.get(key)
        if fetch is None:
            fetch = self.noc.engine.event(f"mcast:{addr:#x}+{nbytes}")
            self._pending[key] = fetch
            self.stats.add("fetches")
            data = yield from self.noc.memory.read_2d(addr, rows, row_bytes,
                                                      stride, requester=source)
            fetch.succeed(data)
        else:
            self.stats.add("coalesced")
            data = yield fetch
        yield from self.noc._traverse(source, nbytes)
        return data

    def coalescing_ratio(self) -> float:
        """Requests saved per request issued (0 = no sharing)."""
        fetches = self.stats.get("fetches")
        coalesced = self.stats.get("coalesced")
        total = fetches + coalesced
        return coalesced / total if total else 0.0
