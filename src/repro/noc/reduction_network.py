"""The dedicated reduction network (Sections 3.4-3.5).

A unidirectional mesh overlay travelling only north-to-south and
west-to-east.  It carries partial-sum blocks between the Reduction
Engines of adjacent PEs, so a row (or column) of PEs can accumulate a
distributed dot-product without round-tripping through memory.

Each directed link is a bandwidth resource; a transfer of one RE bank
(32x32 FP32/INT32 = 4 KB) additionally pays the hop latency.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

import numpy as np

from repro.config import ChipConfig
from repro.sim import Engine, Queue, Resource, SimulationError, StatGroup

Coord = Tuple[int, int]


class ReductionNetwork:
    """Point-to-point neighbour links for RE partial sums."""

    #: Bytes per cycle on each reduction link.
    LINK_BYTES_PER_CYCLE = 64

    def __init__(self, engine: Engine, config: ChipConfig) -> None:
        self.engine = engine
        self.config = config
        self.stats = StatGroup("rednet")
        self._links: Dict[Tuple[Coord, Coord], Resource] = {}
        self._mailboxes: Dict[Coord, Queue] = {}

    def _validate_hop(self, src: Coord, dst: Coord) -> None:
        """Only immediate south or east neighbours are reachable."""
        sr, sc = src
        dr, dc = dst
        for r, c in (src, dst):
            if not (0 <= r < self.config.grid_rows
                    and 0 <= c < self.config.grid_cols):
                raise SimulationError(f"PE ({r},{c}) outside the grid")
        south = (dr == sr + 1 and dc == sc)
        east = (dr == sr and dc == sc + 1)
        if not (south or east):
            raise SimulationError(
                f"reduction network cannot route {src} -> {dst}: links run "
                "north-to-south and west-to-east between neighbours only")

    def _link(self, src: Coord, dst: Coord) -> Resource:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Resource(self.engine, self.LINK_BYTES_PER_CYCLE,
                            f"rednet.{src}->{dst}")
            self._links[key] = link
        return link

    def mailbox(self, pe: Coord) -> Queue:
        """The inbound partial-sum queue of PE ``pe``."""
        box = self._mailboxes.get(tuple(pe))
        if box is None:
            box = Queue(self.engine, name=f"rednet.inbox{pe}")
            self._mailboxes[tuple(pe)] = box
        return box

    def send(self, src: Coord, dst: Coord, payload: np.ndarray) -> Generator:
        """Process: ship a partial-sum block from ``src`` to ``dst``."""
        src, dst = tuple(src), tuple(dst)
        self._validate_hop(src, dst)
        nbytes = payload.nbytes
        self.stats.add("transfers")
        self.stats.add("bytes", nbytes)
        yield self._link(src, dst).delay_for(nbytes)
        yield self.config.noc.hop_latency
        faults = self.engine.faults
        if faults is not None:
            extra = faults.rednet_penalty(self.engine.now)
            if extra:
                now = self.engine.now
                self.stats.add("retransmit_cycles", extra)
                self.engine.obs.stall(f"rednet.{src}->{dst}",
                                      "noc_retransmit", now, now + extra)
                yield extra
        yield self.mailbox(dst).put(payload)

    def receive(self, pe: Coord) -> Generator:
        """Process: wait for the next inbound partial-sum block at ``pe``."""
        payload = yield self.mailbox(pe).get()
        return payload

    def total_bytes(self) -> float:
        return self.stats.get("bytes")
