"""On-chip network models (Section 3.4).

Two fabrics connect the PE grid to memory and to each other:

* an AXI-based request/response network with *multicast coalescing* for
  reads issued by PEs along the same row or column to the same
  addresses (:class:`NoC`, :class:`MulticastGroup`);
* a unidirectional *reduction network* carrying Reduction Engine
  partial sums north-to-south and west-to-east
  (:class:`ReductionNetwork`).
"""

from repro.noc.axi_network import MulticastGroup, NoC
from repro.noc.reduction_network import ReductionNetwork

__all__ = ["MulticastGroup", "NoC", "ReductionNetwork"]
