"""One-shot reproduction report: every table and figure to stdout.

Usage::

    python -m repro.report             # everything
    python -m repro.report fig14 t3    # a selection
    python -m repro.report --metrics bounds   # + metric-registry dump

Section keys: t1 t2 t3 t4 fig1 fig2 fig10 fig11 fig12 fig13 fig14
bounds serving telemetry.
``--metrics`` enables the process-wide :mod:`repro.obs` registry for
the run, so instrumented layers (the graph executor's per-op timing,
the serving simulator's latency histograms, the bound analysis) record
into it, and appends the registry dump to the report.
This is the quick, human-readable view; ``pytest benchmarks/
--benchmark-only`` additionally asserts every reproduction target.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional


def _header(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def report_t1() -> None:
    from repro.eval.tables import table_i
    _header("Table I — MTIA features and parameters (derived)")
    for key, value in table_i().items():
        print(f"  {key}: {value}")


def report_t2() -> None:
    from repro.eval.tables import format_table, table_ii
    _header("Table II — inference hardware platforms")
    print(format_table(table_ii()))


def report_t3() -> None:
    from repro.eval.tables import TABLE_III_PAPER, table_iii
    _header("Table III — operator breakdown (MC1)")
    for batch in (64, 256):
        ours = table_iii(batch)
        print(f"  batch {batch}:  (paper -> ours, % of time)")
        for bucket, paper in TABLE_III_PAPER[batch].items():
            print(f"    {bucket:<12}{paper:6.1f} -> {ours.get(bucket, 0):5.1f}")


def report_t4() -> None:
    from repro.eval.tables import table_iv
    from repro.models.configs import TABLE_IV_TARGETS
    _header("Table IV — DLRM model zoo")
    for name, row in table_iv().items():
        size_gb, gflops = TABLE_IV_TARGETS[name]
        print(f"  {name}: size {row['Size (GB)']:.1f} GB (paper {size_gb}), "
              f"complexity {row['Complexity (GFLOPS/batch)']:.3f} GF "
              f"(paper {gflops})")


def report_fig1() -> None:
    from repro.models.trends import figure1_series
    _header("Figure 1 — inference model scaling trends")
    for p in figure1_series():
        print(f"  {p.year}: {p.complexity_gflops:7.3f} GF/sample, "
              f"{p.total_footprint_gb:6.0f} GB total, "
              f"{p.table_footprint_gb:6.0f} GB tables")


def report_fig2() -> None:
    from repro.models.trends import figure2_series
    _header("Figure 2 — server demand by platform")
    for p in figure2_series():
        print(f"  {p.year_quarter}: CPU {p.cpu:5.0f}  NNPI {p.nnpi:5.0f}  "
              f"GPU {p.gpu:5.0f}")


def _report_fc(dtype: str) -> None:
    from repro.eval.figures import fc_bench
    _header(f"Figure {'10' if dtype == 'int8' else '11'} — "
            f"{dtype.upper()} FC perf/W (TFLOPS/s/W)")
    print(f"  {'shape':<20}{'MTIA':>9}{'GPU':>9}{'ratio':>8}")
    for row in fc_bench(dtype):
        print(f"  {str(row.shape):<20}{row.perf_w['mtia']:>9.4f}"
              f"{row.perf_w['gpu']:>9.4f}{row.ratio_vs_gpu:>8.2f}")


def report_fig10() -> None:
    _report_fc("int8")


def report_fig11() -> None:
    _report_fc("fp16")


def report_fig12() -> None:
    from repro.eval.figures import tbe_bench
    _header("Figure 12 — TBE GB/s/W")
    print(f"  {'(pooling,rows,dim)':<24}{'MTIA':>7}{'GPU':>7}{'ratio':>7}"
          f"{'%BW':>6}")
    for row in tbe_bench():
        print(f"  {str(row.shape):<24}{row.gbs_w['mtia']:>7.2f}"
              f"{row.gbs_w['gpu']:>7.2f}{row.ratio_vs_gpu:>7.2f}"
              f"{100 * row.mtia_bw_fraction:>6.0f}")


def report_fig13() -> None:
    from repro.eval.figures import other_operators_bench
    _header("Figure 13 — other operators, SRAM vs DRAM placement")
    print(f"  {'operator':<14}{'placement':>10}{'GB/s':>8}{'%BW':>6}")
    for row in other_operators_bench():
        print(f"  {row.operator:<14}{row.placement:>10}"
              f"{row.achieved_gbs:>8.0f}{100 * row.fraction_of_bw:>6.0f}")


def report_fig14() -> None:
    import numpy as np
    from repro.eval.figures import dlrm_bench
    from repro.models.configs import MODEL_ZOO
    from repro.models.dlrm import model_flops
    _header("Figure 14 — DLRM TFLOPS/s/W (batch 256)")
    rows = dlrm_bench()
    print(f"  {'model':<6}{'MTIA':>9}{'GPU':>9}{'NNPI':>9}{'vs GPU':>8}"
          f"{'vs NNPI':>9}")
    for r in rows:
        print(f"  {r.model:<6}{r.tflops_w['mtia']:>9.4f}"
              f"{r.tflops_w['gpu']:>9.4f}{r.tflops_w['nnpi']:>9.4f}"
              f"{r.ratio_vs_gpu:>8.2f}{r.ratio_vs_nnpi:>9.2f}")
    weights = [model_flops(MODEL_ZOO[r.model]) for r in rows]
    gpu = np.average([r.ratio_vs_gpu for r in rows], weights=weights)
    nnpi = np.average([r.ratio_vs_nnpi for r in rows], weights=weights)
    print(f"  flops-weighted: vs GPU {gpu:.2f} (paper ~0.9), "
          f"vs NNPI {nnpi:.2f} (paper ~1.6)")


def report_serving() -> None:
    """Request-level serving view: phase breakdown, SLO burn, tail."""
    from repro.serve_report import run_serve_report
    _header("Serving — request breakdown, SLO burn, tail attribution "
            "(LC2 quickstart; full view: python -m repro.serve_report)")
    report, _ = run_serve_report("quickstart", num_requests=1500,
                                 exemplars=False)
    s = report.serving
    print(f"  p50 {s.percentile(50):7.1f} us   p95 "
          f"{s.percentile(95):7.1f} us   p99 {s.percentile(99):7.1f} us  "
          f"(SLA {report.sla_us:g} us)")
    breakdown = s.breakdown_means()
    print("  mean request: "
          + "  ".join(f"{phase} {breakdown[phase]:.0f} us"
                      for phase in ("queue_wait", "batch_wait", "execute")))
    print(f"  SLO: {report.slo.violations}/{report.slo.total} violations, "
          f"error-budget burn {report.slo.burn_rate:.2f}")
    tail = report.tail
    for phase in ("queue_wait", "batch_wait", "execute"):
        t, m = tail.phase_us["tail"][phase], tail.phase_us["median"][phase]
        print(f"  tail-vs-median {phase:<11} {t:7.1f} vs {m:7.1f} us "
              f"({t - m:+.1f})")


def report_telemetry() -> None:
    """Fleet telemetry: sketches, exemplars, anomalies (3 replicas)."""
    from repro.serve_report import run_serve_report
    _header("Fleet telemetry — bounded mergeable aggregates "
            "(3 replicas; full view: python -m repro.serve_report "
            "--replicas 3)")
    report, _ = run_serve_report("quickstart", num_requests=1500,
                                 exemplars=False, replicas=3)
    print(report.telemetry.to_text())
    if report.sketch_vs_exact:
        parts = [f"{name} {100 * row['relative_error']:.2f} %"
                 for name, row in sorted(report.sketch_vs_exact.items())]
        print("  sketch error vs exact (replica 0): " + "  ".join(parts))


def report_fleet() -> None:
    """Fleet serving: routing policies + simulated capacity answer."""
    from repro.serve_report import run_fleet_report
    _header("Fleet serving — router + replicas over a diurnal trace "
            "(full view: python -m repro.serve_report --fleet)")
    report, _ = run_fleet_report("quickstart", replicas=3,
                                 duration_us=20_000.0)
    for row in report.comparison:
        print(f"  {row['policy']:<14} p99 {row['p99_us']:7.1f} us  "
              f"availability {row['availability']:.4f}")
    cap = report.capacity
    print(f"  capacity: {cap['replicas']} replicas for p99 <= "
          f"{report.sla_us:g} us at >= "
          f"{100 * cap['availability_target']:g} % availability "
          f"({cap['policy']}, "
          f"{'feasible' if cap['feasible'] else 'INFEASIBLE'})")


def report_bounds() -> None:
    """Roofline classification: where each model's time goes on MTIA."""
    from repro.eval.machines import MACHINES
    from repro.eval.opmodel import estimate_graph
    from repro.models.configs import MODEL_ZOO
    from repro.models.dlrm import build_dlrm_graph
    from repro.runtime.executor import GraphExecutor
    _header("Bound analysis — MTIA, batch 256 "
            "(compute / memory / launch-bound time)")
    for name in MODEL_ZOO:
        graph = build_dlrm_graph(MODEL_ZOO[name], 256)
        executor = GraphExecutor(MACHINES["mtia"], mode="graph")
        placement = executor.compile(graph)
        estimate = estimate_graph(MACHINES["mtia"], graph, placement)
        executor._record_metrics(estimate)
        seconds = {"compute": 0.0, "memory": 0.0, "launch": 0.0}
        for op in estimate.estimates:
            seconds[op.bound] += op.seconds
        total = sum(seconds.values())
        print(f"  {name}: compute {100 * seconds['compute'] / total:4.1f}%  "
              f"memory {100 * seconds['memory'] / total:4.1f}%  "
              f"launch {100 * seconds['launch'] / total:4.1f}%")


SECTIONS = {
    "t1": report_t1, "t2": report_t2, "t3": report_t3, "t4": report_t4,
    "fig1": report_fig1, "fig2": report_fig2, "fig10": report_fig10,
    "fig11": report_fig11, "fig12": report_fig12, "fig13": report_fig13,
    "fig14": report_fig14, "bounds": report_bounds,
    "serving": report_serving, "telemetry": report_telemetry,
    "fleet": report_fleet,
}


def main(argv: Optional[Iterable[str]] = None) -> int:
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    with_metrics = "--metrics" in args
    if with_metrics:
        args = [a for a in args if a != "--metrics"]
    unknown = [a for a in args if a not in SECTIONS]
    if unknown:
        print(f"unknown section(s): {unknown}; "
              f"choose from {sorted(SECTIONS)} (flags: --metrics)")
        return 2
    registry = None
    if with_metrics:
        from repro.obs.metrics import enable_default_registry
        registry = enable_default_registry()
    try:
        print("MTIA reproduction report "
              "(analytical models; see benchmarks/ for asserted targets)")
        for key in (args or SECTIONS):
            SECTIONS[key]()
        if registry is not None:
            _header("Collected metrics (repro.obs registry)")
            print(registry.to_prometheus(), end="")
    finally:
        if registry is not None:
            from repro.obs.metrics import disable_default_registry
            disable_default_registry()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
