"""Command definitions for the PE's fixed-function units.

Every command names the circular buffers it *reads* and *writes*; the
Command Processor uses these ID sets — not absolute addresses — for its
dependency interlocks, exactly as Section 3.3 describes ("the circular
buffer IDs were used as units of dependency checks, similar to register
IDs in the processor cores").

Commands also carry their *element/space requirements*: how many bytes
must be available in each input CB and free in each output CB before the
operation may start.  The CP's element/space check stalls the operation
until producers/consumers catch up — this is the hardware realisation
of producer-consumer synchronisation (Sections 3.3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.dtypes import DType, INT8


@dataclass
class Command:
    """Base class for all PE commands."""

    #: Which functional unit executes the command; subclasses override.
    unit: str = field(default="cp", init=False)

    def reads_cbs(self) -> Tuple[int, ...]:
        """CBs read pointer-relatively *without* moving pointers."""
        return ()

    def produces_cbs(self) -> Tuple[int, ...]:
        """CBs whose write pointer this command advances."""
        return ()

    def consumes_cbs(self) -> Tuple[int, ...]:
        """CBs whose read pointer this command advances."""
        return ()

    def writes_regs(self) -> Tuple[str, ...]:
        """Non-CB architectural state written (accumulator banks)."""
        return ()

    def required_elements(self) -> Dict[int, int]:
        """Bytes that must be readable per input CB before start."""
        return {}

    def required_space(self) -> Dict[int, int]:
        """Bytes that must be free per output CB before start."""
        return {}


# ---------------------------------------------------------------------------
# Circular-buffer management (executed by the Command Processor itself)
# ---------------------------------------------------------------------------

@dataclass
class InitCB(Command):
    """Define circular buffer ``cb_id`` over local memory [base, base+size)."""

    cb_id: int = 0
    base: int = 0
    size: int = 0

    # Redefining a CB is a full barrier against every prior use of it.
    def reads_cbs(self):
        return (self.cb_id,)

    def produces_cbs(self):
        return (self.cb_id,)

    def consumes_cbs(self):
        return (self.cb_id,)


@dataclass
class PopCB(Command):
    """Advance the read pointer: mark ``nbytes`` as consumed."""

    cb_id: int = 0
    nbytes: int = 0

    def consumes_cbs(self):
        return (self.cb_id,)

    def required_elements(self):
        return {self.cb_id: self.nbytes}


@dataclass
class PushCB(Command):
    """Advance the write pointer: mark ``nbytes`` as produced.

    Used by operations that wrote data via offsets without moving the
    pointer (Section 3.3: "Hardware provides additional custom
    instructions that can adjust both read and write pointers").
    """

    cb_id: int = 0
    nbytes: int = 0

    def produces_cbs(self):
        return (self.cb_id,)

    def required_space(self):
        return {self.cb_id: self.nbytes}


# ---------------------------------------------------------------------------
# Fabric Interface (DMA)
# ---------------------------------------------------------------------------

@dataclass
class DMALoad(Command):
    """Copy data from system memory into a circular buffer.

    The descriptor is 2D: ``rows`` rows of ``row_bytes`` bytes, ``stride``
    bytes apart in memory (``rows=1`` for a contiguous transfer) — this
    is how the paper's ``DMA GetAddr(A, (m, k)), size=(64, 32)`` loads a
    sub-block of a larger row-major matrix.  The transfer goes over the
    NoC; if ``multicast`` names a group the read is coalesced with
    identical reads from other group members (Section 3.4).  On
    completion the CB's write pointer advances — DMAs "automatically
    adjust the read and write pointers" (Section 3.3).
    """

    addr: int = 0
    row_bytes: int = 0
    rows: int = 1
    stride: Optional[int] = None
    cb_id: int = 0
    multicast: Optional[object] = None

    def __post_init__(self):
        self.unit = "fi"
        if self.stride is None:
            self.stride = self.row_bytes

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_bytes

    def produces_cbs(self):
        return (self.cb_id,)

    def required_space(self):
        return {self.cb_id: self.nbytes}


@dataclass
class DMAStore(Command):
    """Copy data from a circular buffer out to system memory.

    2D descriptor semantics mirror :class:`DMALoad` (the paper's
    ``DMA PutAddr(C, (n, m)), size=(64, 64)``).  Consumes the bytes
    (advances the read pointer) on completion.
    """

    addr: int = 0
    row_bytes: int = 0
    rows: int = 1
    stride: Optional[int] = None
    cb_id: int = 0

    def __post_init__(self):
        self.unit = "fi"
        if self.stride is None:
            self.stride = self.row_bytes

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_bytes

    def consumes_cbs(self):
        # the store pops the CB, moving its read pointer
        return (self.cb_id,)

    def required_elements(self):
        return {self.cb_id: self.nbytes}


# ---------------------------------------------------------------------------
# Dot-Product Engine / Reduction Engine
# ---------------------------------------------------------------------------

@dataclass
class InitAccumulators(Command):
    """Load RE accumulator banks with zero (or a bias from a CB)."""

    banks: Tuple[int, ...] = (0, 1, 2, 3)
    bias_cb: Optional[int] = None
    bias_offset: int = 0

    def __post_init__(self):
        self.unit = "re"

    def reads_cbs(self):
        return (self.bias_cb,) if self.bias_cb is not None else ()

    def writes_regs(self):
        # Accumulator banks participate in the CP's dependency tracking
        # exactly like CB IDs ("similar to register IDs", Section 3.3).
        return tuple(f"acc{b}" for b in self.banks)


@dataclass
class MML(Command):
    """Matrix-multiply a block of A against a block of B into RE bank ``acc``.

    Follows the paper's Figure 8 operand order: the B block
    (``n x k``, row-major at ``cb_b``+``offset_b``) is streamed against
    the resident A block (``m x k`` at ``cb_a``+``offset_a``), producing
    an ``n x m`` partial result accumulated into bank ``acc``.  Offsets
    address data *relative to the read pointer* without consuming it,
    enabling reuse (Section 3.3).
    """

    acc: int = 0
    m: int = 32
    k: int = 32
    n: int = 32
    cb_b: int = 0
    cb_a: int = 1
    offset_b: int = 0
    offset_a: int = 0
    dtype: DType = INT8

    def __post_init__(self):
        self.unit = "dpe"

    def reads_cbs(self):
        return (self.cb_b, self.cb_a)

    def writes_regs(self):
        return (f"acc{self.acc}",)

    def required_elements(self):
        elem = self.dtype.bytes
        return {
            self.cb_b: self.offset_b + self.n * self.k * elem,
            self.cb_a: self.offset_a + self.m * self.k * elem,
        }


@dataclass
class Reduce(Command):
    """Combine accumulator banks and forward/store the result.

    ``banks_layout`` arranges banks into a 2D block (the FC mapping uses
    a 2x2 arrangement for a 64x64 output).  If ``receive`` is set the RE
    first waits for one inbound block on the reduction network and
    accumulates it on top of the local banks.  ``dest_pe`` sends the
    result to a south/east neighbour; ``dest_cb`` stores it into local
    memory through the CB abstraction.  Exactly one of ``dest_pe`` /
    ``dest_cb`` must be given (Section 3.1.3).
    """

    banks_layout: Tuple[Tuple[int, ...], ...] = ((0, 1), (2, 3))
    receive: bool = False
    dest_pe: Optional[Tuple[int, int]] = None
    dest_cb: Optional[int] = None
    #: Optional output conversion performed by the SE on the way out.
    out_dtype: Optional[DType] = None
    out_scale: float = 1.0

    def __post_init__(self):
        self.unit = "re"
        if (self.dest_pe is None) == (self.dest_cb is None):
            raise ValueError("Reduce needs exactly one of dest_pe / dest_cb")

    def writes_regs(self):
        return tuple(f"acc{b}" for row in self.banks_layout for b in row)

    def produces_cbs(self):
        return (self.dest_cb,) if self.dest_cb is not None else ()

    def output_shape(self) -> Tuple[int, int]:
        rows = len(self.banks_layout) * 32
        cols = len(self.banks_layout[0]) * 32
        return rows, cols

    def required_space(self):
        if self.dest_cb is None:
            return {}
        rows, cols = self.output_shape()
        out_bytes = (self.out_dtype.bytes if self.out_dtype else 4)
        return {self.dest_cb: rows * cols * out_bytes}


# ---------------------------------------------------------------------------
# Memory Layout Unit
# ---------------------------------------------------------------------------

@dataclass
class TransposeCmd(Command):
    """Transpose a ``rows x cols`` tile from ``src_cb`` into ``dst_cb``."""

    src_cb: int = 0
    dst_cb: int = 1
    rows: int = 0
    cols: int = 0
    dtype: DType = INT8
    src_offset: int = 0
    pop_input: bool = False

    def __post_init__(self):
        self.unit = "mlu"

    def reads_cbs(self):
        return (self.src_cb,)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return (self.src_cb,) if self.pop_input else ()

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * self.dtype.bytes

    def required_elements(self):
        return {self.src_cb: self.src_offset + self.nbytes}

    def required_space(self):
        return {self.dst_cb: self.nbytes}


@dataclass
class ConcatCmd(Command):
    """Concatenate byte ranges from several CBs into ``dst_cb``."""

    src_cbs: Tuple[int, ...] = ()
    src_nbytes: Tuple[int, ...] = ()
    dst_cb: int = 0
    pop_inputs: bool = True

    def __post_init__(self):
        self.unit = "mlu"
        if len(self.src_cbs) != len(self.src_nbytes):
            raise ValueError("src_cbs and src_nbytes must align")

    def reads_cbs(self):
        return tuple(self.src_cbs)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return tuple(self.src_cbs) if self.pop_inputs else ()

    @property
    def nbytes(self) -> int:
        return sum(self.src_nbytes)

    def required_elements(self):
        return {cb: n for cb, n in zip(self.src_cbs, self.src_nbytes)}

    def required_space(self):
        return {self.dst_cb: self.nbytes}


@dataclass
class CopyCmd(Command):
    """Copy ``nbytes`` from ``src_cb`` to ``dst_cb`` (reshape/copy)."""

    src_cb: int = 0
    dst_cb: int = 1
    nbytes: int = 0
    src_offset: int = 0
    pop_input: bool = False

    def __post_init__(self):
        self.unit = "mlu"

    def reads_cbs(self):
        return (self.src_cb,)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return (self.src_cb,) if self.pop_input else ()

    def required_elements(self):
        return {self.src_cb: self.src_offset + self.nbytes}

    def required_space(self):
        return {self.dst_cb: self.nbytes}


# ---------------------------------------------------------------------------
# SIMD Engine
# ---------------------------------------------------------------------------

@dataclass
class QuantizeCmd(Command):
    """Quantize (fp->int8) or dequantize (int8->fp) ``count`` elements."""

    src_cb: int = 0
    dst_cb: int = 1
    count: int = 0
    scale: float = 1.0
    zero_point: int = 0
    direction: str = "quantize"  # or "dequantize"
    src_dtype: Optional[DType] = None
    dst_dtype: Optional[DType] = None
    pop_input: bool = True

    def __post_init__(self):
        self.unit = "se"
        if self.direction not in ("quantize", "dequantize"):
            raise ValueError(f"bad direction {self.direction!r}")

    def reads_cbs(self):
        return (self.src_cb,)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return (self.src_cb,) if self.pop_input else ()

    def required_elements(self):
        src_bytes = self.src_dtype.bytes if self.src_dtype else (
            4 if self.direction == "quantize" else 1)
        return {self.src_cb: self.count * src_bytes}

    def required_space(self):
        dst_bytes = self.dst_dtype.bytes if self.dst_dtype else (
            1 if self.direction == "quantize" else 4)
        return {self.dst_cb: self.count * dst_bytes}


@dataclass
class NonlinearCmd(Command):
    """Apply a LUT-approximated nonlinear function elementwise.

    Supported functions mirror Section 3.1.4: exp, sigmoid, tanh, relu.
    Input INT8 or FP16/FP32-held data; output FP32.
    """

    func: str = "tanh"
    src_cb: int = 0
    dst_cb: int = 1
    count: int = 0
    src_dtype: DType = INT8
    pop_input: bool = True

    SUPPORTED = ("exp", "sigmoid", "tanh", "relu", "gelu")

    def __post_init__(self):
        self.unit = "se"
        if self.func not in self.SUPPORTED:
            raise ValueError(f"unsupported nonlinear {self.func!r}")

    def reads_cbs(self):
        return (self.src_cb,)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return (self.src_cb,) if self.pop_input else ()

    def required_elements(self):
        return {self.src_cb: self.count * self.src_dtype.bytes}

    def required_space(self):
        return {self.dst_cb: self.count * 4}


@dataclass
class ElementwiseCmd(Command):
    """Binary elementwise op on two CBs (add/mul/max) into a third."""

    op: str = "add"
    src_cb_a: int = 0
    src_cb_b: int = 1
    dst_cb: int = 2
    count: int = 0
    dtype: DType = INT8
    pop_inputs: bool = True

    SUPPORTED = ("add", "mul", "sub", "max")

    def __post_init__(self):
        self.unit = "se"
        if self.op not in self.SUPPORTED:
            raise ValueError(f"unsupported elementwise op {self.op!r}")

    def reads_cbs(self):
        return (self.src_cb_a, self.src_cb_b)

    def produces_cbs(self):
        return (self.dst_cb,)

    def consumes_cbs(self):
        return (self.src_cb_a, self.src_cb_b) if self.pop_inputs else ()

    def required_elements(self):
        n = self.count * self.dtype.bytes
        return {self.src_cb_a: n, self.src_cb_b: n}

    def required_space(self):
        return {self.dst_cb: self.count * self.dtype.bytes}
