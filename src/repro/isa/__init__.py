"""The PE command set.

MTIA's cores drive the fixed-function units by assembling *commands*
(the paper's custom instructions + custom registers, Section 3.2) and
issuing them to the Command Processor, which performs dependency
checking against circular-buffer IDs and dispatches to the units.
This package defines those commands as plain dataclasses.
"""

from repro.isa.commands import (
    Command,
    ConcatCmd,
    CopyCmd,
    DMALoad,
    DMAStore,
    ElementwiseCmd,
    InitAccumulators,
    InitCB,
    MML,
    NonlinearCmd,
    PopCB,
    PushCB,
    QuantizeCmd,
    Reduce,
    TransposeCmd,
)

__all__ = [
    "Command",
    "ConcatCmd",
    "CopyCmd",
    "DMALoad",
    "DMAStore",
    "ElementwiseCmd",
    "InitAccumulators",
    "InitCB",
    "MML",
    "NonlinearCmd",
    "PopCB",
    "PushCB",
    "QuantizeCmd",
    "Reduce",
    "TransposeCmd",
]
