"""The firmware job scheduler.

Jobs arrive in a run queue; the scheduler allocates each a sub-grid,
pays the setup cost (configuring the PEs' monitors, circular buffers,
address windows — "the task of setting up and tearing down these
sub-grids is part of the system's firmware", Section 7), launches the
job's kernel programs, and tears the sub-grid down at completion.
Multiple jobs run concurrently on disjoint sub-grids — the sub-graph
parallelism the paper says small layers must exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.firmware.allocator import SubGridAllocator
from repro.sim import Event, SimulationError

#: Firmware cycles to set up / tear down one management unit (one PE,
#: or one cluster when the allocator is cluster-granular).
SETUP_CYCLES_PER_UNIT = 150
TEARDOWN_CYCLES_PER_UNIT = 60


@dataclass
class Job:
    """One schedulable unit of work.

    ``body(accelerator, subgrid)`` must *launch* the kernel's core
    programs (without running the engine) and return the list of
    processes to wait on.
    """

    name: str
    rows: int
    cols: int
    body: Callable[[Accelerator, SubGrid], List]
    #: populated by the scheduler
    submit_cycle: float = 0.0
    start_cycle: float = 0.0
    finish_cycle: float = 0.0
    subgrid: Optional[SubGrid] = None

    @property
    def queueing_cycles(self) -> float:
        return self.start_cycle - self.submit_cycle

    @property
    def service_cycles(self) -> float:
        return self.finish_cycle - self.start_cycle


@dataclass
class JobStats:
    completed: int = 0
    failed: int = 0
    total_setup_cycles: float = 0.0
    total_queueing_cycles: float = 0.0
    makespan: float = 0.0


class JobScheduler:
    """FIFO run queue with first-fit sub-grid placement."""

    def __init__(self, accelerator: Accelerator, cluster: int = 1) -> None:
        self.accelerator = accelerator
        self.allocator = SubGridAllocator(accelerator.grid, cluster=cluster)
        self.stats = JobStats()
        self._pending: List[Job] = []
        self._completion_events: List[Event] = []
        self._grid_freed = accelerator.engine.event("sched.init")
        self._grid_freed.succeed()

    def submit(self, job: Job) -> Event:
        """Queue a job; returns an event firing at job completion."""
        if (job.rows > self.accelerator.config.grid_rows
                or job.cols > self.accelerator.config.grid_cols):
            raise SimulationError(
                f"job {job.name!r} ({job.rows}x{job.cols}) can never fit "
                "the grid")
        job.submit_cycle = self.accelerator.engine.now
        done = self.accelerator.engine.event(f"job.{job.name}")
        self._pending.append(job)
        self._completion_events.append(done)
        return done

    def run(self) -> JobStats:
        """Dispatch everything submitted so far; returns the statistics.

        Jobs start in submission order as soon as a sub-grid is free
        (FIFO with head-of-line blocking, like a simple firmware run
        queue); the engine runs until all complete.
        """
        engine = self.accelerator.engine
        start = engine.now
        engine.process(self._dispatch_loop(), "firmware.dispatch")
        engine.run()
        stuck = [j.name for j in self._pending]
        if stuck:
            raise SimulationError(f"jobs never started: {stuck}")
        self.stats.makespan = engine.now - start
        return self.stats

    # -- internals ---------------------------------------------------------
    def _dispatch_loop(self) -> Generator:
        engine = self.accelerator.engine
        while self._pending:
            job = self._pending[0]
            subgrid = self.allocator.allocate(job.rows, job.cols)
            if subgrid is None:
                # Wait for any running job to free its PEs.
                freed = self._grid_freed
                if freed.triggered:
                    self._grid_freed = engine.event("sched.freed")
                    freed = self._grid_freed
                yield freed
                continue
            done = self._completion_events.pop(0)
            self._pending.pop(0)
            job.subgrid = subgrid
            engine.process(self._run_job(job, done),
                           f"firmware.job.{job.name}")

    def _run_job(self, job: Job, done: Event) -> Generator:
        engine = self.accelerator.engine
        control = self.accelerator.control
        units = self.allocator.management_units(job.rows, job.cols)
        setup = units * SETUP_CYCLES_PER_UNIT
        self.stats.total_setup_cycles += setup
        for pe in job.subgrid:
            control.mark_pe(pe.index, 1)       # assigned
        yield setup
        job.start_cycle = engine.now
        self.stats.total_queueing_cycles += job.queueing_cycles
        for pe in job.subgrid:
            control.mark_pe(pe.index, 2)       # running
        failure: Optional[BaseException] = None
        try:
            procs = job.body(self.accelerator, job.subgrid)
            if procs:
                yield engine.all_of(procs)
        except Exception as exc:               # job failed: free the PEs
            failure = exc
            self.stats.failed += 1
        job.finish_cycle = engine.now
        yield units * TEARDOWN_CYCLES_PER_UNIT
        for pe in job.subgrid:
            control.mark_pe(pe.index, 0)       # idle
        self.allocator.release(job.subgrid)
        if failure is None:
            self.stats.completed += 1
            control.complete_job()
        if not self._grid_freed.triggered:
            self._grid_freed.succeed()
        if failure is None:
            done.succeed(job)
        else:
            done.fail(failure)
