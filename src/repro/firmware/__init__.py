"""Control-subsystem firmware: job scheduling over the PE grid.

The paper's device firmware includes "the Control Core Processor
firmware ... performing runtime and management operations, and finally
the PE monitor that runs on the PEs in the compute grid, which
schedules and monitors workloads running on the PEs" (Section 5), and
Section 7 ("Architecture Hierarchy") describes its hardest problem:
small jobs must be packed onto sub-grids, and "the task of setting up
and tearing down these sub-grids is part of the system's firmware".

This package implements that layer over the simulator:

* :class:`SubGridAllocator` — carves rectangular sub-grids out of the
  8x8 grid, optionally at *cluster* granularity (the paper's proposed
  next-generation hierarchy);
* :class:`Job` / :class:`JobScheduler` — a firmware run queue that
  allocates a sub-grid per job, charges the setup/teardown overhead,
  launches the kernel programs, and frees the PEs at completion, so
  multiple operators genuinely execute concurrently on disjoint
  sub-grids of one simulated chip.
"""

from repro.firmware.allocator import SubGridAllocator
from repro.firmware.scheduler import Job, JobScheduler, JobStats

__all__ = ["Job", "JobScheduler", "JobStats", "SubGridAllocator"]
