"""Sub-grid allocation over the PE grid.

The firmware divides the monolithic 8x8 grid into rectangular sub-grids
per job (Section 7, "Architecture Hierarchy").  The allocator tracks
per-PE occupancy and places requests first-fit in row-major order.

``cluster`` optionally forces allocations onto a coarser granularity
(e.g. 2x2 PE clusters) — the paper's suggested "another level of
hierarchy in the architecture itself ... clusters of PEs" that would
provide "natural units of isolation and management".  Cluster-granular
bookkeeping wastes some PEs on odd-shaped jobs but makes setup cheaper
(fewer, larger management units); the scheduler charges setup cost
accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.grid import Grid, SubGrid
from repro.sim import SimulationError

Coord = Tuple[int, int]


class SubGridAllocator:
    """First-fit rectangular allocator over the grid."""

    def __init__(self, grid: Grid, cluster: int = 1) -> None:
        if cluster < 1:
            raise ValueError("cluster granularity must be >= 1")
        if (grid.config.grid_rows % cluster
                or grid.config.grid_cols % cluster):
            raise ValueError(
                f"cluster={cluster} must divide the "
                f"{grid.config.grid_rows}x{grid.config.grid_cols} grid")
        self.grid = grid
        self.cluster = cluster
        self._busy = [[False] * grid.config.grid_cols
                      for _ in range(grid.config.grid_rows)]

    # -- geometry helpers -------------------------------------------------
    def _round_up(self, value: int) -> int:
        c = self.cluster
        return (value + c - 1) // c * c

    def _fits(self, origin: Coord, rows: int, cols: int) -> bool:
        orow, ocol = origin
        if (orow + rows > self.grid.config.grid_rows
                or ocol + cols > self.grid.config.grid_cols):
            return False
        return not any(self._busy[r][c]
                       for r in range(orow, orow + rows)
                       for c in range(ocol, ocol + cols))

    def _mark(self, origin: Coord, rows: int, cols: int,
              value: bool) -> None:
        orow, ocol = origin
        for r in range(orow, orow + rows):
            for c in range(ocol, ocol + cols):
                self._busy[r][c] = value

    # -- allocation interface ----------------------------------------------
    def allocate(self, rows: int, cols: int) -> Optional[SubGrid]:
        """Place a rows x cols job; returns None when nothing fits.

        With cluster granularity the *reservation* is rounded up to
        whole clusters, but the returned sub-grid is the requested
        shape — the surplus PEs sit idle (the isolation cost of the
        hierarchy).
        """
        if rows <= 0 or cols <= 0:
            raise SimulationError("job needs a positive sub-grid shape")
        res_rows, res_cols = self._round_up(rows), self._round_up(cols)
        step = self.cluster
        for orow in range(0, self.grid.config.grid_rows, step):
            for ocol in range(0, self.grid.config.grid_cols, step):
                if self._fits((orow, ocol), res_rows, res_cols):
                    self._mark((orow, ocol), res_rows, res_cols, True)
                    return self.grid.subgrid((orow, ocol), rows, cols)
        return None

    def release(self, subgrid: SubGrid) -> None:
        """Free a previously allocated sub-grid."""
        rows = self._round_up(subgrid.rows)
        cols = self._round_up(subgrid.cols)
        origin = (subgrid.origin[0] - subgrid.origin[0] % self.cluster,
                  subgrid.origin[1] - subgrid.origin[1] % self.cluster)
        self._mark(origin, rows, cols, False)

    @property
    def busy_pes(self) -> int:
        return sum(sum(row) for row in self._busy)

    @property
    def free_pes(self) -> int:
        return self.grid.num_pes - self.busy_pes

    def utilization(self) -> float:
        return self.busy_pes / self.grid.num_pes

    def management_units(self, rows: int, cols: int) -> int:
        """How many firmware-managed units a job of this shape touches.

        At PE granularity every PE is individually set up; with clusters
        the unit count shrinks by ``cluster**2`` — the mechanism behind
        the hierarchy's cheaper job launch.
        """
        return ((self._round_up(rows) // self.cluster)
                * (self._round_up(cols) // self.cluster))
