"""Ready-made job constructors for the firmware scheduler."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.firmware.scheduler import Job
from repro.kernels.fc import launch_fc_programs, plan_fc


def make_fc_job(name: str, accelerator: Accelerator, m: int, k: int, n: int,
                rows: int, cols: int, k_split: Optional[int] = None,
                dual_core: bool = True, seed: int = 0) -> Job:
    """An FC job: operands are uploaded now, the mapping is planned at
    dispatch time against whichever sub-grid the firmware assigns."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
    a_addr = accelerator.upload(a)
    bt_addr = accelerator.upload(b_t)
    c_addr = accelerator.alloc_dram(n * m * 4)

    def body(acc: Accelerator, subgrid: SubGrid) -> List:
        plan = plan_fc(subgrid, m, k, n, k_split=k_split)
        return launch_fc_programs(acc, plan, (a_addr, bt_addr, c_addr),
                                  dual_core=dual_core)

    job = Job(name=name, rows=rows, cols=cols, body=body)
    job.expected = (b_t.astype(np.int32) @ a.astype(np.int32).T)
    job.result_addr = c_addr
    job.result_shape = (n, m)
    return job


def make_tbe_job(name: str, accelerator: Accelerator, config, rows: int,
                 cols: int, prefetch_rows: int = 4, seed: int = 0) -> Job:
    """A TBE job over whichever sub-grid the firmware assigns."""
    from repro.kernels.tbe import (generate_indices, generate_tables,
                                   launch_tbe_programs, pooled_reference)
    tables = generate_tables(config, seed)
    indices = generate_indices(config, seed + 1)
    table_addrs = [accelerator.upload(tables[t])
                   for t in range(config.num_tables)]
    out_addr = accelerator.alloc_dram(
        config.num_bags * config.embedding_dim * 4)

    def body(acc: Accelerator, subgrid: SubGrid) -> List:
        return launch_tbe_programs(acc, config, table_addrs, out_addr,
                                   subgrid, prefetch_rows=prefetch_rows,
                                   indices=indices)

    job = Job(name=name, rows=rows, cols=cols, body=body)
    job.expected = pooled_reference(tables, indices, config.scale)
    job.result_addr = out_addr
    job.result_shape = (config.num_tables, config.batch_size,
                        config.embedding_dim)
    return job
