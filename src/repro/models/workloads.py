"""Synthetic inference workload generation.

Produces the request-level inputs a serving DLRM consumes: dense
feature vectors and per-table sparse index lists with a realistic
popularity skew (embedding accesses in production are heavily skewed,
which is why the memory-side SRAM cache configuration pays off,
Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.models.dlrm import DLRMConfig


@dataclass
class InferenceRequest:
    """One batched inference request."""

    request_id: int
    dense: np.ndarray                      #: (batch, dense_features) fp16
    indices: Dict[str, np.ndarray]         #: per-table (batch, pooling)

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]


class WorkloadGenerator:
    """Generates inference requests for a DLRM configuration."""

    def __init__(self, config: DLRMConfig, batch_size: int = 64,
                 zipf_alpha: Optional[float] = 1.05, seed: int = 0) -> None:
        self.config = config
        self.batch_size = batch_size
        self.zipf_alpha = zipf_alpha
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        # A fixed per-table random permutation so the "hot" rows differ
        # between tables (zipf draws are rank-ordered otherwise).
        self._perm_seeds = self._rng.integers(
            0, 2 ** 31, size=config.num_tables)

    def _draw_indices(self, table: int) -> np.ndarray:
        shape = (self.batch_size, self.config.pooling)
        rows = self.config.rows_per_table
        if self.zipf_alpha is None:
            return self._rng.integers(0, rows, size=shape, dtype=np.int64)
        ranks = self._rng.zipf(self.zipf_alpha, size=shape)
        ranks = np.minimum(ranks - 1, rows - 1).astype(np.int64)
        # Scatter the popularity ranking across the table.
        mix = np.random.default_rng(self._perm_seeds[table])
        offset = mix.integers(0, rows)
        stride = int(mix.integers(1, max(2, rows - 1))) | 1
        return (offset + ranks * stride) % rows

    def next_request(self) -> InferenceRequest:
        dense = self._rng.standard_normal(
            (self.batch_size, self.config.dense_features)).astype(np.float16)
        indices = {f"indices{t}": self._draw_indices(t)
                   for t in range(self.config.num_tables)}
        request = InferenceRequest(self._next_id, dense, indices)
        self._next_id += 1
        return request

    def requests(self, count: int) -> Iterator[InferenceRequest]:
        for _ in range(count):
            yield self.next_request()

    def feeds_for(self, request: InferenceRequest) -> Dict[str, np.ndarray]:
        """Bind a request to the graph's input-node names."""
        feeds: Dict[str, np.ndarray] = {"dense": request.dense}
        feeds.update(request.indices)
        return feeds


def access_skew(indices: np.ndarray, top_fraction: float = 0.01) -> float:
    """Fraction of accesses landing on the hottest ``top_fraction`` rows.

    A quick skew diagnostic used by tests and the cache ablation bench:
    uniform traffic returns ~``top_fraction``; production-like zipf
    traffic returns several times that.
    """
    flat = indices.reshape(-1)
    _, counts = np.unique(flat, return_counts=True)
    counts.sort()
    top = max(1, int(len(counts) * top_fraction))
    return counts[-top:].sum() / flat.size
