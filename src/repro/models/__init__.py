"""DLRM workload models (Sections 1, 6.2).

* :mod:`repro.models.dlrm` — parametric DLRM graph construction
  (bottom MLP, embedding bags, interaction, top MLP) over the compiler
  IR, with analytical size/complexity accounting;
* :mod:`repro.models.configs` — the Table IV model zoo (LC1, LC2, MC1,
  MC2, HC), solved to hit the published size (GB) and complexity
  (GFLOPs/batch) targets;
* :mod:`repro.models.workloads` — synthetic inference request
  generators (dense features + skewed sparse indices);
* :mod:`repro.models.trends` — the growth models behind Figures 1-2.
"""

from repro.models.dlrm import DLRMConfig, build_dlrm_graph, model_flops, model_size_bytes
from repro.models.configs import MODEL_ZOO, TABLE_IV_TARGETS

__all__ = [
    "DLRMConfig",
    "MODEL_ZOO",
    "TABLE_IV_TARGETS",
    "build_dlrm_graph",
    "model_flops",
    "model_size_bytes",
]
