"""Growth-trend models behind Figures 1 and 2.

Figure 1 plots the historical and projected growth of Meta's inference
recommendation models: model complexity (dashed), total memory
footprint (solid), and the device-memory footprint of embedding tables
(gray solid).  Figure 2 plots the estimated number of inference servers
by platform type: CPU, NNPI-equipped, and GPU-equipped.

The paper gives the curves without numeric axes, so these models encode
the *shapes*: multiplicative yearly growth for Figure 1 (with compute
growing faster than memory), and for Figure 2 the
CPU-plateau / NNPI-rise-then-fall / GPU-takeover dynamic the Motivation
section narrates ("the requirements for the inference models quickly
outpaced the NNPI capabilities and provided motivation for using
GPUs").  Parameters are consistent with the public characterisation
literature ([17], [18]) and the Table IV model zoo: the 2023 points of
the complexity/footprint series bracket the MC/HC models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class TrendPoint:
    year: int
    complexity_gflops: float       #: GFLOPs/sample of a flagship model
    total_footprint_gb: float      #: full model memory footprint
    table_footprint_gb: float      #: device-resident embedding tables


def figure1_series(start_year: int = 2018, end_year: int = 2026,
                   base_complexity: float = 0.010,
                   base_footprint_gb: float = 40.0,
                   complexity_growth: float = 1.9,
                   footprint_growth: float = 1.55,
                   table_share: float = 0.96) -> List[TrendPoint]:
    """The Figure 1 growth curves.

    Defaults: complexity roughly doubles yearly while memory footprint
    grows ~1.5x yearly — both anchored so the 2023 values straddle the
    Table IV zoo (0.14-0.45 GFLOPs, 120-725 GB).
    """
    points = []
    for year in range(start_year, end_year + 1):
        age = year - 2018
        complexity = base_complexity * complexity_growth ** age
        footprint = base_footprint_gb * footprint_growth ** age
        points.append(TrendPoint(
            year=year,
            complexity_gflops=complexity,
            total_footprint_gb=footprint,
            table_footprint_gb=footprint * table_share,
        ))
    return points


@dataclass(frozen=True)
class ServerDemand:
    year_quarter: str
    cpu: float
    nnpi: float
    gpu: float

    @property
    def total(self) -> float:
        return self.cpu + self.nnpi + self.gpu


def figure2_series(quarters: int = 16) -> List[ServerDemand]:
    """The Figure 2 server-demand curves (normalised units).

    Quarterly from 2019Q1: total serving demand grows steadily; CPUs
    absorb it at first and then plateau; NNPI ramps, peaks while models
    still fit its envelope, then declines; GPUs take over the growth.
    """
    points = []
    for q in range(quarters):
        year = 2019 + q // 4
        label = f"{year}Q{q % 4 + 1}"
        demand = 100.0 * 1.12 ** q
        # NNPI ramps to a peak near quarter 7 then decays ("the
        # requirements ... quickly outpaced the NNPI capabilities").
        nnpi = 55.0 * math.exp(-((q - 7) / 3.5) ** 2)
        # GPUs start deploying around quarter 4 and take all growth.
        gpu = 12.0 * max(0.0, q - 3) ** 1.5
        cpu = max(demand - nnpi - gpu, 60.0)
        points.append(ServerDemand(label, cpu=cpu, nnpi=nnpi, gpu=gpu))
    return points


def compute_memory_gap(points: List[TrendPoint]) -> Dict[str, float]:
    """Summary statistics the Introduction argues from Figure 1."""
    first, last = points[0], points[-1]
    years = last.year - first.year
    return {
        "complexity_cagr":
            (last.complexity_gflops / first.complexity_gflops) ** (1 / years),
        "footprint_cagr":
            (last.total_footprint_gb / first.total_footprint_gb) ** (1 / years),
        "complexity_x": last.complexity_gflops / first.complexity_gflops,
        "footprint_x": last.total_footprint_gb / first.total_footprint_gb,
    }
