"""Parametric DLRM construction (Naumov et al. [16], Section 1).

A DLRM combines:

* a *bottom MLP* over dense features;
* hundreds of *embedding bags* turning sparse categorical features into
  pooled dense vectors (the memory-capacity/bandwidth hogs);
* a *feature interaction* combining the two;
* a *top MLP* producing the click-through-rate logit.

``build_dlrm_graph`` emits the operator graph over the compiler IR,
including the quantize/dequantize brackets INT8 serving uses and the
transpose the interaction needs — so the resulting operator mix matches
Table III's breakdown buckets.  ``model_size_bytes`` / ``model_flops``
provide the Table IV accounting, and the configs in
:mod:`repro.models.configs` are solved against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.compiler.ir import Graph, GraphBuilder


@dataclass
class DLRMConfig:
    """Architecture of one DLRM."""

    name: str
    num_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling: int
    dense_features: int
    bottom_mlp: Tuple[int, ...]          #: hidden widths; last = emb dim
    top_mlp: Tuple[int, ...]             #: hidden widths; 1 appended
    #: group size for the BMM-based pairwise interaction; 0 disables it
    interaction_group: int = 16
    #: feature-group dense towers between interaction and top MLP —
    #: production recommendation models reach "approximately 750 layers"
    #: (Section 6.1) largely through many such small per-group MLPs.
    num_towers: int = 0
    tower_mlp: Tuple[int, ...] = ()
    #: insert an MLU relayout (k-major operand formatting) before each
    #: tower's first FC — the layout churn behind Table III's Transpose
    #: bucket.
    layout_ops: bool = False
    #: add a residual LayerNorm block per tower (unfusable elementwise
    #: work contributing to Table III's "Others").
    tower_residual: bool = False
    quantized: bool = True               #: INT8 MLPs with q/dq brackets
    table_dtype_bytes: int = 1           #: 8-bit quantised rows

    def __post_init__(self):
        if self.bottom_mlp and self.bottom_mlp[-1] != self.embedding_dim:
            raise ValueError(
                "bottom MLP must end at embedding_dim so dense and sparse "
                "features concatenate into the interaction")

    @property
    def concat_width(self) -> int:
        return (self.num_tables + 1) * self.embedding_dim

    @property
    def interaction_width(self) -> int:
        """Width the interaction adds on top of the concatenated features."""
        if not self.interaction_group:
            return 0
        groups = math.ceil((self.num_tables + 1) / self.interaction_group)
        per_group = self.interaction_group * self.interaction_group
        return groups * per_group

    @property
    def full_feature_width(self) -> int:
        return self.concat_width + self.interaction_width

    def tower_slices(self) -> List[Tuple[int, int]]:
        """(start, stop) column ranges the towers split the features into."""
        if not self.num_towers:
            return []
        width = self.full_feature_width
        per = width // self.num_towers
        slices = []
        for t in range(self.num_towers):
            start = t * per
            stop = width if t == self.num_towers - 1 else (t + 1) * per
            slices.append((start, stop))
        return slices

    @property
    def top_input_width(self) -> int:
        if self.num_towers:
            return self.num_towers * self.tower_mlp[-1]
        return self.full_feature_width


def model_size_bytes(config: DLRMConfig) -> int:
    """Parameter bytes — embedding tables plus MLP weights (Table IV)."""
    tables = (config.num_tables * config.rows_per_table
              * config.embedding_dim * config.table_dtype_bytes)
    weight_bytes = 1 if config.quantized else 2
    mlp = 0
    prev = config.dense_features
    for width in config.bottom_mlp:
        mlp += prev * width * weight_bytes
        prev = width
    for start, stop in config.tower_slices():
        prev = stop - start
        for width in config.tower_mlp:
            mlp += prev * width * weight_bytes
            prev = width
    prev = config.top_input_width
    for width in tuple(config.top_mlp) + (1,):
        mlp += prev * width * weight_bytes
        prev = width
    return tables + mlp


def model_flops(config: DLRMConfig) -> float:
    """FLOPs per sample (Table IV's "Complexity (GFLOPS/batch)" x 1e9).

    MACs count as two operations; embedding pooling adds are included
    (they are a rounding error next to the MLPs).
    """
    flops = 0.0
    prev = config.dense_features
    for width in config.bottom_mlp:
        flops += 2.0 * prev * width
        prev = width
    flops += config.num_tables * config.pooling * config.embedding_dim
    if config.interaction_group:
        groups = math.ceil((config.num_tables + 1) / config.interaction_group)
        g, d = config.interaction_group, config.embedding_dim
        flops += groups * 2.0 * g * d * g
    for start, stop in config.tower_slices():
        prev = stop - start
        for width in config.tower_mlp:
            flops += 2.0 * prev * width
            prev = width
    prev = config.top_input_width
    for width in tuple(config.top_mlp) + (1,):
        flops += 2.0 * prev * width
        prev = width
    return flops


def build_dlrm_graph(config: DLRMConfig, batch_size: int) -> Graph:
    """Emit the operator graph for one inference batch."""
    b = GraphBuilder(f"{config.name}.b{batch_size}")
    act_dtype = "fp16"

    def mlp(x, widths, prefix):
        """FC stack with ReLU, bracketed by quantize/dequantize."""
        for i, width in enumerate(widths):
            in_width = x.meta.shape[-1]
            w = b.weight((width, in_width),
                         dtype="int8" if config.quantized else "fp16",
                         name=f"{prefix}_w{i}")
            if config.quantized:
                x = b.add("quantize", (x.name,), scale=0.05,
                          name=f"{prefix}_q{i}")
            x = b.add("fc", (x.name, w.name), out_dtype="fp32",
                      name=f"{prefix}_fc{i}")
            if config.quantized:
                x = b.add("dequantize", (x.name,), scale=0.0025,
                          name=f"{prefix}_dq{i}")
            last = (i == len(widths) - 1) and prefix == "top"
            x = b.add("sigmoid" if last else "relu", (x.name,),
                      name=f"{prefix}_act{i}")
        return x

    dense = b.input((batch_size, config.dense_features), dtype=act_dtype,
                    name="dense")
    bottom = mlp(dense, config.bottom_mlp, "bot")

    pooled = []
    for t in range(config.num_tables):
        table = b.weight((config.rows_per_table, config.embedding_dim),
                         dtype="int8", name=f"table{t}")
        idx = b.input((batch_size, config.pooling), dtype="int32",
                      name=f"indices{t}")
        pooled.append(b.add("embedding_bag", (table.name, idx.name),
                            batch=batch_size, pooling=config.pooling,
                            scale=1.0 / 64.0, name=f"eb{t}"))

    features = b.add("concat", [bottom.name] + [p.name for p in pooled],
                     axis=1, name="sparse_concat")

    inputs_to_top = [features.name]
    if config.interaction_group:
        # Grouped pairwise dot-product interaction: reshape feature
        # vectors into (batch, group, dim) stacks, BMM against their
        # transpose, and flatten the (group x group) similarity blocks.
        g, d = config.interaction_group, config.embedding_dim
        num_feat = config.num_tables + 1
        groups = math.ceil(num_feat / g)
        pad = groups * g - num_feat
        stacked = features
        if pad:
            zero_pad = b.weight((batch_size, pad * d), dtype=act_dtype,
                                name="int_pad")
            stacked = b.add("concat", (features.name, zero_pad.name), axis=1,
                            name="int_padded")
        lhs = b.add("reshape", (stacked.name,),
                    shape=(batch_size * groups, g, d), name="int_lhs")
        # The transposed operand: (batch*groups, d, g).  On MTIA the MLU
        # performs this layout change (Table III's Transpose bucket).
        rhs2d = b.add("reshape", (stacked.name,),
                      shape=(batch_size * groups * g, d), name="int_rhs2d")
        rhs_t = b.add("transpose", (rhs2d.name,), name="int_transpose")
        rhs = b.add("reshape", (rhs_t.name,),
                    shape=(batch_size * groups, d, g), name="int_rhs")
        sims = b.add("batch_matmul", (lhs.name, rhs.name), name="int_bmm")
        flat = b.add("reshape", (sims.name,),
                     shape=(batch_size, groups * g * g), name="int_flat")
        inputs_to_top.append(flat.name)

    if len(inputs_to_top) > 1:
        all_feat = b.add("concat", inputs_to_top, axis=1, name="feat_concat")
    else:
        all_feat = features

    if config.num_towers:
        tower_outs = []
        for t, (start, stop) in enumerate(config.tower_slices()):
            piece = b.add("slice", (all_feat.name,), axis=1,
                          start=start, stop=stop, name=f"tower{t}_in")
            if config.layout_ops:
                piece = b.add("relayout", (piece.name,),
                              name=f"tower{t}_layout")
            out = mlp(piece, config.tower_mlp, f"tw{t}")
            if config.tower_residual:
                skip = b.add("slice", (piece.name,), axis=1, start=0,
                             stop=out.meta.shape[1], name=f"tower{t}_skip")
                out = b.add("add", (out.name, skip.name),
                            name=f"tower{t}_res")
                out = b.add("layernorm", (out.name,), name=f"tower{t}_ln")
            tower_outs.append(out)
        top_in = b.add("concat", [o.name for o in tower_outs], axis=1,
                       name="tower_concat")
    else:
        top_in = all_feat
    logit = mlp(top_in, tuple(config.top_mlp) + (1,), "top")
    return b.output(logit.name)


def operator_census(graph: Graph) -> dict:
    """Operator counts by type — the "~750 layers with nearly 550 EB"
    characterisation of Section 6.1."""
    census: dict = {}
    for node in graph:
        if node.op in ("input", "weight"):
            continue
        census[node.op] = census.get(node.op, 0) + 1
    census["total"] = sum(census.values())
    return census
