"""The Table IV model zoo: LC1, LC2, MC1, MC2, HC.

Table IV characterises the five representative DLRMs only by parameter
size (GB) and complexity (GFLOPs/batch); Section 6.1 adds that a
medium-complexity model has ~750 layers of which ~550 are EmbeddingBag
operators.  The configs here are *solved* against those published
numbers: table rows are derived from the size target, and the top-MLP
first-layer width from the complexity target, so
``tests/models/test_configs.py`` can assert each model lands within a
few percent of Table IV.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.models.dlrm import DLRMConfig, model_flops, model_size_bytes

GIB = 1024 ** 3

#: (size_gb, gflops_per_batch) from Table IV.
TABLE_IV_TARGETS: Dict[str, Tuple[float, float]] = {
    "LC1": (53.2, 0.032),
    "LC2": (4.5, 0.014),
    "MC1": (120.0, 0.140),
    "MC2": (200.0, 0.220),
    "HC": (725.0, 0.450),
}


def _solve_config(name: str, size_gb: float, gflops: float,
                  num_tables: int, embedding_dim: int, pooling: int,
                  dense_features: int, bottom_hidden: Tuple[int, ...],
                  top_tail: Tuple[int, ...],
                  interaction_group: int,
                  num_towers: int = 0,
                  tower_mlp: Tuple[int, ...] = (),
                  layout_ops: bool = False,
                  tower_residual: bool = False) -> DLRMConfig:
    """Derive rows-per-table and the top width from the targets."""
    rows = round(size_gb * 1e9 / (num_tables * embedding_dim))
    bottom = tuple(bottom_hidden) + (embedding_dim,)

    def flops_for(width: int) -> float:
        cfg = DLRMConfig(name=name, num_tables=num_tables,
                         rows_per_table=rows, embedding_dim=embedding_dim,
                         pooling=pooling, dense_features=dense_features,
                         bottom_mlp=bottom,
                         top_mlp=(width,) + tuple(top_tail),
                         interaction_group=interaction_group,
                         num_towers=num_towers, tower_mlp=tower_mlp,
                         layout_ops=layout_ops,
                         tower_residual=tower_residual)
        return model_flops(cfg)

    lo, hi = 8, 65536
    if flops_for(lo) > gflops * 1e9:
        raise ValueError(
            f"{name}: base structure already exceeds the complexity target; "
            "reduce tables/dims")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if flops_for(mid) <= gflops * 1e9:
            lo = mid
        else:
            hi = mid
    width = max(8, lo // 8 * 8)   # round to a hardware-friendly multiple
    return DLRMConfig(name=name, num_tables=num_tables,
                      rows_per_table=rows, embedding_dim=embedding_dim,
                      pooling=pooling, dense_features=dense_features,
                      bottom_mlp=bottom,
                      top_mlp=(width,) + tuple(top_tail),
                      interaction_group=interaction_group,
                      num_towers=num_towers, tower_mlp=tower_mlp,
                      layout_ops=layout_ops,
                      tower_residual=tower_residual)


MODEL_ZOO: Dict[str, DLRMConfig] = {
    # Low complexity: few, small FCs; LC1 is memory-heavy (53 GB of
    # tables) while LC2 is the small model MTIA shines on (Section 6.2:
    # "LC2 shows nearly a 3x improvement").
    "LC1": _solve_config("LC1", *TABLE_IV_TARGETS["LC1"],
                         num_tables=160, embedding_dim=64, pooling=10,
                         dense_features=256, bottom_hidden=(256,),
                         top_tail=(256,), interaction_group=8,
                         num_towers=8, tower_mlp=(128, 64)),
    "LC2": _solve_config("LC2", *TABLE_IV_TARGETS["LC2"],
                         num_tables=48, embedding_dim=64, pooling=8,
                         dense_features=128, bottom_hidden=(128,),
                         top_tail=(128,), interaction_group=8),
    # Medium complexity: the ~750-layer / ~550-EB shape of Table III.
    "MC1": _solve_config("MC1", *TABLE_IV_TARGETS["MC1"],
                         num_tables=550, embedding_dim=64, pooling=12,
                         dense_features=512, bottom_hidden=(512, 256),
                         top_tail=(512, 256), interaction_group=16,
                         num_towers=24, tower_mlp=(192, 96),
                         layout_ops=True, tower_residual=True),
    "MC2": _solve_config("MC2", *TABLE_IV_TARGETS["MC2"],
                         num_tables=600, embedding_dim=96, pooling=14,
                         dense_features=512, bottom_hidden=(512, 256),
                         top_tail=(512, 256), interaction_group=16,
                         num_towers=24, tower_mlp=(224, 112),
                         layout_ops=True, tower_residual=True),
    # High complexity: the 725 GB giant with big-shape FCs where the
    # GPU stack is better optimised (Section 6.2).
    "HC": _solve_config("HC", *TABLE_IV_TARGETS["HC"],
                        num_tables=800, embedding_dim=192, pooling=20,
                        dense_features=1024, bottom_hidden=(1024, 512),
                        top_tail=(1024, 512), interaction_group=32,
                        num_towers=16, tower_mlp=(512, 256),
                        layout_ops=True, tower_residual=True),
}


def table_iv_rows() -> Dict[str, Dict[str, float]]:
    """Regenerate Table IV from the model zoo."""
    rows = {}
    for name, cfg in MODEL_ZOO.items():
        rows[name] = {
            "Size (GB)": model_size_bytes(cfg) / 1e9,
            "Complexity (GFLOPS/batch)": model_flops(cfg) / 1e9,
        }
    return rows
