"""Elementwise kernels: nonlinear functions and binary operations.

The SE's LUT-based approximation path (Section 3.1.4) handles tanh,
sigmoid, exp and friends; binary adds/muls use its FP ALUs.  Figure 13
benchmarks Tanh among the "other operators" with SRAM/DRAM placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.dtypes import FP32, dtype as resolve_dtype
from repro.isa.commands import (DMALoad, DMAStore, ElementwiseCmd, InitCB,
                                NonlinearCmd)
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier

CB_IN, CB_IN2, CB_OUT = 0, 1, 2


@dataclass
class ElementwiseResult:
    output: np.ndarray
    cycles: float
    moved_bytes: int

    def gbs(self, frequency_ghz: float) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.moved_bytes * frequency_ghz / self.cycles


def _nonlinear_program(ctx, tile_ids: Sequence[int], count: int,
                       tile_elems: int, func: str, in_addr: int,
                       out_addr: int, barrier: Barrier) -> Generator:
    in_tile = tile_elems * 4
    out_tile = tile_elems * 4
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * in_tile))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=2 * in_tile,
                                size=2 * out_tile))
    yield from ctx.drain()
    yield from barrier.wait()
    for t in tile_ids:
        elems = min(tile_elems, count - t * tile_elems)
        yield from ctx.issue(DMALoad(addr=in_addr + t * in_tile,
                                     row_bytes=elems * 4, cb_id=CB_IN))
        yield from ctx.issue(NonlinearCmd(func=func, src_cb=CB_IN,
                                          dst_cb=CB_OUT, count=elems,
                                          src_dtype=FP32))
        yield from ctx.issue(DMAStore(addr=out_addr + t * out_tile,
                                      row_bytes=elems * 4, cb_id=CB_OUT))
    yield from ctx.drain()


def run_nonlinear(acc: Accelerator, values: Optional[np.ndarray] = None, *,
                  count: Optional[int] = None, func: str = "tanh",
                  tile_elems: int = 4096,
                  subgrid: Optional[SubGrid] = None,
                  in_sram: bool = False, seed: int = 0) -> ElementwiseResult:
    """Apply a nonlinear function elementwise over a flat FP32 array."""
    rng = np.random.default_rng(seed)
    if values is None:
        values = (rng.standard_normal(count) * 2).astype(np.float32)
    count = values.size
    alloc = acc.alloc_sram if in_sram else acc.alloc_dram
    in_addr = alloc(values.nbytes)
    acc.memory.poke(in_addr, np.ascontiguousarray(values))
    out_addr = alloc(count * 4)

    if subgrid is None:
        subgrid = acc.subgrid()
    num_tiles = (count + tile_elems - 1) // tile_elems
    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for t in range(num_tiles):
        assignments[t % len(pes)].append(t)
    active = [(pe, ts) for pe, ts in zip(pes, assignments) if ts]
    barrier = acc.barrier(len(active), f"{func}.start")
    start = acc.engine.now
    for pe, ts in active:
        acc.launch(_nonlinear_program, pe.cores[0], ts, count, tile_elems,
                   func, in_addr, out_addr, barrier, name=f"{func}{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (count,), np.float32)
    return ElementwiseResult(output=output, cycles=acc.engine.now - start,
                             moved_bytes=count * 8)


def _binary_program(ctx, tile_ids: Sequence[int], count: int,
                    tile_elems: int, op: str, elem_bytes: int, dtype,
                    a_addr: int, b_addr: int, out_addr: int,
                    barrier: Barrier) -> Generator:
    tile_bytes = tile_elems * elem_bytes
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * tile_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_IN2, base=2 * tile_bytes,
                                size=2 * tile_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=4 * tile_bytes,
                                size=2 * tile_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    for t in tile_ids:
        elems = min(tile_elems, count - t * tile_elems)
        nbytes = elems * elem_bytes
        yield from ctx.issue(DMALoad(addr=a_addr + t * tile_bytes,
                                     row_bytes=nbytes, cb_id=CB_IN))
        yield from ctx.issue(DMALoad(addr=b_addr + t * tile_bytes,
                                     row_bytes=nbytes, cb_id=CB_IN2))
        yield from ctx.issue(ElementwiseCmd(op=op, src_cb_a=CB_IN,
                                            src_cb_b=CB_IN2, dst_cb=CB_OUT,
                                            count=elems, dtype=dtype))
        yield from ctx.issue(DMAStore(addr=out_addr + t * tile_bytes,
                                      row_bytes=nbytes, cb_id=CB_OUT))
    yield from ctx.drain()


def run_binary(acc: Accelerator, a: Optional[np.ndarray] = None,
               b: Optional[np.ndarray] = None, *,
               count: Optional[int] = None, op: str = "add",
               dtype="fp32", tile_elems: int = 4096,
               subgrid: Optional[SubGrid] = None,
               in_sram: bool = False, seed: int = 0) -> ElementwiseResult:
    """Binary elementwise op over two flat arrays."""
    dtype = resolve_dtype(dtype)
    rng = np.random.default_rng(seed)
    if a is None:
        if dtype.name == "int8":
            a = rng.integers(-64, 64, count, dtype=np.int8)
            b = rng.integers(-64, 64, count, dtype=np.int8)
        else:
            a = rng.standard_normal(count).astype(dtype.numpy_dtype)
            b = rng.standard_normal(count).astype(dtype.numpy_dtype)
    count = a.size
    elem = a.dtype.itemsize
    alloc = acc.alloc_sram if in_sram else acc.alloc_dram
    a_addr = alloc(a.nbytes)
    acc.memory.poke(a_addr, np.ascontiguousarray(a))
    b_addr = alloc(b.nbytes)
    acc.memory.poke(b_addr, np.ascontiguousarray(b))
    out_addr = alloc(a.nbytes)

    if subgrid is None:
        subgrid = acc.subgrid()
    num_tiles = (count + tile_elems - 1) // tile_elems
    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for t in range(num_tiles):
        assignments[t % len(pes)].append(t)
    active = [(pe, ts) for pe, ts in zip(pes, assignments) if ts]
    barrier = acc.barrier(len(active), f"{op}.start")
    start = acc.engine.now
    for pe, ts in active:
        acc.launch(_binary_program, pe.cores[0], ts, count, tile_elems, op,
                   elem, dtype, a_addr, b_addr, out_addr, barrier,
                   name=f"{op}{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (count,), a.dtype)
    return ElementwiseResult(output=output, cycles=acc.engine.now - start,
                             moved_bytes=count * 3 * elem)
