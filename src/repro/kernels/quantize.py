"""Quantize / Dequantize kernels (SIMD Engine operators).

INT8 model execution brackets every quantised region with quantize and
dequantize layers (Section 6.1, "Dense computation"); Table III shows
them at a combined ~4-9 % of DLRM time.  Elements stream through the
SE in tiles with DMA on both sides; tiles are distributed over the
sub-grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.isa.commands import DMALoad, DMAStore, InitCB, QuantizeCmd
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.dtypes import FP32, INT8

CB_IN, CB_OUT = 0, 1


@dataclass
class QuantizeResult:
    output: np.ndarray
    cycles: float
    moved_bytes: int

    def gbs(self, frequency_ghz: float) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.moved_bytes * frequency_ghz / self.cycles


def _program(ctx, tile_ids: Sequence[int], count: int, tile_elems: int,
             direction: str, scale: float, in_addr: int, out_addr: int,
             barrier: Barrier) -> Generator:
    in_elem = 4 if direction == "quantize" else 1
    out_elem = 1 if direction == "quantize" else 4
    in_tile = tile_elems * in_elem
    out_tile = tile_elems * out_elem
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * in_tile))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=2 * in_tile,
                                size=2 * out_tile))
    yield from ctx.drain()
    yield from barrier.wait()
    for t in tile_ids:
        elems = min(tile_elems, count - t * tile_elems)
        yield from ctx.issue(DMALoad(addr=in_addr + t * in_tile,
                                     row_bytes=elems * in_elem, cb_id=CB_IN))
        yield from ctx.issue(QuantizeCmd(
            src_cb=CB_IN, dst_cb=CB_OUT, count=elems, scale=scale,
            direction=direction,
            src_dtype=FP32 if direction == "quantize" else INT8,
            dst_dtype=INT8 if direction == "quantize" else FP32))
        yield from ctx.issue(DMAStore(addr=out_addr + t * out_tile,
                                      row_bytes=elems * out_elem,
                                      cb_id=CB_OUT))
    yield from ctx.drain()


def run_quantize(acc: Accelerator, values: Optional[np.ndarray] = None, *,
                 count: Optional[int] = None, direction: str = "quantize",
                 scale: float = 0.05, tile_elems: int = 4096,
                 subgrid: Optional[SubGrid] = None,
                 in_sram: bool = False, seed: int = 0) -> QuantizeResult:
    """Quantize FP32 -> INT8 (or dequantize INT8 -> FP32) a flat array."""
    rng = np.random.default_rng(seed)
    if values is None:
        if direction == "quantize":
            values = rng.standard_normal(count).astype(np.float32)
        else:
            values = rng.integers(-128, 128, count, dtype=np.int8)
    count = values.size
    in_elem = values.dtype.itemsize
    out_elem = 1 if direction == "quantize" else 4
    alloc = acc.alloc_sram if in_sram else acc.alloc_dram
    in_addr = alloc(values.nbytes)
    acc.memory.poke(in_addr, np.ascontiguousarray(values))
    out_addr = alloc(count * out_elem)

    if subgrid is None:
        subgrid = acc.subgrid()
    num_tiles = (count + tile_elems - 1) // tile_elems
    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for t in range(num_tiles):
        assignments[t % len(pes)].append(t)
    active = [(pe, ts) for pe, ts in zip(pes, assignments) if ts]
    barrier = acc.barrier(len(active), "quantize.start")
    start = acc.engine.now
    for pe, ts in active:
        acc.launch(_program, pe.cores[0], ts, count, tile_elems, direction,
                   scale, in_addr, out_addr, barrier,
                   name=f"quant{pe.coord}")
    acc.run()
    out_dtype = np.int8 if direction == "quantize" else np.float32
    output = acc.download(out_addr, (count,), out_dtype)
    return QuantizeResult(output=output, cycles=acc.engine.now - start,
                          moved_bytes=count * (in_elem + out_elem))
