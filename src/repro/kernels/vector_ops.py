"""Vector-core kernels: LayerNorm and BatchedReduceAdd.

Section 7 ("General-Purpose Compute"): operators that arrived after the
architecture was defined have no fixed-function support; the RISC-V
vector extension on core 1 implements them, "and these implementations
proved superior to versions using scalar cores and fixed function
units".  These kernels therefore run entirely on core 1's vector unit,
with DMA staging through circular buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.isa.commands import DMALoad, DMAStore, InitCB, PushCB
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier

CB_IN, CB_OUT = 0, 1


@dataclass
class VectorOpResult:
    output: np.ndarray
    cycles: float
    moved_bytes: int

    def gbs(self, frequency_ghz: float) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.moved_bytes * frequency_ghz / self.cycles


def _layernorm_program(ctx, row_ids: Sequence[int], dim: int, eps: float,
                       in_addr: int, out_addr: int,
                       barrier: Barrier) -> Generator:
    pe = ctx.pe
    row_bytes = dim * 4
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * row_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=2 * row_bytes,
                                size=2 * row_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    in_cb, out_cb = pe.cb(CB_IN), pe.cb(CB_OUT)
    for row in row_ids:
        yield from ctx.issue(DMALoad(addr=in_addr + row * row_bytes,
                                     row_bytes=row_bytes, cb_id=CB_IN))
        yield in_cb.wait_elements(row_bytes)
        yield out_cb.wait_space(row_bytes)
        yield from ctx.vector.layernorm(in_cb.base + in_cb.read_ptr, dim,
                                        out_cb.base + out_cb.write_ptr,
                                        eps=eps)
        in_cb.pop(row_bytes)
        yield from ctx.issue_and_wait(PushCB(cb_id=CB_OUT, nbytes=row_bytes))
        yield from ctx.issue(DMAStore(addr=out_addr + row * row_bytes,
                                      row_bytes=row_bytes, cb_id=CB_OUT))
    yield from ctx.drain()


def run_layernorm(acc: Accelerator, values: Optional[np.ndarray] = None, *,
                  batch: Optional[int] = None, dim: Optional[int] = None,
                  eps: float = 1e-5, subgrid: Optional[SubGrid] = None,
                  seed: int = 0) -> VectorOpResult:
    """Row-wise LayerNorm of a (batch, dim) FP32 array on the vector cores."""
    rng = np.random.default_rng(seed)
    if values is None:
        values = rng.standard_normal((batch, dim)).astype(np.float32)
    batch, dim = values.shape
    in_addr = acc.upload(np.ascontiguousarray(values))
    out_addr = acc.alloc_dram(values.nbytes)

    if subgrid is None:
        subgrid = acc.subgrid()
    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for row in range(batch):
        assignments[row % len(pes)].append(row)
    active = [(pe, rs) for pe, rs in zip(pes, assignments) if rs]
    barrier = acc.barrier(len(active), "layernorm.start")
    start = acc.engine.now
    for pe, rs in active:
        # Core 1 carries the vector extension (Section 3.2).
        acc.launch(_layernorm_program, pe.cores[1], rs, dim, eps, in_addr,
                   out_addr, barrier, name=f"ln{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (batch, dim), np.float32)
    return VectorOpResult(output=output, cycles=acc.engine.now - start,
                          moved_bytes=2 * values.nbytes)


def layernorm_reference(values: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    x = values.astype(np.float64)
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1, keepdims=True)
    return ((x - mean) / np.sqrt(var + eps)).astype(np.float32)


def _softmax_program(ctx, row_ids, dim: int, in_addr: int, out_addr: int,
                     barrier: Barrier) -> Generator:
    """Softmax rows via the SE's exp LUT plus vector normalisation.

    A genuinely cross-unit pipeline: the DMA engines stage the row, the
    SIMD Engine applies the exponential through its lookup table
    (Section 3.1.4), and the vector core reduces and rescales — the
    kind of operator composition the PE's coarse-grained pipeline
    (Section 3.1) was designed for.
    """
    from repro.isa.commands import NonlinearCmd
    from repro.dtypes import FP32

    pe = ctx.pe
    row_bytes = dim * 4
    CB_EXP = 2
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * row_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_EXP, base=2 * row_bytes,
                                size=2 * row_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=4 * row_bytes,
                                size=2 * row_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    exp_cb, out_cb = pe.cb(CB_EXP), pe.cb(CB_OUT)
    for row in row_ids:
        yield from ctx.issue(DMALoad(addr=in_addr + row * row_bytes,
                                     row_bytes=row_bytes, cb_id=CB_IN))
        yield from ctx.issue_and_wait(NonlinearCmd(
            func="exp", src_cb=CB_IN, dst_cb=CB_EXP, count=dim,
            src_dtype=FP32))
        yield exp_cb.wait_elements(row_bytes)
        yield out_cb.wait_space(row_bytes)
        exp_addr = exp_cb.base + exp_cb.read_ptr
        total = yield from ctx.vector.reduce_add(exp_addr, dim)
        yield from ctx.vector.scale(exp_addr,
                                    out_cb.base + out_cb.write_ptr,
                                    dim, 1.0 / total)
        exp_cb.pop(row_bytes)
        yield from ctx.issue_and_wait(PushCB(cb_id=CB_OUT,
                                             nbytes=row_bytes))
        yield from ctx.issue(DMAStore(addr=out_addr + row * row_bytes,
                                      row_bytes=row_bytes, cb_id=CB_OUT))
    yield from ctx.drain()


def run_softmax(acc: Accelerator, values: Optional[np.ndarray] = None, *,
                batch: Optional[int] = None, dim: Optional[int] = None,
                subgrid: Optional[SubGrid] = None,
                seed: int = 0) -> VectorOpResult:
    """Row-wise softmax of a (batch, dim) FP32 array.

    Inputs are shifted by the row max on the host (standard numerical
    hygiene) so the SE's bounded LUT domain is respected.
    """
    rng = np.random.default_rng(seed)
    if values is None:
        values = rng.standard_normal((batch, dim)).astype(np.float32)
    batch, dim = values.shape
    shifted = values - values.max(axis=1, keepdims=True)
    in_addr = acc.upload(np.ascontiguousarray(shifted.astype(np.float32)))
    out_addr = acc.alloc_dram(values.nbytes)

    if subgrid is None:
        subgrid = acc.subgrid()
    pes = list(subgrid)
    assignments = [[] for _ in pes]
    for row in range(batch):
        assignments[row % len(pes)].append(row)
    active = [(pe, rs) for pe, rs in zip(pes, assignments) if rs]
    barrier = acc.barrier(len(active), "softmax.start")
    start = acc.engine.now
    for pe, rs in active:
        acc.launch(_softmax_program, pe.cores[1], rs, dim, in_addr,
                   out_addr, barrier, name=f"softmax{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (batch, dim), np.float32)
    return VectorOpResult(output=output, cycles=acc.engine.now - start,
                          moved_bytes=2 * values.nbytes)


def _reduce_add_program(ctx, col0: int, cols: int, rows: int,
                        total_cols: int, in_addr: int, out_addr: int,
                        barrier: Barrier) -> Generator:
    pe = ctx.pe
    slice_bytes = cols * 4
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=4 * slice_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=4 * slice_bytes,
                                size=2 * slice_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    in_cb, out_cb = pe.cb(CB_IN), pe.cb(CB_OUT)
    yield out_cb.wait_space(slice_bytes)
    acc_addr = out_cb.base + out_cb.write_ptr
    yield from ctx.vector.fill(acc_addr, cols, 0.0)
    for row in range(rows):
        yield from ctx.issue(DMALoad(
            addr=in_addr + (row * total_cols + col0) * 4,
            row_bytes=slice_bytes, cb_id=CB_IN))
        yield in_cb.wait_elements(slice_bytes)
        yield from ctx.vector.binary_op(
            "add", in_cb.base + in_cb.read_ptr, acc_addr, acc_addr, cols)
        in_cb.pop(slice_bytes)
    yield from ctx.issue_and_wait(PushCB(cb_id=CB_OUT, nbytes=slice_bytes))
    yield from ctx.issue(DMAStore(addr=out_addr + col0 * 4,
                                  row_bytes=slice_bytes, cb_id=CB_OUT))
    yield from ctx.drain()


def run_batched_reduce_add(acc: Accelerator,
                           values: Optional[np.ndarray] = None, *,
                           rows: Optional[int] = None,
                           cols: Optional[int] = None,
                           subgrid: Optional[SubGrid] = None,
                           seed: int = 0) -> VectorOpResult:
    """Column-wise sum of a (rows, cols) FP32 array on the vector cores.

    Columns are partitioned over the sub-grid; each PE streams its
    column slice through an FP32 accumulator.
    """
    rng = np.random.default_rng(seed)
    if values is None:
        values = rng.standard_normal((rows, cols)).astype(np.float32)
    rows, cols = values.shape
    in_addr = acc.upload(np.ascontiguousarray(values))
    out_addr = acc.alloc_dram(cols * 4)

    if subgrid is None:
        subgrid = acc.subgrid()
    pes = list(subgrid)
    num = min(len(pes), cols)
    per = (cols + num - 1) // num
    slices = [(c0, min(per, cols - c0)) for c0 in range(0, cols, per)]
    barrier = acc.barrier(len(slices), "bra.start")
    start = acc.engine.now
    for pe, (c0, width) in zip(pes, slices):
        acc.launch(_reduce_add_program, pe.cores[1], c0, width, rows, cols,
                   in_addr, out_addr, barrier, name=f"bra{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (cols,), np.float32)
    return VectorOpResult(output=output, cycles=acc.engine.now - start,
                          moved_bytes=values.nbytes + cols * 4)
