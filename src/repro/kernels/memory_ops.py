"""Transpose and Concat kernels (Memory Layout Unit operators).

Table III shows Transpose and Concat at a combined ~11-17 % of DLRM
execution time; Figure 13 benchmarks them with data placed in SRAM and
in DRAM.  Both are pure data-movement operators: tiles/rows stream
through a PE's MLU with DMA on either side, and tiles are distributed
over the sub-grid round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import DType, dtype as resolve_dtype
from repro.isa.commands import ConcatCmd, DMALoad, DMAStore, InitCB, TransposeCmd
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.sim import SimulationError

CB_IN, CB_IN2, CB_OUT = 0, 1, 2


@dataclass
class MemOpResult:
    output: np.ndarray
    cycles: float
    moved_bytes: int

    def gbs(self, frequency_ghz: float) -> float:
        """Achieved (read + write) bandwidth in GB/s."""
        if self.cycles <= 0:
            return 0.0
        return 2 * self.moved_bytes * frequency_ghz / self.cycles


# ---------------------------------------------------------------------------
# Transpose
# ---------------------------------------------------------------------------

def _transpose_program(ctx, tiles: Sequence[Tuple[int, int]],
                       rows: int, cols: int, tile: int, elem_bytes: int,
                       dtype: DType, in_addr: int, out_addr: int,
                       barrier: Barrier) -> Generator:
    tile_bytes = tile * tile * elem_bytes
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * tile_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=2 * tile_bytes,
                                size=2 * tile_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    for r0, c0 in tiles:
        yield from ctx.issue(DMALoad(
            addr=in_addr + (r0 * cols + c0) * elem_bytes,
            rows=tile, row_bytes=tile * elem_bytes, stride=cols * elem_bytes,
            cb_id=CB_IN))
        yield from ctx.issue(TransposeCmd(
            src_cb=CB_IN, dst_cb=CB_OUT, rows=tile, cols=tile,
            dtype=dtype, pop_input=True))
        yield from ctx.issue(DMAStore(
            addr=out_addr + (c0 * rows + r0) * elem_bytes,
            rows=tile, row_bytes=tile * elem_bytes, stride=rows * elem_bytes,
            cb_id=CB_OUT))
    yield from ctx.drain()


def run_transpose(acc: Accelerator, array: Optional[np.ndarray] = None, *,
                  rows: Optional[int] = None, cols: Optional[int] = None,
                  dtype="int8", tile: int = 32,
                  subgrid: Optional[SubGrid] = None,
                  in_sram: bool = False, seed: int = 0) -> MemOpResult:
    """Transpose a (rows, cols) matrix on the grid; returns (cols, rows).

    ``in_sram`` places input and output in the on-chip scratchpad
    (requires the accelerator to be built with scratchpad mode) —
    the Figure 13 SRAM-vs-DRAM comparison.
    """
    dtype = resolve_dtype(dtype)
    if array is None:
        rng = np.random.default_rng(seed)
        info = np.iinfo(np.int8) if dtype.name == "int8" else None
        if info:
            array = rng.integers(info.min, info.max + 1, (rows, cols),
                                 dtype=np.int8)
        else:
            array = rng.standard_normal((rows, cols)).astype(dtype.numpy_dtype)
    rows, cols = array.shape
    if rows % tile or cols % tile:
        raise SimulationError(f"{rows}x{cols} must tile by {tile}")
    elem = array.dtype.itemsize
    alloc = acc.alloc_sram if in_sram else acc.alloc_dram
    in_addr = alloc(array.nbytes)
    acc.memory.poke(in_addr, np.ascontiguousarray(array))
    out_addr = alloc(array.nbytes)

    if subgrid is None:
        subgrid = acc.subgrid()
    tiles = [(r0, c0) for r0 in range(0, rows, tile)
             for c0 in range(0, cols, tile)]
    pes = list(subgrid)
    assignments: List[List[Tuple[int, int]]] = [[] for _ in pes]
    for i, t in enumerate(tiles):
        assignments[i % len(pes)].append(t)
    active = [(pe, ts) for pe, ts in zip(pes, assignments) if ts]
    barrier = acc.barrier(len(active), "transpose.start")
    start = acc.engine.now
    for pe, ts in active:
        acc.launch(_transpose_program, pe.cores[0], ts, rows, cols, tile,
                   elem, dtype, in_addr, out_addr, barrier,
                   name=f"transpose{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (cols, rows), array.dtype)
    return MemOpResult(output=output, cycles=acc.engine.now - start,
                       moved_bytes=array.nbytes)


# ---------------------------------------------------------------------------
# Concat
# ---------------------------------------------------------------------------

def _concat_program(ctx, row_ids: Sequence[int], cols_a: int, cols_b: int,
                    elem_bytes: int, a_addr: int, b_addr: int, out_addr: int,
                    barrier: Barrier) -> Generator:
    a_bytes = cols_a * elem_bytes
    b_bytes = cols_b * elem_bytes
    out_bytes = a_bytes + b_bytes
    yield from ctx.issue(InitCB(cb_id=CB_IN, base=0, size=2 * a_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_IN2, base=2 * a_bytes,
                                size=2 * b_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=2 * (a_bytes + b_bytes),
                                size=2 * out_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    for row in row_ids:
        yield from ctx.issue(DMALoad(addr=a_addr + row * a_bytes,
                                     row_bytes=a_bytes, cb_id=CB_IN))
        yield from ctx.issue(DMALoad(addr=b_addr + row * b_bytes,
                                     row_bytes=b_bytes, cb_id=CB_IN2))
        yield from ctx.issue(ConcatCmd(src_cbs=(CB_IN, CB_IN2),
                                       src_nbytes=(a_bytes, b_bytes),
                                       dst_cb=CB_OUT))
        yield from ctx.issue(DMAStore(addr=out_addr + row * out_bytes,
                                      row_bytes=out_bytes, cb_id=CB_OUT))
    yield from ctx.drain()


def run_concat(acc: Accelerator, a: Optional[np.ndarray] = None,
               b: Optional[np.ndarray] = None, *,
               rows: Optional[int] = None, cols_a: Optional[int] = None,
               cols_b: Optional[int] = None, dtype="int8",
               subgrid: Optional[SubGrid] = None,
               in_sram: bool = False, seed: int = 0) -> MemOpResult:
    """Concatenate two (rows, cols) matrices along axis 1."""
    dtype = resolve_dtype(dtype)
    rng = np.random.default_rng(seed)
    if a is None:
        if dtype.name == "int8":
            a = rng.integers(-128, 128, (rows, cols_a), dtype=np.int8)
            b = rng.integers(-128, 128, (rows, cols_b), dtype=np.int8)
        else:
            a = rng.standard_normal((rows, cols_a)).astype(dtype.numpy_dtype)
            b = rng.standard_normal((rows, cols_b)).astype(dtype.numpy_dtype)
    rows = a.shape[0]
    cols_a, cols_b = a.shape[1], b.shape[1]
    if b.shape[0] != rows:
        raise SimulationError("concat inputs must share the row count")
    elem = a.dtype.itemsize
    alloc = acc.alloc_sram if in_sram else acc.alloc_dram
    a_addr = alloc(a.nbytes)
    acc.memory.poke(a_addr, np.ascontiguousarray(a))
    b_addr = alloc(b.nbytes)
    acc.memory.poke(b_addr, np.ascontiguousarray(b))
    out_addr = alloc(a.nbytes + b.nbytes)

    if subgrid is None:
        subgrid = acc.subgrid()
    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for row in range(rows):
        assignments[row % len(pes)].append(row)
    active = [(pe, rs) for pe, rs in zip(pes, assignments) if rs]
    barrier = acc.barrier(len(active), "concat.start")
    start = acc.engine.now
    for pe, rs in active:
        acc.launch(_concat_program, pe.cores[0], rs, cols_a, cols_b, elem,
                   a_addr, b_addr, out_addr, barrier,
                   name=f"concat{pe.coord}")
    acc.run()
    output = acc.download(out_addr, (rows, cols_a + cols_b), a.dtype)
    return MemOpResult(output=output, cycles=acc.engine.now - start,
                       moved_bytes=a.nbytes + b.nbytes)
