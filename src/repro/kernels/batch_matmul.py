"""BatchMatMul kernel: many small independent GEMMs.

DLRMs use batched matrix multiplies in their feature-interaction layers
(Table III shows BatchMatMul at a few percent of execution time).
Unlike the Section 4 FC mapping, each matmul here is small enough to
live entirely inside one PE, so batches are simply distributed over the
sub-grid (thread-level parallelism) and each PE runs a local
producer/consumer pipeline: DMA the operand blocks in, MML with RE-bank
accumulation over ``k``, reduce each 32x32 output block to local
memory, and DMA it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.dtypes import DType, dtype as resolve_dtype
from repro.isa.commands import (DMALoad, DMAStore, InitAccumulators, InitCB,
                                MML, PopCB, Reduce)
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.sim import SimulationError

CB_A, CB_B, CB_C = 0, 1, 2
BLOCK = 32


@dataclass
class BMMConfig:
    """One batched matmul: ``batch`` independent (m, k) x (k, n) GEMMs."""

    batch: int
    m: int
    k: int
    n: int
    dtype: DType = None  # set in __post_init__

    def __post_init__(self):
        self.dtype = resolve_dtype(self.dtype or "int8")
        for name, dim in (("m", self.m), ("k", self.k), ("n", self.n)):
            if dim % BLOCK:
                raise SimulationError(
                    f"BMM {name}={dim} must be a multiple of {BLOCK} "
                    "(pad on the host)")

    @property
    def macs_per_batch(self) -> int:
        return self.m * self.k * self.n

    @property
    def total_macs(self) -> int:
        return self.batch * self.macs_per_batch


@dataclass
class BMMResult:
    output: np.ndarray      #: (batch, n, m) C^T blocks, INT32/FP32
    cycles: float
    config: BMMConfig

    def tops(self, frequency_ghz: float) -> float:
        if self.cycles <= 0:
            return 0.0
        return 2 * self.config.total_macs * frequency_ghz / self.cycles / 1e3


def _program(ctx, batches: Sequence[int], config: BMMConfig, a_addr: int,
             bt_addr: int, c_addr: int, barrier: Barrier) -> Generator:
    """Single-core program: stream one batch at a time through the DPE."""
    elem = config.dtype.bytes
    m, k, n = config.m, config.k, config.n
    mb, kb, nb = m // BLOCK, k // BLOCK, n // BLOCK
    block_bytes = BLOCK * BLOCK * elem
    a_bytes = m * k * elem
    b_bytes = n * k * elem
    out_block = BLOCK * BLOCK * 4
    yield from ctx.issue(InitCB(cb_id=CB_A, base=0, size=a_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_B, base=a_bytes, size=b_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_C, base=a_bytes + b_bytes,
                                size=2 * out_block))
    yield from ctx.drain()
    yield from barrier.wait()

    for batch in batches:
        # Load operands in 32x32 blocks so MML offsets are contiguous.
        for mi in range(mb):
            for ki in range(kb):
                yield from ctx.issue(DMALoad(
                    addr=a_addr + batch * a_bytes
                    + (mi * BLOCK * k + ki * BLOCK) * elem,
                    rows=BLOCK, row_bytes=BLOCK * elem, stride=k * elem,
                    cb_id=CB_A))
        for ni in range(nb):
            for ki in range(kb):
                yield from ctx.issue(DMALoad(
                    addr=bt_addr + batch * b_bytes
                    + (ni * BLOCK * k + ki * BLOCK) * elem,
                    rows=BLOCK, row_bytes=BLOCK * elem, stride=k * elem,
                    cb_id=CB_B))
        bank = 0
        for ni in range(nb):
            for mi in range(mb):
                yield from ctx.issue(InitAccumulators(banks=(bank,)))
                for ki in range(kb):
                    yield from ctx.issue(MML(
                        acc=bank, m=BLOCK, k=BLOCK, n=BLOCK,
                        cb_b=CB_B, cb_a=CB_A,
                        offset_b=(ni * kb + ki) * block_bytes,
                        offset_a=(mi * kb + ki) * block_bytes,
                        dtype=config.dtype))
                yield from ctx.issue(Reduce(banks_layout=((bank,),),
                                            dest_cb=CB_C))
                yield from ctx.issue(DMAStore(
                    addr=c_addr + (batch * n * m
                                   + ni * BLOCK * m + mi * BLOCK) * 4,
                    rows=BLOCK, row_bytes=BLOCK * 4, stride=m * 4,
                    cb_id=CB_C))
                bank = (bank + 1) % 4
        yield from ctx.issue(PopCB(cb_id=CB_A, nbytes=a_bytes))
        yield from ctx.issue(PopCB(cb_id=CB_B, nbytes=b_bytes))
    yield from ctx.drain()


def run_bmm(acc: Accelerator, config: BMMConfig,
            a: Optional[np.ndarray] = None,
            b_t: Optional[np.ndarray] = None,
            subgrid: Optional[SubGrid] = None,
            seed: int = 0) -> BMMResult:
    """Run a batched matmul; returns (batch, n, m) results + cycles.

    ``a`` has shape (batch, m, k) and ``b_t`` (batch, n, k); random
    operands are generated when omitted.
    """
    rng = np.random.default_rng(seed)
    if a is None:
        if config.dtype.name == "int8":
            a = rng.integers(-128, 128, (config.batch, config.m, config.k),
                             dtype=np.int8)
            b_t = rng.integers(-128, 128, (config.batch, config.n, config.k),
                               dtype=np.int8)
        else:
            a = rng.standard_normal(
                (config.batch, config.m, config.k)).astype(
                    config.dtype.numpy_dtype)
            b_t = rng.standard_normal(
                (config.batch, config.n, config.k)).astype(
                    config.dtype.numpy_dtype)
    if subgrid is None:
        subgrid = acc.subgrid()
    elem = config.dtype.bytes
    need = (config.m * config.k + config.n * config.k) * elem + 2 * 32 * 32 * 4
    if need > acc.config.local_memory.capacity_bytes:
        raise SimulationError(
            f"BMM operands need {need} B of local memory; tile the batch")

    a_addr = acc.upload(np.ascontiguousarray(a))
    bt_addr = acc.upload(np.ascontiguousarray(b_t))
    c_addr = acc.alloc_dram(config.batch * config.n * config.m * 4)

    pes = list(subgrid)
    assignments: List[List[int]] = [[] for _ in pes]
    for batch in range(config.batch):
        assignments[batch % len(pes)].append(batch)
    active = [(pe, b) for pe, b in zip(pes, assignments) if b]
    barrier = acc.barrier(len(active), "bmm.start")
    start = acc.engine.now
    for pe, batches in active:
        acc.launch(_program, pe.cores[0], batches, config, a_addr, bt_addr,
                   c_addr, barrier, name=f"bmm{pe.coord}")
    acc.run()
    cycles = acc.engine.now - start
    out_np = np.int32 if config.dtype.name == "int8" else np.float32
    output = acc.download(c_addr, (config.batch, config.n, config.m), out_np)
    return BMMResult(output=output, cycles=cycles, config=config)


def bmm_reference(a: np.ndarray, b_t: np.ndarray) -> np.ndarray:
    """Numpy reference: per-batch ``C^T = B^T x A^T``."""
    if np.issubdtype(a.dtype, np.integer):
        return np.einsum("bnk,bmk->bnm", b_t.astype(np.int64),
                         a.astype(np.int64)).astype(np.int32)
    return np.einsum("bnk,bmk->bnm", b_t.astype(np.float32),
                     a.astype(np.float32)).astype(np.float32)
