"""FC without the reduction network: the memory-reduce baseline.

Section 3.5 argues the dedicated reduction network "not only offloads a
large part of data transfer from the system's main on-chip network" but
also avoids saving/restoring partial sums in memory.  This module
implements the architecture-ablation counterfactual: the same Figure 7
work distribution, but every PE in a k-chain writes its INT32 partial
blocks to a DRAM scratch region, and a second phase re-loads and
accumulates them with SE elementwise adds.

``run_fc_memory_reduce`` is drop-in comparable with
:func:`repro.kernels.fc.run_fc` (same operands, bit-exact result), so
benchmarks can compare cycles, NoC traffic, and modelled energy.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.dtypes import INT32
from repro.isa.commands import (DMALoad, DMAStore, ElementwiseCmd,
                                InitAccumulators, InitCB, MML, PopCB, Reduce)
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.kernels.fc import (CB_A, CB_B, CB_C, FCPlan, FCResult, PEWork,
                              TILE_K, TILE_MN, plan_fc, producer_program)

#: CB ids for the accumulation phase.
CB_P0, CB_P1, CB_OUT = 3, 4, 5

BLOCK_ELEMS = TILE_MN * TILE_MN          # one 64x64 output block
BLOCK_BYTES = BLOCK_ELEMS * 4


def _partial_addr(scratch: int, plan: FCPlan, work: PEWork,
                  m: int, n: int) -> int:
    """Scratch address of one PE's partial for output block (m, n)."""
    blocks_m = plan.m // TILE_MN
    blocks_n = plan.n // TILE_MN
    block_index = (n // TILE_MN) * blocks_m + (m // TILE_MN)
    return (scratch
            + (work.chain_index * blocks_m * blocks_n + block_index)
            * BLOCK_BYTES)


def consumer_store_partials(ctx, work: PEWork, plan: FCPlan, addrs,
                            scratch: int, barrier: Barrier) -> Generator:
    """Phase 1 consumer: MML as usual, then spill partials to DRAM."""
    elem = plan.dtype.bytes
    block = TILE_K * 32 * elem
    yield from barrier.wait()
    for m in range(work.m_begin, work.m_end, TILE_MN):
        off_b = 0
        for n in range(work.n_begin, work.n_end, TILE_MN):
            off_a = 0
            yield from ctx.issue(InitAccumulators(banks=(0, 1, 2, 3)))
            last_m = m + TILE_MN >= work.m_end
            last_n = n + TILE_MN >= work.n_end
            for k in range(work.k_begin, work.k_end, TILE_K):
                for acc, (db, da) in enumerate(
                        ((0, 0), (0, block), (block, 0), (block, block))):
                    yield from ctx.issue(MML(
                        acc=acc, m=32, k=TILE_K, n=32,
                        cb_b=CB_B, cb_a=CB_A,
                        offset_b=off_b + db, offset_a=off_a + da,
                        dtype=plan.dtype))
                if last_m:
                    yield from ctx.issue(PopCB(cb_id=CB_B, nbytes=2 * block))
                else:
                    off_b += 2 * block
                if last_n:
                    yield from ctx.issue(PopCB(cb_id=CB_A, nbytes=2 * block))
                else:
                    off_a += 2 * block
            # Spill this PE's partial block instead of forwarding it
            # over the reduction network.
            yield from ctx.issue(Reduce(dest_cb=CB_C))
            yield from ctx.issue(DMAStore(
                addr=_partial_addr(scratch, plan, work, m, n),
                row_bytes=BLOCK_BYTES, cb_id=CB_C))
    yield from ctx.drain()


def accumulate_program(ctx, work: PEWork, plan: FCPlan, addrs,
                       scratch: int, phase_barrier: Barrier) -> Generator:
    """Phase 2: the chain's last PE re-loads and sums the partials.

    Each 64x64 output block costs ``k_split`` loads, ``k_split - 1``
    elementwise adds, and one store — all traffic the reduction network
    version never generates.
    """
    _, _, c_addr = addrs
    yield from phase_barrier.wait()
    if not work.last_in_chain:
        return
    yield from ctx.issue(InitCB(cb_id=CB_P0, base=0, size=2 * BLOCK_BYTES))
    yield from ctx.issue(InitCB(cb_id=CB_P1, base=2 * BLOCK_BYTES,
                                size=2 * BLOCK_BYTES))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=4 * BLOCK_BYTES,
                                size=2 * BLOCK_BYTES))
    yield from ctx.drain()
    for m in range(work.m_begin, work.m_end, TILE_MN):
        for n in range(work.n_begin, work.n_end, TILE_MN):
            peers = []
            for chain_pos in range(work.chain_length):
                peer = PEWork(coord=work.coord, m_begin=0, m_end=0,
                              n_begin=0, n_end=0, k_begin=0, k_end=0,
                              chain_index=chain_pos,
                              chain_length=work.chain_length)
                peers.append(_partial_addr(scratch, plan, peer, m, n))
            if len(peers) == 1:
                yield from ctx.issue(DMALoad(addr=peers[0],
                                             row_bytes=BLOCK_BYTES,
                                             cb_id=CB_OUT))
            else:
                yield from ctx.issue(DMALoad(addr=peers[0],
                                             row_bytes=BLOCK_BYTES,
                                             cb_id=CB_P0))
                for addr in peers[1:]:
                    yield from ctx.issue(DMALoad(addr=addr,
                                                 row_bytes=BLOCK_BYTES,
                                                 cb_id=CB_P1))
                    target = CB_OUT if addr is peers[-1] else CB_P0
                    yield from ctx.issue(ElementwiseCmd(
                        op="add", src_cb_a=CB_P0, src_cb_b=CB_P1,
                        dst_cb=target, count=BLOCK_ELEMS, dtype=INT32))
            yield from ctx.issue(DMAStore(
                addr=c_addr + (n * plan.m + m) * 4,
                rows=TILE_MN, row_bytes=TILE_MN * 4,
                stride=plan.m * 4, cb_id=CB_OUT))
    yield from ctx.drain()


def run_fc_memory_reduce(acc: Accelerator,
                         a: Optional[np.ndarray] = None,
                         b_t: Optional[np.ndarray] = None, *,
                         m: Optional[int] = None, k: Optional[int] = None,
                         n: Optional[int] = None,
                         subgrid: Optional[SubGrid] = None,
                         k_split: Optional[int] = None,
                         seed: int = 0) -> FCResult:
    """The no-reduction-network FC; INT8 only, bit-exact result."""
    rng = np.random.default_rng(seed)
    if a is None:
        if None in (m, k, n):
            raise ValueError("pass operand arrays or all of m, k, n")
        a = rng.integers(-128, 128, size=(m, k), dtype=np.int8)
        b_t = rng.integers(-128, 128, size=(n, k), dtype=np.int8)
    m, k = a.shape
    n = b_t.shape[0]
    if subgrid is None:
        subgrid = acc.subgrid((0, 0), 1, 1)
    plan = plan_fc(subgrid, m, k, n, "int8", k_split=k_split)

    a_addr = acc.upload(np.ascontiguousarray(a))
    bt_addr = acc.upload(np.ascontiguousarray(b_t))
    c_addr = acc.alloc_dram(n * m * 4)
    addrs = (a_addr, bt_addr, c_addr)
    blocks = (plan.m // TILE_MN) * (plan.n // TILE_MN)
    scratch = acc.alloc_dram(plan.k_split * blocks * BLOCK_BYTES)

    start_barrier = acc.barrier(2 * plan.subgrid.num_pes, "fcmr.start")
    # Phase barrier: every PE's phase-1 streams must finish before any
    # accumulation load — without the reduction network the firmware
    # needs this explicit global synchronisation.
    phase_barrier = acc.barrier(2 * plan.subgrid.num_pes, "fcmr.phase")

    def phase1_then_wait(ctx, work):
        yield from producer_program(ctx, work, plan, addrs, start_barrier)
        yield from phase_barrier.wait()

    def consumer_then_accumulate(ctx, work):
        yield from consumer_store_partials(ctx, work, plan, addrs, scratch,
                                           start_barrier)
        yield from accumulate_program(ctx, work, plan, addrs, scratch,
                                      phase_barrier)

    start = acc.engine.now
    for work in plan.work_items:
        pe = acc.grid.pe(*work.coord)
        acc.launch(phase1_then_wait, pe.cores[0], work,
                   name=f"fcmr.prod{work.coord}")
        acc.launch(consumer_then_accumulate, pe.cores[1], work,
                   name=f"fcmr.cons{work.coord}")
    acc.run()
    cycles = acc.engine.now - start

    c_t = acc.download(c_addr, (n, m), np.int32)
    return FCResult(c_t=c_t, cycles=cycles, plan=plan, macs=m * n * k)
