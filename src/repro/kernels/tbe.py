"""EmbeddingBag / TableBatchedEmbedding (TBE) kernel.

A recommendation model's sparse path: for every (table, sample) *bag*,
gather ``pooling_factor`` rows of an embedding table by random index and
reduce them to a single pooled vector (Section 1).  Production models
merge hundreds of EmbeddingBag operators into TBE operators to amortise
launch overheads (Section 6.1, "Sparse computation").

Mapping onto MTIA: bags are distributed round-robin over the PEs of the
sub-grid (thread-level parallelism).  Within a PE the cores split
producer/consumer:

* core 0 issues one DMA load per looked-up row into ``CB_ROWS``;
* core 1 dequantises and accumulates each row onto an FP32 accumulator
  with the vector unit, then pushes the pooled vector through
  ``CB_OUT`` back to DRAM.

``prefetch_rows`` sets the CB_ROWS capacity and therefore how many row
fetches can be in flight — the knob behind the paper's observation that
the production kernel reaches only 10-20 % of DRAM bandwidth ("there
are not enough outstanding requests to hide the latency") while a
hand-tuned kernel with deep pipelining reaches >60 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.commands import DMALoad, DMAStore, InitCB, PushCB
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.sim import SimulationError

CB_ROWS = 0
CB_OUT = 1


@dataclass
class TBEConfig:
    """Shape of one TBE operator (the Figure 12 triplets + batch)."""

    num_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling_factor: int
    batch_size: int
    #: per-table dequantisation scale for the 8-bit rows
    scale: float = 1.0 / 64.0

    @property
    def num_bags(self) -> int:
        return self.num_tables * self.batch_size

    @property
    def total_lookups(self) -> int:
        return self.num_bags * self.pooling_factor

    @property
    def lookup_bytes(self) -> int:
        """Bytes gathered from memory (the Figure 12 GB/s numerator)."""
        return self.total_lookups * self.embedding_dim


@dataclass
class Bag:
    """One pooled lookup: which table, which rows, where the output goes."""

    table: int
    sample: int
    indices: np.ndarray
    #: optional per-index pooling weights (weighted EmbeddingBag)
    weights: Optional[np.ndarray] = None


@dataclass
class TBEResult:
    output: np.ndarray       #: (num_tables, batch, dim) pooled FP32
    cycles: float
    config: TBEConfig

    def gbs(self, frequency_ghz: float) -> float:
        """Achieved gather bandwidth in GB/s."""
        if self.cycles <= 0:
            return 0.0
        return self.config.lookup_bytes * frequency_ghz / self.cycles


def generate_tables(config: TBEConfig, seed: int = 0) -> np.ndarray:
    """Random INT8 embedding tables, shape (tables, rows, dim)."""
    rng = np.random.default_rng(seed)
    return rng.integers(-128, 128,
                        size=(config.num_tables, config.rows_per_table,
                              config.embedding_dim),
                        dtype=np.int8)


def generate_indices(config: TBEConfig, seed: int = 1,
                     alpha: Optional[float] = None) -> np.ndarray:
    """Lookup indices, shape (tables, batch, pooling).

    ``alpha`` enables a Zipf-like popularity skew (production embedding
    accesses are heavily skewed, which is what makes the SRAM cache
    configuration effective, Section 6.1); ``None`` gives uniform.
    """
    rng = np.random.default_rng(seed)
    shape = (config.num_tables, config.batch_size, config.pooling_factor)
    if alpha is None:
        return rng.integers(0, config.rows_per_table, size=shape,
                            dtype=np.int64)
    ranks = rng.zipf(alpha, size=shape)
    return np.minimum(ranks - 1, config.rows_per_table - 1).astype(np.int64)


def pooled_reference(tables: np.ndarray, indices: np.ndarray,
                     scale: float,
                     weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Numpy reference: dequantised (optionally weighted) sum-pooled bags."""
    num_tables, batch, _ = indices.shape
    dim = tables.shape[2]
    out = np.zeros((num_tables, batch, dim), dtype=np.float32)
    for t in range(num_tables):
        for b in range(batch):
            rows = tables[t, indices[t, b]].astype(np.float32)
            if weights is not None:
                rows = rows * weights[t, b][:, None]
            out[t, b] = rows.sum(axis=0) * scale
    return out


# ---------------------------------------------------------------------------
# Core programs
# ---------------------------------------------------------------------------

def producer_program(ctx, bags: Sequence[Bag], config: TBEConfig,
                     table_addrs: Sequence[int], cb_rows_bytes: int,
                     barrier: Barrier) -> Generator:
    """Core 0: configure CBs and stream looked-up rows in."""
    dim = config.embedding_dim
    out_bytes = dim * 4
    yield from ctx.issue(InitCB(cb_id=CB_ROWS, base=0, size=cb_rows_bytes))
    yield from ctx.issue(InitCB(cb_id=CB_OUT, base=cb_rows_bytes,
                                size=2 * out_bytes))
    yield from ctx.drain()
    yield from barrier.wait()
    for bag in bags:
        base = table_addrs[bag.table]
        for index in bag.indices:
            yield from ctx.issue(DMALoad(
                addr=base + int(index) * dim, row_bytes=dim, cb_id=CB_ROWS))
    yield from ctx.drain()


def consumer_program(ctx, bags: Sequence[Bag], config: TBEConfig,
                     out_addr: int, cb_rows_bytes: int,
                     barrier: Barrier) -> Generator:
    """Core 1: pool each bag with the vector unit and store it."""
    pe = ctx.pe
    dim = config.embedding_dim
    out_bytes = dim * 4
    yield from barrier.wait()
    rows_cb = pe.cb(CB_ROWS)
    out_cb = pe.cb(CB_OUT)
    for bag in bags:
        # Wait for output space before scribbling into the CB_OUT region.
        yield out_cb.wait_space(out_bytes)
        acc_addr = out_cb.base + out_cb.write_ptr
        yield from ctx.vector.fill(acc_addr, dim, 0.0)
        for position in range(len(bag.indices)):
            yield rows_cb.wait_elements(dim)
            row_addr = rows_cb.base + rows_cb.read_ptr
            scale = config.scale
            if bag.weights is not None:
                scale = scale * float(bag.weights[position])
            yield from ctx.vector.dequant_accumulate(
                row_addr, acc_addr, dim, scale)
            rows_cb.pop(dim)
        # Wait for the push to land before the next bag reuses the
        # write-pointer region (double-buffer handoff).
        yield from ctx.issue_and_wait(PushCB(cb_id=CB_OUT, nbytes=out_bytes))
        dest = out_addr + ((bag.table * config.batch_size + bag.sample)
                           * out_bytes)
        yield from ctx.issue(DMAStore(addr=dest, row_bytes=out_bytes,
                                      cb_id=CB_OUT))
    yield from ctx.drain()


# ---------------------------------------------------------------------------
# Host-side driver
# ---------------------------------------------------------------------------

def assign_bags(config: TBEConfig, indices: np.ndarray, num_pes: int,
                weights: Optional[np.ndarray] = None) -> List[List[Bag]]:
    """Round-robin (table, sample) bags over ``num_pes`` PEs."""
    assignments: List[List[Bag]] = [[] for _ in range(num_pes)]
    bag_id = 0
    for t in range(config.num_tables):
        for b in range(config.batch_size):
            bag_weights = None if weights is None else weights[t, b]
            assignments[bag_id % num_pes].append(
                Bag(table=t, sample=b, indices=indices[t, b],
                    weights=bag_weights))
            bag_id += 1
    return assignments


def launch_tbe_programs(acc: Accelerator, config: TBEConfig,
                        table_addrs: Sequence[int], out_addr: int,
                        subgrid: SubGrid, prefetch_rows: int = 2,
                        indices: Optional[np.ndarray] = None,
                        weights: Optional[np.ndarray] = None,
                        seed: int = 0) -> List:
    """Launch TBE core programs without running the engine.

    Returns the launched processes, so the firmware scheduler can run
    TBE jobs concurrently with other kernels on disjoint sub-grids.
    """
    if indices is None:
        indices = generate_indices(config, seed + 1)
    dim = config.embedding_dim
    cb_rows_bytes = prefetch_rows * dim
    pes = list(subgrid)
    assignments = assign_bags(config, indices, len(pes), weights)
    active = [(pe, bags) for pe, bags in zip(pes, assignments) if bags]
    barrier = acc.barrier(2 * len(active), "tbe.start")
    procs = []
    for pe, bags in active:
        procs.append(acc.launch(producer_program, pe.cores[0], bags, config,
                                table_addrs, cb_rows_bytes, barrier,
                                name=f"tbe.prod{pe.coord}"))
        procs.append(acc.launch(consumer_program, pe.cores[1], bags, config,
                                out_addr, cb_rows_bytes, barrier,
                                name=f"tbe.cons{pe.coord}"))
    return procs


def run_tbe(acc: Accelerator, config: TBEConfig,
            tables: Optional[np.ndarray] = None,
            indices: Optional[np.ndarray] = None,
            subgrid: Optional[SubGrid] = None,
            prefetch_rows: int = 2,
            weights: Optional[np.ndarray] = None,
            seed: int = 0,
            operand_region: str = "dram",
            cache=None) -> TBEResult:
    """Run one TBE operator on the simulated accelerator.

    ``prefetch_rows`` controls software pipelining depth (see module
    docstring).  Returns pooled FP32 output of shape
    (num_tables, batch, dim) plus the cycle count.

    ``operand_region`` places the embedding tables: ``"dram"`` (default,
    gathers stream from LPDDR5 through the cache-mode SRAM) or
    ``"sram"``, which pins every table in the on-chip SRAM scratchpad —
    the "sufficient locality in the SRAM" regime the paper credits with
    hand-tuned kernels reaching 500 GB/s (Section 6.1).  ``"sram"``
    requires ``sram_mode=SRAMMode.SCRATCHPAD`` and all tables to fit in
    the 128 MB SRAM; the pooled output always lands in DRAM.

    ``cache`` accepts a :class:`repro.simcache.SimCache` (or set
    ``REPRO_SIM_CACHE``) to replay content-addressed results instead of
    re-simulating; replayed results are bit-identical to a fresh run.
    """
    from repro import simcache
    from repro.simcache.cache import (machine_payload, record_stalls,
                                      replay_stalls, usable_for)

    if operand_region not in ("dram", "sram"):
        raise ValueError(f"operand_region must be 'dram' or 'sram', "
                         f"got {operand_region!r}")
    if operand_region == "sram":
        from repro.memory import SRAMMode
        if acc.memory.sram_mode is not SRAMMode.SCRATCHPAD:
            raise SimulationError(
                "operand_region='sram' needs an accelerator with "
                "sram_mode=SRAMMode.SCRATCHPAD")
    tables_given = tables is not None
    indices_given = indices is not None
    if tables is None:
        tables = generate_tables(config, seed)
    if indices is None:
        indices = generate_indices(config, seed + 1)
    if prefetch_rows < 1:
        raise SimulationError("prefetch_rows must be >= 1")
    dim = config.embedding_dim
    cb_rows_bytes = prefetch_rows * dim
    lm_capacity = acc.config.local_memory.capacity_bytes
    if cb_rows_bytes + 2 * dim * 4 > lm_capacity:
        raise SimulationError("TBE CBs exceed local memory; reduce "
                              "prefetch_rows or embedding_dim")
    if subgrid is None:
        subgrid = acc.subgrid()

    sim_cache = simcache.resolve_cache(cache)
    key = None
    if usable_for(sim_cache, acc):
        payload = {
            "op": "tbe", "machine": machine_payload(acc),
            "config": config,
            "subgrid": (subgrid.origin, subgrid.rows, subgrid.cols),
            "prefetch_rows": prefetch_rows,
            "tables": (simcache.array_digest(tables)
                       if tables_given else f"generated:{seed}"),
            "indices": (simcache.array_digest(indices)
                        if indices_given else f"generated:{seed + 1}"),
            "weights": (simcache.array_digest(weights)
                        if weights is not None else None),
        }
        if operand_region != "dram":
            # Keyed only when non-default so pre-existing DRAM-placed
            # fingerprints stay valid.
            payload["operand_region"] = operand_region
        key = simcache.fingerprint(payload)
        entry = sim_cache.lookup(key, "tbe",
                                 need_stalls=acc.engine.obs.enabled)
        if entry is not None:
            replay_stalls(acc, entry)
            return TBEResult(output=entry.outputs["output"].copy(),
                             cycles=entry.cycles, config=config)

    if operand_region == "sram":
        table_addrs = [acc.upload(tables[t],
                                  acc.alloc_sram(tables[t].nbytes))
                       for t in range(config.num_tables)]
    else:
        table_addrs = [acc.upload(tables[t])
                       for t in range(config.num_tables)]
    out_addr = acc.alloc_dram(config.num_bags * dim * 4)

    start = acc.engine.now
    launch_tbe_programs(acc, config, table_addrs, out_addr, subgrid,
                        prefetch_rows=prefetch_rows, indices=indices,
                        weights=weights)
    acc.run()
    cycles = acc.engine.now - start

    output = acc.download(out_addr,
                          (config.num_tables, config.batch_size, dim),
                          np.float32)
    if key is not None:
        stalls, recorded = record_stalls(acc)
        sim_cache.store(simcache.CacheEntry(
            key=key, op="tbe", cycles=cycles,
            outputs={"output": output.copy()},
            stalls=stalls, stalls_recorded=recorded,
            extras={"num_tables": config.num_tables,
                    "batch_size": config.batch_size,
                    "embedding_dim": dim,
                    "pooling_factor": config.pooling_factor,
                    "prefetch_rows": prefetch_rows}))
    return TBEResult(output=output, cycles=cycles, config=config)
