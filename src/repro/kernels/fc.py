"""The fully-connected (FC) kernel: Section 4's GEMM mapping.

Computes ``C^T = A x B^T`` with ``A`` of shape ``(m, k)`` and ``B^T`` of
shape ``(n, k)``, both row-major with ``k`` innermost ("to increase the
efficiency of memory accesses"), producing ``C^T`` of shape ``(n, m)``.

The work distribution follows Figure 7:

* ``m`` is distributed across sub-grid *rows* in multiples of 64;
* ``n`` is distributed across *column groups* in multiples of 64;
* the reduction dimension ``k`` is distributed across the PEs *within*
  a column group (adjacent columns), so the dedicated reduction network
  can accumulate partial results west-to-east;
* PEs in the same row that handle the same ``k`` slice share their
  ``A`` blocks through row multicast; PEs in the same column share
  their ``B^T`` blocks through column multicast.

Within each PE the two cores split the work exactly as Figure 8's
pseudocode: core 0 (producer) issues the DMA loads; core 1 (consumer)
issues MML / POP / REDUCE commands.  There is no per-iteration
synchronisation — the Command Processor's circular-buffer element/space
checks provide the producer-consumer coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.dtypes import DType, dtype as resolve_dtype
from repro.isa.commands import (DMALoad, DMAStore, InitAccumulators, InitCB,
                                MML, PopCB, Reduce)
from repro.core.accelerator import Accelerator
from repro.core.grid import SubGrid
from repro.core.sync import Barrier
from repro.sim import SimulationError

#: The DPE's native tile sizes (Section 3.1.2).
TILE_MN = 64   # per-PE m/n step (2x2 accumulator arrangement)
TILE_K = 32    # per-PE k step


@dataclass
class PEWork:
    """One PE's slice of the FC iteration space (Figure 8's ``work``)."""

    coord: Tuple[int, int]
    m_begin: int
    m_end: int
    n_begin: int
    n_end: int
    k_begin: int
    k_end: int
    #: Position in the west-to-east reduction chain for this n-group.
    chain_index: int
    chain_length: int
    east_neighbor: Optional[Tuple[int, int]] = None
    multicast_a: Optional[object] = None
    multicast_b: Optional[object] = None

    @property
    def first_in_chain(self) -> bool:
        return self.chain_index == 0

    @property
    def last_in_chain(self) -> bool:
        return self.chain_index == self.chain_length - 1


@dataclass
class FCPlan:
    """A validated mapping of an FC operator onto a sub-grid."""

    m: int
    k: int
    n: int
    dtype: DType
    subgrid: SubGrid
    k_split: int
    n_split: int
    work_items: List[PEWork] = field(default_factory=list)

    @property
    def m_per_row(self) -> int:
        return self.m // self.subgrid.rows

    @property
    def k_per_pe(self) -> int:
        return self.k // self.k_split

    @property
    def n_per_group(self) -> int:
        return self.n // self.n_split

    def cb_bytes(self) -> Tuple[int, int, int]:
        """(CB_A, CB_B, CB_C) sizes in bytes for this plan.

        CB_A holds one 64-row A stripe across the PE's whole k slice;
        CB_B holds the PE's entire B^T slice (loaded once, Figure 8);
        CB_C holds one 64x64 INT32/FP32 output block.
        """
        elem = self.dtype.bytes
        cb_a = (self.k_per_pe // TILE_K) * TILE_MN * TILE_K * elem
        cb_b = ((self.n_per_group // TILE_MN) * (self.k_per_pe // TILE_K)
                * TILE_MN * TILE_K * elem)
        cb_c = TILE_MN * TILE_MN * 4
        return cb_a, cb_b, cb_c


# CB IDs used by the kernel.
CB_A, CB_B, CB_C = 0, 1, 2


def plan_fc(subgrid: SubGrid, m: int, k: int, n: int,
            dtype="int8", k_split: Optional[int] = None,
            use_multicast: bool = True) -> FCPlan:
    """Build and validate the Figure 7 distribution.

    ``k_split`` PEs in each row cooperate on the reduction dimension;
    the remaining column parallelism (``cols // k_split``) distributes
    ``n``.  ``use_multicast=False`` disables the NoC coalescing groups
    (every PE fetches its own operand copies) — the ablation knob for
    Section 3.5's multicast feature.  Raises :class:`SimulationError`
    when the shape does not tile onto the sub-grid or the circular
    buffers exceed local memory.
    """
    dtype = resolve_dtype(dtype)
    if k_split is None:
        k_split = _default_k_split(subgrid.cols, k)
    if subgrid.cols % k_split:
        raise SimulationError(
            f"k_split={k_split} must divide sub-grid cols={subgrid.cols}")
    n_split = subgrid.cols // k_split
    if m % (TILE_MN * subgrid.rows):
        raise SimulationError(
            f"m={m} must be a multiple of {TILE_MN}x{subgrid.rows} rows")
    if n % (TILE_MN * n_split):
        raise SimulationError(
            f"n={n} must be a multiple of {TILE_MN}x{n_split} column groups")
    if k % (TILE_K * k_split):
        raise SimulationError(
            f"k={k} must be a multiple of {TILE_K}x{k_split}")
    plan = FCPlan(m=m, k=k, n=n, dtype=dtype, subgrid=subgrid,
                  k_split=k_split, n_split=n_split)
    cb_a, cb_b, cb_c = plan.cb_bytes()
    capacity = subgrid.grid.config.local_memory.capacity_bytes
    if cb_a + cb_b + cb_c > capacity:
        raise SimulationError(
            f"FC plan needs {cb_a + cb_b + cb_c} B of local memory per PE "
            f"(CB_A={cb_a}, CB_B={cb_b}, CB_C={cb_c}) but only {capacity} B "
            "exist; increase k_split/n_split or shrink the tile")

    # Multicast groups (Figure 7): A is shared along rows between PEs
    # with the same k slice; B^T is shared down each column.
    mcast_a = {}
    if use_multicast and n_split > 1:
        for r in range(subgrid.rows):
            for k_idx in range(k_split):
                cols = [g * k_split + k_idx for g in range(n_split)]
                mcast_a[(r, k_idx)] = subgrid.row_multicast_group(r, cols)
    mcast_b = {}
    if use_multicast and subgrid.rows > 1:
        for c in range(subgrid.cols):
            mcast_b[c] = subgrid.col_multicast_group(
                c, list(range(subgrid.rows)))

    m_per, n_per, k_per = plan.m_per_row, plan.n_per_group, plan.k_per_pe
    for r in range(subgrid.rows):
        for c in range(subgrid.cols):
            n_idx, k_idx = divmod(c, k_split)
            pe = subgrid.pe(r, c)
            east = (subgrid.pe(r, c + 1).coord
                    if k_idx < k_split - 1 else None)
            plan.work_items.append(PEWork(
                coord=pe.coord,
                m_begin=r * m_per, m_end=(r + 1) * m_per,
                n_begin=n_idx * n_per, n_end=(n_idx + 1) * n_per,
                k_begin=k_idx * k_per, k_end=(k_idx + 1) * k_per,
                chain_index=k_idx, chain_length=k_split,
                east_neighbor=east,
                multicast_a=mcast_a.get((r, k_idx)),
                multicast_b=mcast_b.get(c),
            ))
    return plan


def _default_k_split(cols: int, k: int) -> int:
    """Largest power-of-two split of ``cols`` that still tiles ``k``."""
    split = 1
    while (split * 2 <= cols and cols % (split * 2) == 0
           and k % (TILE_K * split * 2) == 0):
        split *= 2
    return split


# ---------------------------------------------------------------------------
# Core programs (Figure 8)
# ---------------------------------------------------------------------------

def producer_program(ctx, work: PEWork, plan: FCPlan, addrs,
                     barrier: Barrier) -> Generator:
    """Core 0: set up the CBs, then stream A and B^T into local memory."""
    a_addr, bt_addr, _ = addrs
    elem = plan.dtype.bytes
    cb_a, cb_b, cb_c = plan.cb_bytes()
    yield from ctx.issue(InitCB(cb_id=CB_A, base=0, size=cb_a))
    yield from ctx.issue(InitCB(cb_id=CB_B, base=cb_a, size=cb_b))
    yield from ctx.issue(InitCB(cb_id=CB_C, base=cb_a + cb_b, size=cb_c))
    yield from ctx.drain()
    yield from barrier.wait()          # "Synchronize with others"

    read_b = True
    for m in range(work.m_begin, work.m_end, TILE_MN):
        for n in range(work.n_begin, work.n_end, TILE_MN):
            for k in range(work.k_begin, work.k_end, TILE_K):
                if n == work.n_begin:  # A stripe: once per 64-row step
                    yield from ctx.issue(DMALoad(
                        addr=a_addr + (m * plan.k + k) * elem,
                        rows=TILE_MN, row_bytes=TILE_K * elem,
                        stride=plan.k * elem,
                        cb_id=CB_A, multicast=work.multicast_a))
                if read_b:             # B^T slice: loaded exactly once
                    yield from ctx.issue(DMALoad(
                        addr=bt_addr + (n * plan.k + k) * elem,
                        rows=TILE_MN, row_bytes=TILE_K * elem,
                        stride=plan.k * elem,
                        cb_id=CB_B, multicast=work.multicast_b))
        read_b = False
    yield from ctx.drain()


def consumer_program(ctx, work: PEWork, plan: FCPlan, addrs,
                     barrier: Barrier) -> Generator:
    """Core 1: MML blocks into the accumulators, reduce, and store."""
    _, _, c_addr = addrs
    elem = plan.dtype.bytes
    block = TILE_K * 32 * elem          # one 32x32 operand block
    yield from barrier.wait()

    for m in range(work.m_begin, work.m_end, TILE_MN):
        off_b = 0
        for n in range(work.n_begin, work.n_end, TILE_MN):
            off_a = 0
            yield from ctx.issue(InitAccumulators(banks=(0, 1, 2, 3)))
            last_m = m + TILE_MN >= work.m_end
            last_n = n + TILE_MN >= work.n_end
            for k in range(work.k_begin, work.k_end, TILE_K):
                for acc, (db, da) in enumerate(
                        ((0, 0), (0, block), (block, 0), (block, block))):
                    yield from ctx.issue(MML(
                        acc=acc, m=32, k=TILE_K, n=32,
                        cb_b=CB_B, cb_a=CB_A,
                        offset_b=off_b + db, offset_a=off_a + da,
                        dtype=plan.dtype))
                if last_m:   # final pass over B: mark consumed
                    yield from ctx.issue(PopCB(cb_id=CB_B, nbytes=2 * block))
                else:
                    off_b += 2 * block
                if last_n:   # final pass over A: mark consumed
                    yield from ctx.issue(PopCB(cb_id=CB_A, nbytes=2 * block))
                else:
                    off_a += 2 * block
            # Accumulate across the k chain over the reduction network.
            if work.last_in_chain:
                yield from ctx.issue(Reduce(
                    receive=not work.first_in_chain, dest_cb=CB_C))
                yield from ctx.issue(DMAStore(
                    addr=c_addr + (n * plan.m + m) * 4,
                    rows=TILE_MN, row_bytes=TILE_MN * 4,
                    stride=plan.m * 4, cb_id=CB_C))
            else:
                yield from ctx.issue(Reduce(
                    receive=not work.first_in_chain,
                    dest_pe=work.east_neighbor))
    yield from ctx.drain()


def single_core_program(ctx, work: PEWork, plan: FCPlan, addrs,
                        barrier: Barrier) -> Generator:
    """Both roles on one core — the Section 7 dual-core ablation.

    The paper credits the two-core PE with "twice the overall
    instruction throughput" when an operator is instruction bound; this
    variant issues the DMA *and* compute command streams from a single
    core so benchmarks can measure what that decoupling buys.
    """
    a_addr, bt_addr, c_addr = addrs
    elem = plan.dtype.bytes
    block = TILE_K * 32 * elem
    cb_a, cb_b, cb_c = plan.cb_bytes()
    yield from ctx.issue(InitCB(cb_id=CB_A, base=0, size=cb_a))
    yield from ctx.issue(InitCB(cb_id=CB_B, base=cb_a, size=cb_b))
    yield from ctx.issue(InitCB(cb_id=CB_C, base=cb_a + cb_b, size=cb_c))
    yield from ctx.drain()
    yield from barrier.wait()

    read_b = True
    for m in range(work.m_begin, work.m_end, TILE_MN):
        off_b = 0
        for n in range(work.n_begin, work.n_end, TILE_MN):
            off_a = 0
            yield from ctx.issue(InitAccumulators(banks=(0, 1, 2, 3)))
            last_m = m + TILE_MN >= work.m_end
            last_n = n + TILE_MN >= work.n_end
            for k in range(work.k_begin, work.k_end, TILE_K):
                if n == work.n_begin:
                    yield from ctx.issue(DMALoad(
                        addr=a_addr + (m * plan.k + k) * elem,
                        rows=TILE_MN, row_bytes=TILE_K * elem,
                        stride=plan.k * elem,
                        cb_id=CB_A, multicast=work.multicast_a))
                if read_b:
                    yield from ctx.issue(DMALoad(
                        addr=bt_addr + (n * plan.k + k) * elem,
                        rows=TILE_MN, row_bytes=TILE_K * elem,
                        stride=plan.k * elem,
                        cb_id=CB_B, multicast=work.multicast_b))
                for acc, (db, da) in enumerate(
                        ((0, 0), (0, block), (block, 0), (block, block))):
                    yield from ctx.issue(MML(
                        acc=acc, m=32, k=TILE_K, n=32,
                        cb_b=CB_B, cb_a=CB_A,
                        offset_b=off_b + db, offset_a=off_a + da,
                        dtype=plan.dtype))
                if last_m:
                    yield from ctx.issue(PopCB(cb_id=CB_B, nbytes=2 * block))
                else:
                    off_b += 2 * block
                if last_n:
                    yield from ctx.issue(PopCB(cb_id=CB_A, nbytes=2 * block))
                else:
                    off_a += 2 * block
            if work.last_in_chain:
                yield from ctx.issue(Reduce(
                    receive=not work.first_in_chain, dest_cb=CB_C))
                yield from ctx.issue(DMAStore(
                    addr=c_addr + (n * plan.m + m) * 4,
                    rows=TILE_MN, row_bytes=TILE_MN * 4,
                    stride=plan.m * 4, cb_id=CB_C))
            else:
                yield from ctx.issue(Reduce(
                    receive=not work.first_in_chain,
                    dest_pe=work.east_neighbor))
        read_b = False
    yield from ctx.drain()


def launch_fc_programs(acc: Accelerator, plan: FCPlan, addrs,
                       dual_core: bool = True) -> List:
    """Launch the FC core programs without running the engine.

    Returns the launched processes so callers (e.g. the firmware job
    scheduler, which runs several kernels on disjoint sub-grids
    concurrently) can wait on their completion.
    """
    parties = (2 if dual_core else 1) * plan.subgrid.num_pes
    barrier = acc.barrier(parties, "fc.start")
    procs = []
    for work in plan.work_items:
        pe = acc.grid.pe(*work.coord)
        if dual_core:
            procs.append(acc.launch(producer_program, pe.cores[0], work,
                                    plan, addrs, barrier,
                                    name=f"fc.prod{work.coord}"))
            procs.append(acc.launch(consumer_program, pe.cores[1], work,
                                    plan, addrs, barrier,
                                    name=f"fc.cons{work.coord}"))
        else:
            procs.append(acc.launch(single_core_program, pe.cores[0], work,
                                    plan, addrs, barrier,
                                    name=f"fc.solo{work.coord}"))
    return procs


# ---------------------------------------------------------------------------
# Host-side driver
# ---------------------------------------------------------------------------

@dataclass
class FCResult:
    """Output + measurements of one FC run."""

    c_t: np.ndarray          #: the (n, m) result, INT32 or FP32
    cycles: float            #: simulated execution cycles
    plan: FCPlan
    macs: int

    @property
    def c(self) -> np.ndarray:
        return self.c_t.T

    def tops(self, frequency_ghz: float) -> float:
        """Achieved tera-ops (2 ops per MAC) at ``frequency_ghz``."""
        if self.cycles <= 0:
            return 0.0
        return 2 * self.macs * frequency_ghz / self.cycles / 1e3


def run_fc(acc: Accelerator, a: Optional[np.ndarray] = None,
           b_t: Optional[np.ndarray] = None, *,
           m: Optional[int] = None, k: Optional[int] = None,
           n: Optional[int] = None, dtype="int8",
           subgrid: Optional[SubGrid] = None,
           k_split: Optional[int] = None,
           use_multicast: bool = True,
           dual_core: bool = True,
           auto_pad: bool = False,
           seed: int = 0,
           operand_region: str = "dram",
           cache=None) -> FCResult:
    """Run one FC operator end-to-end on the simulated accelerator.

    Either pass operand arrays ``a`` (m, k) and ``b_t`` (n, k) or just
    the dimensions (random operands are generated).  Returns the
    computed ``C^T`` and the cycle count; the caller is responsible for
    checking against a reference (the test-suite does).

    ``auto_pad=True`` zero-pads the operands to the sub-grid's tile
    multiples and slices the padding back off the result — the shape
    legalisation the paper's compiler performs ("the outer dimension
    stride is aligned ... for efficient data movement", Section 4).
    The returned ``macs`` counts only the *useful* work, so achieved
    TOPS reflect the padding waste.

    ``use_multicast`` and ``dual_core`` are the Section 3.5 / Section 7
    ablation knobs: disable NoC read coalescing, or run both command
    streams from a single core.

    ``operand_region`` places the A / B^T operands: ``"dram"`` (default)
    or ``"sram"``, which stages both in the on-chip SRAM scratchpad so
    the DMA streams run at SRAM bandwidth (the Section 5 tensor
    placement the compiler aims for; Figure 13's SRAM-resident regime).
    ``"sram"`` requires an accelerator built with
    ``sram_mode=SRAMMode.SCRATCHPAD`` — partitioning the SRAM as
    scratchpad instead of memory-side cache is part of the mapping
    decision.  The C output always lands in DRAM for the host.

    ``cache`` accepts a :class:`repro.simcache.SimCache` (or set the
    ``REPRO_SIM_CACHE`` environment variable) to replay
    content-addressed results instead of re-simulating; replayed
    results are bit-identical to a fresh run (cycles, output, stall
    attributions — the conformance ``cache`` pillar proves it).
    """
    from repro import simcache
    from repro.simcache.cache import (machine_payload, record_stalls,
                                      replay_stalls, usable_for)

    dtype = resolve_dtype(dtype)
    if operand_region not in ("dram", "sram"):
        raise ValueError(f"operand_region must be 'dram' or 'sram', "
                         f"got {operand_region!r}")
    if operand_region == "sram":
        from repro.memory import SRAMMode
        if acc.memory.sram_mode is not SRAMMode.SCRATCHPAD:
            raise SimulationError(
                "operand_region='sram' needs an accelerator with "
                "sram_mode=SRAMMode.SCRATCHPAD")
    operands_given = a is not None
    rng = np.random.default_rng(seed)
    if a is None:
        if None in (m, k, n):
            raise ValueError("pass operand arrays or all of m, k, n")
        if dtype.name == "int8":
            a = rng.integers(-128, 128, size=(m, k), dtype=np.int8)
            b_t = rng.integers(-128, 128, size=(n, k), dtype=np.int8)
        else:
            a = rng.standard_normal((m, k)).astype(dtype.numpy_dtype)
            b_t = rng.standard_normal((n, k)).astype(dtype.numpy_dtype)
    else:
        if b_t is None:
            raise ValueError("pass both a and b_t")
        m, k = a.shape
        n, _ = b_t.shape
        if b_t.shape[1] != k:
            raise ValueError(f"k mismatch: A is {a.shape}, B^T is {b_t.shape}")

    true_m, true_n = m, n
    if auto_pad:
        if subgrid is None:
            subgrid = acc.subgrid((0, 0), 1, 1)
        pm, pk, pn = padded_shape(m, k, n, subgrid,
                                  k_split=k_split or 1)
        if (pm, pk, pn) != (m, k, n):
            a = _zero_pad(a, pm, pk)
            b_t = _zero_pad(b_t, pn, pk)
            m, k, n = pm, pk, pn
    if subgrid is None:
        subgrid = _auto_subgrid(acc, m, k, n)
    plan = plan_fc(subgrid, m, k, n, dtype, k_split=k_split,
                   use_multicast=use_multicast)

    sim_cache = simcache.resolve_cache(cache)
    key = None
    if usable_for(sim_cache, acc):
        payload = {
            "op": "fc", "machine": machine_payload(acc),
            "m": m, "k": k, "n": n, "true_m": true_m, "true_n": true_n,
            "dtype": dtype.name,
            "subgrid": (subgrid.origin, subgrid.rows, subgrid.cols),
            "k_split": plan.k_split, "use_multicast": use_multicast,
            "dual_core": dual_core,
            "operands": ({"a": simcache.array_digest(a),
                          "b_t": simcache.array_digest(b_t)}
                         if operands_given else f"generated:{seed}"),
        }
        if operand_region != "dram":
            # Keyed only when non-default so pre-existing DRAM-placed
            # fingerprints stay valid.
            payload["operand_region"] = operand_region
        key = simcache.fingerprint(payload)
        entry = sim_cache.lookup(key, "fc",
                                 need_stalls=acc.engine.obs.enabled)
        if entry is not None:
            replay_stalls(acc, entry)
            return FCResult(c_t=entry.outputs["c_t"].copy(),
                            cycles=entry.cycles, plan=plan,
                            macs=true_m * true_n * k)

    if operand_region == "sram":
        a = np.ascontiguousarray(a)
        b_t = np.ascontiguousarray(b_t)
        a_addr = acc.upload(a, acc.alloc_sram(a.nbytes))
        bt_addr = acc.upload(b_t, acc.alloc_sram(b_t.nbytes))
    else:
        a_addr = acc.upload(np.ascontiguousarray(a))
        bt_addr = acc.upload(np.ascontiguousarray(b_t))
    out_np = np.int32 if dtype.name == "int8" else np.float32
    c_addr = acc.alloc_dram(n * m * 4)
    addrs = (a_addr, bt_addr, c_addr)

    start = acc.engine.now
    launch_fc_programs(acc, plan, addrs, dual_core=dual_core)
    acc.run()
    cycles = acc.engine.now - start

    c_t = acc.download(c_addr, (n, m), out_np)
    if (true_m, true_n) != (m, n):
        c_t = np.ascontiguousarray(c_t[:true_n, :true_m])
    if key is not None:
        stalls, recorded = record_stalls(acc)
        sim_cache.store(simcache.CacheEntry(
            key=key, op="fc", cycles=cycles, outputs={"c_t": c_t.copy()},
            stalls=stalls, stalls_recorded=recorded,
            extras={"m": true_m, "k": k, "n": true_n,
                    "dtype": dtype.name}))
    return FCResult(c_t=c_t, cycles=cycles, plan=plan,
                    macs=true_m * true_n * k)


def padded_shape(m: int, k: int, n: int, subgrid: SubGrid,
                 k_split: int = 1) -> tuple:
    """Smallest (m, k, n) >= the inputs that tiles onto ``subgrid``."""
    def round_up(value: int, multiple: int) -> int:
        return (value + multiple - 1) // multiple * multiple

    n_split = max(1, subgrid.cols // k_split)
    return (round_up(m, TILE_MN * subgrid.rows),
            round_up(k, TILE_K * k_split),
            round_up(n, TILE_MN * n_split))


def _zero_pad(array: np.ndarray, rows: int, cols: int) -> np.ndarray:
    out = np.zeros((rows, cols), dtype=array.dtype)
    out[:array.shape[0], :array.shape[1]] = array
    return out


def _auto_subgrid(acc: Accelerator, m: int, k: int, n: int) -> SubGrid:
    """Pick the largest sub-grid the shape tiles onto."""
    max_rows = acc.config.grid_rows
    max_cols = acc.config.grid_cols
    rows = 1
    while rows * 2 <= max_rows and m % (TILE_MN * rows * 2) == 0:
        rows *= 2
    cols = 1
    while cols * 2 <= max_cols:
        candidate = cols * 2
        ok = False
        for ks in range(1, candidate + 1):
            if candidate % ks:
                continue
            if k % (TILE_K * ks) == 0 and n % (TILE_MN * (candidate // ks)) == 0:
                ok = True
                break
        if not ok:
            break
        cols = candidate
    return acc.subgrid((0, 0), rows, cols)
