"""The kernel library (Section 5, "Library of ML kernels").

Hand-written kernels for the operators the paper's evaluation exercises:

* :mod:`repro.kernels.fc` — the fully-connected (GEMM) kernel, a direct
  implementation of the Section 4 mapping (Figures 7 and 8);
* :mod:`repro.kernels.tbe` — EmbeddingBag / TableBatchedEmbedding;
* :mod:`repro.kernels.batch_matmul` — batched GEMM on a single PE group;
* :mod:`repro.kernels.memory_ops` — Concat / Transpose (MLU kernels);
* :mod:`repro.kernels.quantize` — quantize / dequantize (SE kernels);
* :mod:`repro.kernels.elementwise` — tanh & friends (SE kernels);
* :mod:`repro.kernels.vector_ops` — LayerNorm / BatchedReduceAdd on the
  RISC-V vector path (Section 7, "General-Purpose Compute").

All kernels run on the functional simulator and are verified against
numpy references by the test suite.
"""

from repro.kernels.fc import FCPlan, plan_fc, run_fc

__all__ = ["FCPlan", "plan_fc", "run_fc"]
