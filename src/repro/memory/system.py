"""The chip-level memory system facade.

Routes a system-address access to DRAM (optionally through the SRAM
memory-side cache), to the SRAM scratchpad, or to a PE's local-memory
aperture, charging the appropriate component's timing model.  This is
the view the Fabric Interface (Section 3.1.5) has of the world.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Optional, Tuple

import numpy as np

from repro.config import ChipConfig
from repro.memory.address_map import AddressMap
from repro.memory.dram import DRAMModel
from repro.memory.local_memory import LocalMemory
from repro.memory.sram import SRAMMode, SRAMModel
from repro.sim import Engine, StatGroup


class MemorySystem:
    """DRAM + SRAM + local apertures behind one read/write interface."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 sram_mode: SRAMMode = SRAMMode.CACHE) -> None:
        self.engine = engine
        self.config = config
        self.address_map = AddressMap(config)
        self.dram = DRAMModel(engine, config, self.address_map)
        self.sram = SRAMModel(engine, config, self.address_map, self.dram,
                              mode=sram_mode)
        self.stats = StatGroup("memsys")
        #: PE local memories registered by the grid, keyed by PE index.
        self._local: Dict[int, LocalMemory] = {}

    @property
    def sram_mode(self) -> SRAMMode:
        return self.sram.mode

    def register_local_memory(self, pe_index: int, memory: LocalMemory) -> None:
        self._local[pe_index] = memory

    def _local_for(self, addr: int) -> Tuple[LocalMemory, int]:
        pe_index = self.address_map.local_pe_index(addr)
        try:
            memory = self._local[pe_index]
        except KeyError:
            raise IndexError(f"no local memory registered for PE {pe_index}")
        offset = addr - self.address_map.local_ranges[pe_index].base
        return memory, offset

    # -- timed accesses ---------------------------------------------------
    def read(self, addr: int, nbytes: int,
             requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: read ``nbytes`` at system address ``addr``."""
        region = self.address_map.region(addr)
        self.stats.add(region + "_reads")
        if region == "dram":
            if self.sram.mode is SRAMMode.CACHE:
                data = yield from self.sram.cached_access(
                    addr, nbytes, is_write=False, requester=requester)
                return data
            data = yield from self.dram.read(addr, nbytes)
            return data
        if region == "sram":
            data = yield from self.sram.read(addr, nbytes, requester)
            return data
        memory, offset = self._local_for(addr)
        data = yield from memory.read(offset, nbytes)
        return data

    def write(self, addr: int, data: np.ndarray,
              requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: write ``data`` at system address ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        region = self.address_map.region(addr)
        self.stats.add(region + "_writes")
        if region == "dram":
            if self.sram.mode is SRAMMode.CACHE:
                yield from self.sram.cached_access(
                    addr, raw.size, is_write=True, requester=requester)
                self.dram.store.write(addr, raw)
                return
            yield from self.dram.write(addr, raw)
            return
        if region == "sram":
            yield from self.sram.write(addr, raw, requester)
            return
        memory, offset = self._local_for(addr)
        yield from memory.write(offset, raw)

    # -- 2D strided accesses (DMA descriptors, Section 3.1.5) ---------------
    def _fragments(self, addr: int, rows: int, row_bytes: int,
                   stride: int) -> list:
        if rows < 1 or row_bytes < 1:
            raise ValueError("2D access needs positive rows/row_bytes")
        return [(addr + r * stride, row_bytes) for r in range(rows)]

    def read_2d(self, addr: int, rows: int, row_bytes: int, stride: int,
                requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: strided read of ``rows`` rows of ``row_bytes`` bytes.

        Returns the gathered data as a contiguous byte array.  All rows
        must fall within a single region.
        """
        fragments = self._fragments(addr, rows, row_bytes, stride)
        region = self.address_map.region(addr)
        self.stats.add(region + "_reads")
        if region == "dram":
            if self.sram_mode is SRAMMode.CACHE:
                yield from self.sram.cached_fragments(fragments, False,
                                                      requester)
            else:
                yield from self.dram.transfer_fragments(fragments, False)
            if rows == 1:   # store.read returns a fresh copy
                return self.dram.store.read(addr, row_bytes)
            rows_data = [self.dram.store.read(a, n) for a, n in fragments]
            return np.concatenate(rows_data)
        if region == "sram":
            yield from self.sram.charge_fragments(fragments, False, requester)
            base = self.address_map.sram_range.base
            if rows == 1:
                return self.sram.store.read(addr - base, row_bytes)
            rows_data = [self.sram.store.read(a - base, n)
                         for a, n in fragments]
            return np.concatenate(rows_data)
        memory, offset = self._local_for(addr)
        data = yield from self._local_2d(memory, offset, rows, row_bytes,
                                         stride, False, None)
        return data

    def write_2d(self, addr: int, data: np.ndarray, rows: int,
                 row_bytes: int, stride: int,
                 requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: strided write (scatter) of contiguous ``data``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if raw.size != rows * row_bytes:
            raise ValueError(
                f"2D write size mismatch: {raw.size} != {rows}x{row_bytes}")
        fragments = self._fragments(addr, rows, row_bytes, stride)
        region = self.address_map.region(addr)
        self.stats.add(region + "_writes")
        if region == "dram":
            if self.sram_mode is SRAMMode.CACHE:
                yield from self.sram.cached_fragments(fragments, True,
                                                      requester)
            else:
                yield from self.dram.transfer_fragments(fragments, True)
            for i, (a, n) in enumerate(fragments):
                self.dram.store.write(a, raw[i * row_bytes:(i + 1) * row_bytes])
            return
        if region == "sram":
            yield from self.sram.charge_fragments(fragments, True, requester)
            base = self.address_map.sram_range.base
            for i, (a, n) in enumerate(fragments):
                self.sram.store.write(a - base,
                                      raw[i * row_bytes:(i + 1) * row_bytes])
            return
        memory, offset = self._local_for(addr)
        yield from self._local_2d(memory, offset, rows, row_bytes,
                                  stride, True, raw)

    @staticmethod
    def _local_2d(memory, offset, rows, row_bytes, stride, is_write,
                  raw) -> Generator:
        """Strided access against a PE-local memory."""
        total = rows * row_bytes
        yield memory.port.delay_for(total)
        yield memory.config.access_latency
        if is_write:
            for i in range(rows):
                memory.poke(offset + i * stride,
                            raw[i * row_bytes:(i + 1) * row_bytes])
            return None
        if rows == 1:       # peek returns a fresh copy
            return memory.peek(offset, row_bytes)
        pieces = [memory.peek(offset + i * stride, row_bytes)
                  for i in range(rows)]
        return np.concatenate(pieces)

    # -- zero-time host accesses -------------------------------------------
    def peek(self, addr: int, nbytes: int) -> np.ndarray:
        region = self.address_map.region(addr)
        if region == "dram":
            return self.dram.peek(addr, nbytes)
        if region == "sram":
            return self.sram.peek(addr, nbytes)
        memory, offset = self._local_for(addr)
        return memory.peek(offset, nbytes)

    def poke(self, addr: int, data: np.ndarray) -> None:
        region = self.address_map.region(addr)
        if region == "dram":
            self.dram.poke(addr, data)
        elif region == "sram":
            self.sram.poke(addr, data)
        else:
            memory, offset = self._local_for(addr)
            memory.poke(offset, data)

    def peek_array(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        np_dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * np_dtype.itemsize
        return self.peek(addr, nbytes).view(np_dtype).reshape(shape)
