"""PE-local memory: 128 KB of banked scratchpad (Section 3.3).

The Command Processor arbitrates between the cores and the five fixed
function units; we model the aggregate as a single bandwidth resource
(512 B/cycle = 400 GB/s at 800 MHz, Table I) plus the multi-client
arbitration latency the paper calls out in Section 7.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.config import LocalMemoryConfig
from repro.sim import Engine, Resource, StatGroup


class LocalMemory:
    """One PE's local store."""

    def __init__(self, engine: Engine, config: LocalMemoryConfig,
                 name: str = "lm") -> None:
        self.engine = engine
        self.config = config
        self.name = name
        self.data = np.zeros(config.capacity_bytes, dtype=np.uint8)
        self.port = Resource(engine, config.bytes_per_cycle, f"{name}.port",
                             stall_cause="lm_port_arb")
        self.stats = StatGroup(name)

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.config.capacity_bytes:
            raise IndexError(
                f"{self.name}: [{addr:#x}, {addr + nbytes:#x}) outside "
                f"{self.config.capacity_bytes:#x}-byte local memory")

    # -- timed accesses --------------------------------------------------
    def read(self, addr: int, nbytes: int) -> Generator:
        """Process: timed read; returns a copy of the bytes."""
        self._check(addr, nbytes)
        self.stats.add("read_bytes", nbytes)
        yield self.port.delay_for(nbytes)
        yield self.config.access_latency
        return self.data[addr:addr + nbytes].copy()

    def write(self, addr: int, payload: np.ndarray) -> Generator:
        """Process: timed write."""
        raw = np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
        self._check(addr, raw.size)
        self.stats.add("write_bytes", raw.size)
        yield self.port.delay_for(raw.size)
        yield self.config.access_latency
        self.data[addr:addr + raw.size] = raw

    # -- zero-time functional accesses ------------------------------------
    def peek(self, addr: int, nbytes: int) -> np.ndarray:
        self._check(addr, nbytes)
        return self.data[addr:addr + nbytes].copy()

    def poke(self, addr: int, payload: np.ndarray) -> None:
        raw = np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
        self._check(addr, raw.size)
        self.data[addr:addr + raw.size] = raw

    def peek_array(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        np_dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * np_dtype.itemsize
        return self.peek(addr, nbytes).view(np_dtype).reshape(shape)
