"""System address map and interleaving.

Section 3.4: "Memory addresses are distributed across these controllers,
and among the on-chip SRAM slices."  We interleave at cache-line (64 B)
granularity across DRAM channels, and at the same granularity across
SRAM slices.  In cache mode, each group of four SRAM slices caches the
addresses of one DRAM controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.config import ChipConfig

#: Interleave granularity in bytes (one cache line).
INTERLEAVE_BYTES = 64

#: Start of the on-chip SRAM scratchpad region in the system address map.
SRAM_BASE = 1 << 40
#: Start of the per-PE local-memory apertures in the system address map.
LOCAL_BASE = 1 << 44
#: Size of each PE's local-memory aperture.
LOCAL_APERTURE = 1 << 20


@dataclass(frozen=True)
class AddressRange:
    """A half-open [base, base+size) address range."""

    base: int
    size: int

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size

    def offset(self, addr: int) -> int:
        if addr not in self:
            raise IndexError(f"{addr:#x} not in [{self.base:#x}, {self.end:#x})")
        return addr - self.base


class AddressMap:
    """Resolves system addresses to memory targets.

    The map exposes three regions:

    * DRAM: ``[0, dram_capacity)``
    * SRAM scratchpad: ``[SRAM_BASE, SRAM_BASE + sram_capacity)``
    * PE local apertures: ``LOCAL_BASE + pe_index * LOCAL_APERTURE``
    """

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        self.dram_range = AddressRange(0, config.dram.capacity_bytes)
        self.sram_range = AddressRange(SRAM_BASE, config.sram.capacity_bytes)
        self.local_ranges = [
            AddressRange(LOCAL_BASE + pe * LOCAL_APERTURE,
                         config.local_memory.capacity_bytes)
            for pe in range(config.num_pes)
        ]
        # Hot-path constants (interleave lookups run per 64 B fragment).
        self._dram_end = config.dram.capacity_bytes
        self._num_channels = config.dram.num_channels
        self._channels_per_controller = config.dram.channels_per_controller
        self._slices_per_controller = config.sram.slices_per_controller
        self._num_slices = config.sram.num_slices
        self._sram_end = SRAM_BASE + config.sram.capacity_bytes
        self._local_end = LOCAL_BASE + config.num_pes * LOCAL_APERTURE
        # Both interleave maps are periodic in the line number, so a
        # precomputed table replaces the div/mod chain on the per-line
        # hot path: controller(line) repeats every num_channels lines,
        # cache_slice(line) every num_channels * slices_per_controller.
        channels = self._num_channels
        cpc = self._channels_per_controller
        per = self._slices_per_controller
        self._ctrl_table = [(ch // cpc) for ch in range(channels)]
        self._slice_period = channels * per
        self._slice_table = [
            ((line % channels) // cpc) * per + (line // channels) % per
            for line in range(self._slice_period)
        ]
        # Instance-level binding skips the bound-method wrapper on the
        # per-fragment hot path (the function is pure and module-level).
        self.split_by_interleave = _split_by_interleave

    # -- region classification ----------------------------------------
    def region(self, addr: int) -> str:
        """Return "dram", "sram", or "local" for ``addr``."""
        if 0 <= addr < self._dram_end:
            return "dram"
        if SRAM_BASE <= addr < self._sram_end:
            return "sram"
        if LOCAL_BASE <= addr < self._local_end:
            return "local"
        raise IndexError(f"address {addr:#x} is unmapped")

    def local_pe_index(self, addr: int) -> int:
        """PE index owning a local-aperture address."""
        if self.region(addr) != "local":
            raise IndexError(f"{addr:#x} is not a local aperture address")
        return (addr - LOCAL_BASE) // LOCAL_APERTURE

    def local_address(self, pe_index: int, offset: int = 0) -> int:
        """System address of byte ``offset`` in PE ``pe_index`` local memory."""
        return self.local_ranges[pe_index].base + offset

    # -- interleaving --------------------------------------------------
    def dram_channel(self, addr: int) -> int:
        """DRAM channel serving ``addr`` (line interleaved)."""
        if not 0 <= addr < self._dram_end:
            raise IndexError(
                f"{addr:#x} not in [0x0, {self._dram_end:#x})")
        return (addr // INTERLEAVE_BYTES) % self._num_channels

    def dram_controller(self, addr: int) -> int:
        """DRAM controller serving ``addr``."""
        if not 0 <= addr < self._dram_end:
            raise IndexError(
                f"{addr:#x} not in [0x0, {self._dram_end:#x})")
        return self._ctrl_table[(addr // INTERLEAVE_BYTES)
                                % self._num_channels]

    def sram_slice(self, addr: int) -> int:
        """SRAM slice serving a scratchpad address (line interleaved)."""
        line = self.sram_range.offset(addr) // INTERLEAVE_BYTES
        return line % self._num_slices

    def cache_slice_for_dram(self, addr: int) -> int:
        """SRAM slice caching a DRAM address in cache mode.

        Each controller's addresses are spread over its four dedicated
        slices, again at line granularity (Section 3.4).
        """
        if not 0 <= addr < self._dram_end:
            raise IndexError(
                f"{addr:#x} not in [0x0, {self._dram_end:#x})")
        return self._slice_table[(addr // INTERLEAVE_BYTES)
                                 % self._slice_period]

    def split_by_interleave(self, addr: int, nbytes: int):
        """Return (addr, size) line-granularity fragments of an access."""
        return _split_by_interleave(addr, nbytes)


@lru_cache(maxsize=65536)
def _split_by_interleave(addr: int, nbytes: int):
    # Pure function of the module-level interleave constant; memoised
    # because workloads re-access the same tensor regions every step.
    # Callers must treat the returned tuple as immutable.
    if nbytes <= 0:
        return ()
    end = addr + nbytes
    first = INTERLEAVE_BYTES - (addr % INTERLEAVE_BYTES)
    if nbytes <= first:
        return ((addr, nbytes),)
    fragments = [(addr, first)]
    addr += first
    while addr < end:
        chunk = end - addr
        if chunk > INTERLEAVE_BYTES:
            chunk = INTERLEAVE_BYTES
        fragments.append((addr, chunk))
        addr += chunk
    return tuple(fragments)
