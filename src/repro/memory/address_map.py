"""System address map and interleaving.

Section 3.4: "Memory addresses are distributed across these controllers,
and among the on-chip SRAM slices."  We interleave at cache-line (64 B)
granularity across DRAM channels, and at the same granularity across
SRAM slices.  In cache mode, each group of four SRAM slices caches the
addresses of one DRAM controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ChipConfig

#: Interleave granularity in bytes (one cache line).
INTERLEAVE_BYTES = 64

#: Start of the on-chip SRAM scratchpad region in the system address map.
SRAM_BASE = 1 << 40
#: Start of the per-PE local-memory apertures in the system address map.
LOCAL_BASE = 1 << 44
#: Size of each PE's local-memory aperture.
LOCAL_APERTURE = 1 << 20


@dataclass(frozen=True)
class AddressRange:
    """A half-open [base, base+size) address range."""

    base: int
    size: int

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size

    def offset(self, addr: int) -> int:
        if addr not in self:
            raise IndexError(f"{addr:#x} not in [{self.base:#x}, {self.end:#x})")
        return addr - self.base


class AddressMap:
    """Resolves system addresses to memory targets.

    The map exposes three regions:

    * DRAM: ``[0, dram_capacity)``
    * SRAM scratchpad: ``[SRAM_BASE, SRAM_BASE + sram_capacity)``
    * PE local apertures: ``LOCAL_BASE + pe_index * LOCAL_APERTURE``
    """

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        self.dram_range = AddressRange(0, config.dram.capacity_bytes)
        self.sram_range = AddressRange(SRAM_BASE, config.sram.capacity_bytes)
        self.local_ranges = [
            AddressRange(LOCAL_BASE + pe * LOCAL_APERTURE,
                         config.local_memory.capacity_bytes)
            for pe in range(config.num_pes)
        ]

    # -- region classification ----------------------------------------
    def region(self, addr: int) -> str:
        """Return "dram", "sram", or "local" for ``addr``."""
        if addr in self.dram_range:
            return "dram"
        if addr in self.sram_range:
            return "sram"
        if LOCAL_BASE <= addr < LOCAL_BASE + self.config.num_pes * LOCAL_APERTURE:
            return "local"
        raise IndexError(f"address {addr:#x} is unmapped")

    def local_pe_index(self, addr: int) -> int:
        """PE index owning a local-aperture address."""
        if self.region(addr) != "local":
            raise IndexError(f"{addr:#x} is not a local aperture address")
        return (addr - LOCAL_BASE) // LOCAL_APERTURE

    def local_address(self, pe_index: int, offset: int = 0) -> int:
        """System address of byte ``offset`` in PE ``pe_index`` local memory."""
        return self.local_ranges[pe_index].base + offset

    # -- interleaving --------------------------------------------------
    def dram_channel(self, addr: int) -> int:
        """DRAM channel serving ``addr`` (line interleaved)."""
        line = self.dram_range.offset(addr) // INTERLEAVE_BYTES
        return line % self.config.dram.num_channels

    def dram_controller(self, addr: int) -> int:
        """DRAM controller serving ``addr``."""
        return self.dram_channel(addr) // self.config.dram.channels_per_controller

    def sram_slice(self, addr: int) -> int:
        """SRAM slice serving a scratchpad address (line interleaved)."""
        line = self.sram_range.offset(addr) // INTERLEAVE_BYTES
        return line % self.config.sram.num_slices

    def cache_slice_for_dram(self, addr: int) -> int:
        """SRAM slice caching a DRAM address in cache mode.

        Each controller's addresses are spread over its four dedicated
        slices, again at line granularity (Section 3.4).
        """
        controller = self.dram_controller(addr)
        per = self.config.sram.slices_per_controller
        line = self.dram_range.offset(addr) // INTERLEAVE_BYTES
        sub = (line // self.config.dram.num_channels) % per
        return controller * per + sub

    def split_by_interleave(self, addr: int, nbytes: int):
        """Yield (addr, size) line-granularity fragments of an access."""
        end = addr + nbytes
        while addr < end:
            chunk = min(end - addr,
                        INTERLEAVE_BYTES - (addr % INTERLEAVE_BYTES))
            yield addr, chunk
            addr += chunk
