"""Sparse byte-addressable backing store.

The accelerator supports up to 128 GB of off-chip memory; allocating
that eagerly is out of the question, so data lives in 64 KB pages
allocated on first touch.  Reads of untouched memory return zeros,
matching the simulator convention that fresh memory is zero-filled.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

PAGE_BITS = 16
PAGE_SIZE = 1 << PAGE_BITS


class SparseByteStore:
    """A byte array of ``capacity`` bytes, materialised page by page."""

    def __init__(self, capacity: int, name: str = "mem") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._pages: Dict[int, np.ndarray] = {}

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.capacity:
            raise IndexError(
                f"{self.name}: access [{addr:#x}, {addr + nbytes:#x}) outside "
                f"capacity {self.capacity:#x}")

    def read(self, addr: int, nbytes: int) -> np.ndarray:
        """Return ``nbytes`` bytes starting at ``addr`` as uint8."""
        self._check(addr, nbytes)
        # Fast path: the access stays within one page (the common case
        # for sub-64KB reads, e.g. embedding rows and operand tiles).
        offset = addr & (PAGE_SIZE - 1)
        if offset + nbytes <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_BITS)
            if page is None:
                return np.zeros(nbytes, dtype=np.uint8)
            return page[offset:offset + nbytes].copy()
        out = np.zeros(nbytes, dtype=np.uint8)
        pos = 0
        while pos < nbytes:
            page_idx, offset = divmod(addr + pos, PAGE_SIZE)
            chunk = min(nbytes - pos, PAGE_SIZE - offset)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos:pos + chunk] = page[offset:offset + chunk]
            pos += chunk
        return out

    def write(self, addr: int, data: np.ndarray) -> None:
        """Write ``data`` (any dtype; viewed as bytes) at ``addr``."""
        data = np.ascontiguousarray(data)
        raw = data.view(np.uint8).reshape(-1)
        nbytes = raw.size
        self._check(addr, nbytes)
        pos = 0
        while pos < nbytes:
            page_idx, offset = divmod(addr + pos, PAGE_SIZE)
            chunk = min(nbytes - pos, PAGE_SIZE - offset)
            page = self._pages.get(page_idx)
            if page is None:
                page = np.zeros(PAGE_SIZE, dtype=np.uint8)
                self._pages[page_idx] = page
            page[offset:offset + chunk] = raw[pos:pos + chunk]
            pos += chunk

    def read_array(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        """Read a contiguous numpy array of ``shape``/``dtype`` at ``addr``."""
        np_dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * np_dtype.itemsize
        return self.read(addr, nbytes).view(np_dtype).reshape(shape)

    @property
    def touched_bytes(self) -> int:
        """Bytes of backing memory actually materialised."""
        return len(self._pages) * PAGE_SIZE
