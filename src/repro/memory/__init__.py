"""Memory subsystem models: PE-local memory, on-chip SRAM, off-chip DRAM.

The hierarchy follows Section 3.3/3.4 of the paper:

* each PE has 128 KB of banked local memory fronted by circular buffers;
* 128 MB of on-chip SRAM sits in slices around the grid and can run as
  an addressable scratchpad or as a memory-side cache (four slices per
  DRAM controller);
* four LPDDR5 controllers per side provide 176 GB/s of theoretical
  off-chip bandwidth.

Data is held functionally in sparse byte stores; timing is charged on
per-component :class:`repro.sim.Resource` bandwidth models plus access
latencies.
"""

from repro.memory.address_map import AddressMap, AddressRange
from repro.memory.backing_store import SparseByteStore
from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.dram import DRAMModel
from repro.memory.local_memory import LocalMemory
from repro.memory.sram import SRAMMode, SRAMModel
from repro.memory.system import MemorySystem

__all__ = [
    "AddressMap",
    "AddressRange",
    "CacheStats",
    "DRAMModel",
    "LocalMemory",
    "MemorySystem",
    "SetAssociativeCache",
    "SparseByteStore",
    "SRAMMode",
    "SRAMModel",
]
