"""Set-associative cache model with LRU replacement.

Used in two places:

* the on-chip SRAM in memory-side cache mode (Section 3.4), where each
  slice caches the address range of its associated DRAM controller;
* the DPE operand cache (Section 3.5, "Caching"), which holds recently
  used A/B operand blocks and skips local-memory reads on a hit.

The cache is *tag-only*: data always lives in the backing store, so a
hit/miss decision only affects timing and bandwidth accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A classic tag-only set-associative LRU cache.

    ``capacity_bytes / (line_bytes * ways)`` must be a positive power of
    two for the index hash to be well distributed; we only require it to
    be positive.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64,
                 ways: int = 8, write_allocate: bool = True,
                 name: str = "cache") -> None:
        if capacity_bytes < line_bytes * ways:
            raise ValueError("cache smaller than a single set")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        self.write_allocate = write_allocate
        self.name = name
        self.stats = CacheStats()
        # Each set is an OrderedDict mapping tag -> dirty flag; order is
        # LRU (oldest first).
        self._sets: Dict[int, OrderedDict] = {}

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def _set(self, index: int) -> OrderedDict:
        s = self._sets.get(index)
        if s is None:
            s = OrderedDict()
            self._sets[index] = s
        return s

    def _touch(self, s: OrderedDict, tag: int) -> None:
        s.move_to_end(tag)

    def _fill(self, s: OrderedDict, tag: int, dirty: bool) -> None:
        if len(s) >= self.ways:
            _, victim_dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        s[tag] = dirty

    def access(self, addr: int, nbytes: int, is_write: bool = False) -> Tuple[int, int]:
        """Access ``[addr, addr+nbytes)``; returns (hit_lines, miss_lines).

        Every line touched is counted once.  Write misses allocate when
        ``write_allocate`` is set, otherwise they bypass the cache.
        """
        line_bytes = self.line_bytes
        first = addr // line_bytes
        last = (addr + nbytes - 1) // line_bytes if nbytes > 1 else first
        num_sets = self.num_sets
        sets = self._sets
        stats = self.stats
        # Inlined _locate/_set/_touch/_fill: this loop runs once per 64 B
        # fragment of every cached DRAM access, so attribute chases and
        # helper-call overhead dominate the model cost at this scale.
        # Interleave-split fragments never straddle a line, so the
        # single-line case skips the range loop entirely.
        if first == last:
            index = first % num_sets
            tag = first // num_sets
            s = sets.get(index)
            if s is None:
                s = OrderedDict()
                sets[index] = s
            if tag in s:
                stats.hits += 1
                s.move_to_end(tag)
                if is_write:
                    s[tag] = True
                return 1, 0
            stats.misses += 1
            if not is_write or self.write_allocate:
                if len(s) >= self.ways:
                    _, victim_dirty = s.popitem(last=False)
                    stats.evictions += 1
                    if victim_dirty:
                        stats.writebacks += 1
                s[tag] = is_write
            return 0, 1
        hits = misses = 0
        for line in range(first, last + 1):
            index = line % num_sets
            tag = line // num_sets
            s = sets.get(index)
            if s is None:
                s = OrderedDict()
                sets[index] = s
            if tag in s:
                stats.hits += 1
                hits += 1
                s.move_to_end(tag)
                if is_write:
                    s[tag] = True
            else:
                stats.misses += 1
                misses += 1
                if not is_write or self.write_allocate:
                    if len(s) >= self.ways:
                        _, victim_dirty = s.popitem(last=False)
                        stats.evictions += 1
                        if victim_dirty:
                            stats.writebacks += 1
                    s[tag] = is_write
        return hits, misses

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup of the line containing ``addr``."""
        index, tag = self._locate((addr // self.line_bytes) * self.line_bytes)
        return tag in self._sets.get(index, ())

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns True if present."""
        index, tag = self._locate((addr // self.line_bytes) * self.line_bytes)
        s = self._sets.get(index)
        if s is not None and tag in s:
            del s[tag]
            return True
        return False

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines written back."""
        dirty = sum(1 for s in self._sets.values() for d in s.values() if d)
        self.stats.writebacks += dirty
        self._sets.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets.values())
