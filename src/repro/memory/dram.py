"""Off-chip LPDDR5 DRAM model.

Four controllers on each side of the grid, 16 channels in total,
176 GB/s of theoretical aggregate bandwidth (Table I).  Addresses are
line-interleaved across channels (:mod:`repro.memory.address_map`), so
a streaming access naturally spreads over all controllers, while small
random accesses (the EmbeddingBag pattern, Section 7 "Memory Latency")
pay the access latency and achieve a configurable fraction of peak.
"""

from __future__ import annotations

from typing import Dict, Generator, List

import numpy as np

from repro.config import ChipConfig
from repro.memory.address_map import AddressMap
from repro.memory.backing_store import SparseByteStore
from repro.sim import Engine, Resource, StatGroup


class DRAMModel:
    """Timing + functional model of the off-chip memory."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 address_map: AddressMap) -> None:
        self.engine = engine
        self.config = config
        self.address_map = address_map
        self.store = SparseByteStore(config.dram.capacity_bytes, "dram")
        self.stats = StatGroup("dram")
        per_controller = (config.dram.bytes_per_cycle(config.frequency_ghz)
                          / config.dram.num_controllers)
        self.controllers: List[Resource] = [
            Resource(engine, per_controller, f"dram.ctrl{i}",
                     stall_cause="dram_queue")
            for i in range(config.dram.num_controllers)
        ]
        self._xfer_names = [f"dram.ctrl{i}.xfer"
                            for i in range(config.dram.num_controllers)]
        self._ctrl_bytes_memo: Dict[tuple, Dict[int, int]] = {}

    def _controller_bytes(self, fragments) -> Dict[int, int]:
        """Bytes of an access handled by each controller.

        ``fragments`` is an iterable of contiguous (addr, nbytes) pieces
        (a strided 2D DMA contributes one fragment per row).  Pure
        accounting over the fixed address map, so results are memoised;
        callers must not mutate the returned dict.
        """
        key = tuple(fragments)
        memo = self._ctrl_bytes_memo
        split = memo.get(key)
        if split is not None:
            return split
        split = {}
        amap = self.address_map
        split_lines = amap.split_by_interleave
        ctrl_of = amap.dram_controller
        for addr, nbytes in fragments:
            for frag_addr, frag_len in split_lines(addr, nbytes):
                ctrl = ctrl_of(frag_addr)
                split[ctrl] = split.get(ctrl, 0) + frag_len
        if len(memo) < 4096:
            memo[key] = split
        return split

    def transfer_fragments(self, fragments, is_write: bool) -> Generator:
        """Process: charge bandwidth + latency for a multi-fragment access."""
        fragments = list(fragments)
        total = sum(n for _, n in fragments)
        self.stats.add("write_bytes" if is_write else "read_bytes", total)
        self.stats.add("accesses")
        split = self._controller_bytes(fragments)
        done = []
        names = self._xfer_names
        controllers = self.controllers
        for ctrl, ctrl_bytes in split.items():
            done.append(controllers[ctrl].charge(ctrl_bytes, names[ctrl]))
        yield self.engine.all_of(done)
        yield self.config.dram.access_latency
        faults = self.engine.faults
        if faults is not None:
            # ECC correctable/uncorrectable windows: the access "is
            # always completed after the last piece of data arrives",
            # so the worst touched controller sets the retry penalty.
            now = self.engine.now
            extra = 0.0
            worst = 0
            for ctrl in split:
                penalty = faults.dram_penalty(ctrl, now)
                if penalty > extra:
                    extra, worst = penalty, ctrl
            if extra:
                self.stats.add("fault_stall_cycles", extra)
                self.engine.obs.stall(f"dram.ctrl{worst}", "dram_ecc_retry",
                                      now, now + extra)
                yield extra

    def _transfer(self, addr: int, nbytes: int, is_write: bool) -> Generator:
        yield from self.transfer_fragments([(addr, nbytes)], is_write)

    def read(self, addr: int, nbytes: int) -> Generator:
        """Process: read ``nbytes`` at ``addr``; returns the data."""
        yield from self._transfer(addr, nbytes, is_write=False)
        return self.store.read(addr, nbytes)

    def write(self, addr: int, data: np.ndarray) -> Generator:
        """Process: write ``data`` at ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        yield from self._transfer(addr, raw.size, is_write=True)
        self.store.write(addr, raw)

    def peek(self, addr: int, nbytes: int) -> np.ndarray:
        """Zero-time functional read (host access / test inspection)."""
        return self.store.read(addr, nbytes)

    def poke(self, addr: int, data: np.ndarray) -> None:
        """Zero-time functional write (host access / initialisation)."""
        self.store.write(addr, data)

    def utilization(self) -> float:
        """Mean controller utilisation since time zero."""
        if not self.controllers:
            return 0.0
        return sum(c.utilization() for c in self.controllers) / len(self.controllers)
