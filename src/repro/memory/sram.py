"""On-chip SRAM model: scratchpad mode and memory-side cache mode.

128 MB organised as slices around the grid perimeter (Section 3.4).
In *scratchpad* mode the SRAM occupies its own address range and is
explicitly managed by the compiler's tensor-placement pass.  In *cache*
mode the slices front the DRAM controllers (four slices per controller)
and hits are served at SRAM bandwidth/latency.

The paper's Section 7 ("Memory Latency") highlights that perimeter
placement creates non-uniform access latency; we model this with a
per-slice distance term supplied by the requester's grid position.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.config import ChipConfig
from repro.memory.address_map import AddressMap
from repro.memory.backing_store import SparseByteStore
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DRAMModel
from repro.sim import Engine, Resource, StatGroup


class SRAMMode(enum.Enum):
    SCRATCHPAD = "scratchpad"
    CACHE = "cache"


class SRAMModel:
    """Timing + functional model of the sliced on-chip SRAM."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 address_map: AddressMap, dram: DRAMModel,
                 mode: SRAMMode = SRAMMode.CACHE) -> None:
        self.engine = engine
        self.config = config
        self.address_map = address_map
        self.dram = dram
        self.mode = mode
        self.stats = StatGroup("sram")
        self.store = SparseByteStore(config.sram.capacity_bytes, "sram")
        per_slice = config.sram.bytes_per_cycle / config.sram.num_slices
        self.slices: List[Resource] = [
            Resource(engine, per_slice, f"sram.slice{i}",
                     stall_cause="sram_queue")
            for i in range(config.sram.num_slices)
        ]
        self._xfer_names = [f"sram.slice{i}.xfer"
                            for i in range(config.sram.num_slices)]
        #: memoised per-(slice, requester) latency — pure function of
        #: the frozen config, recomputed millions of times otherwise
        self._latency_memo: Dict[Tuple[int, Optional[Tuple[int, int]]], int] = {}
        self._slice_bytes_memo: Dict[tuple, Dict[int, int]] = {}
        slice_capacity = config.sram.capacity_bytes // config.sram.num_slices
        self.caches: List[SetAssociativeCache] = [
            SetAssociativeCache(slice_capacity,
                                line_bytes=config.sram.cache_line_bytes,
                                ways=config.sram.cache_ways,
                                name=f"sram.cache{i}")
            for i in range(config.sram.num_slices)
        ]

    # -- latency helpers -----------------------------------------------
    def _slice_latency(self, slice_index: int,
                       requester: Optional[Tuple[int, int]]) -> int:
        """Access latency including grid-position non-uniformity."""
        memo_key = (slice_index, requester)
        cached = self._latency_memo.get(memo_key)
        if cached is not None:
            return cached
        base = self.config.sram.base_latency
        if requester is None:
            self._latency_memo[memo_key] = base
            return base
        row, col = requester
        # Slices ring the grid; map slice index to a perimeter position
        # and charge Manhattan distance from the requesting PE.
        per_side = max(1, self.config.sram.num_slices // 4)
        side, pos = divmod(slice_index, per_side)
        scale = self.config.grid_cols / per_side
        anchor = int(pos * scale)
        if side == 0:      # north edge
            dist = row + abs(col - anchor)
        elif side == 1:    # east edge
            dist = (self.config.grid_cols - 1 - col) + abs(row - anchor)
        elif side == 2:    # south edge
            dist = (self.config.grid_rows - 1 - row) + abs(col - anchor)
        else:              # west edge
            dist = col + abs(row - anchor)
        latency = base + dist * self.config.sram.per_hop_latency
        self._latency_memo[memo_key] = latency
        return latency

    def _slice_bytes(self, fragments, for_dram: bool) -> Dict[int, int]:
        # Pure accounting over the fixed address map — memoised because
        # workloads re-issue the same fragment lists every iteration.
        # Callers must not mutate the returned dict.
        key = (for_dram, tuple(fragments))
        memo = self._slice_bytes_memo
        split = memo.get(key)
        if split is not None:
            return split
        split = {}
        amap = self.address_map
        locate = amap.cache_slice_for_dram if for_dram else amap.sram_slice
        split_lines = amap.split_by_interleave
        for addr, nbytes in fragments:
            for frag_addr, frag_len in split_lines(addr, nbytes):
                s = locate(frag_addr)
                split[s] = split.get(s, 0) + frag_len
        if len(memo) < 4096:
            memo[key] = split
        return split

    def _charge(self, split: Dict[int, int],
                requester: Optional[Tuple[int, int]]) -> Generator:
        """Charge bandwidth on every touched slice; wait for the last.

        The paper notes that a request "is always completed after the
        last piece of data arrives", so the access latency is the *max*
        over touched slices.
        """
        done = []
        worst_latency = 0
        names = self._xfer_names
        slices = self.slices
        for s, nbytes in split.items():
            done.append(slices[s].charge(nbytes, names[s]))
            latency = self._slice_latency(s, requester)
            if latency > worst_latency:
                worst_latency = latency
        yield self.engine.all_of(done)
        yield worst_latency
        faults = self.engine.faults
        if faults is not None:
            # Stalled-slice windows: like the base latency, the access
            # completes with its worst touched slice.
            now = self.engine.now
            extra = 0.0
            worst = 0
            for s in split:
                penalty = faults.sram_penalty(s, now)
                if penalty > extra:
                    extra, worst = penalty, s
            if extra:
                self.stats.add("fault_stall_cycles", extra)
                self.engine.obs.stall(f"sram.slice{worst}",
                                      "sram_fault_stall", now, now + extra)
                yield extra

    # -- scratchpad mode -------------------------------------------------
    def charge_fragments(self, fragments, is_write: bool,
                         requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: timing-only scratchpad access over fragments."""
        if self.mode is not SRAMMode.SCRATCHPAD:
            raise RuntimeError("scratchpad access while SRAM is in cache mode")
        fragments = list(fragments)
        total = sum(n for _, n in fragments)
        self.stats.add("write_bytes" if is_write else "read_bytes", total)
        yield from self._charge(self._slice_bytes(fragments, False), requester)

    def read(self, addr: int, nbytes: int,
             requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: scratchpad read; returns data."""
        yield from self.charge_fragments([(addr, nbytes)], False, requester)
        return self.store.read(self.address_map.sram_range.offset(addr), nbytes)

    def write(self, addr: int, data: np.ndarray,
              requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: scratchpad write."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        yield from self.charge_fragments([(addr, raw.size)], True, requester)
        self.store.write(self.address_map.sram_range.offset(addr), raw)

    def peek(self, addr: int, nbytes: int) -> np.ndarray:
        return self.store.read(self.address_map.sram_range.offset(addr), nbytes)

    def poke(self, addr: int, data: np.ndarray) -> None:
        self.store.write(self.address_map.sram_range.offset(addr), data)

    # -- cache mode ------------------------------------------------------
    def cached_fragments(self, fragments, is_write: bool,
                         requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: timing of a DRAM access through the memory-side cache.

        Hit lines are served from the owning slice; miss lines are
        fetched from DRAM (charging DRAM bandwidth) and filled.  Data
        itself always comes from the DRAM backing store — the cache is
        tag-only, which is exact because it is a *memory-side* cache
        (no stale copies are possible).
        """
        if self.mode is not SRAMMode.CACHE:
            raise RuntimeError("cached access while SRAM is in scratchpad mode")
        line = self.config.sram.cache_line_bytes
        hit_split: Dict[int, int] = {}
        miss_fragments = []
        amap = self.address_map
        split_lines = amap.split_by_interleave
        locate = amap.cache_slice_for_dram
        caches = self.caches
        hit_lines = miss_lines = 0
        for addr, nbytes in fragments:
            for frag_addr, frag_len in split_lines(addr, nbytes):
                s = locate(frag_addr)
                hits, misses = caches[s].access(frag_addr, frag_len,
                                                is_write)
                if misses:
                    miss_fragments.append((frag_addr, misses * line))
                    miss_lines += misses
                if hits:
                    hit_split[s] = hit_split.get(s, 0) + frag_len
                    hit_lines += hits
        if miss_lines:
            self.stats.add("miss_lines", miss_lines)
        if hit_lines:
            self.stats.add("hit_lines", hit_lines)
        waits = []
        if hit_split:
            waits.append(self.engine.process(
                self._charge(hit_split, requester), "sram.hit"))
        if miss_fragments:
            waits.append(self.engine.process(
                self.dram.transfer_fragments(miss_fragments, is_write),
                "sram.miss"))
        if waits:
            yield self.engine.all_of(waits)

    def cached_access(self, addr: int, nbytes: int, is_write: bool,
                      requester: Optional[Tuple[int, int]] = None) -> Generator:
        """Process: single-fragment cached access; returns data on reads."""
        yield from self.cached_fragments([(addr, nbytes)], is_write, requester)
        if is_write:
            return None
        return self.dram.store.read(addr, nbytes)

    def hit_rate(self) -> float:
        total = self.stats.get("hit_lines") + self.stats.get("miss_lines")
        return self.stats.get("hit_lines") / total if total else 0.0

    def flush_caches(self) -> int:
        """Invalidate all cache slices (returns dirty lines written back)."""
        return sum(c.flush() for c in self.caches)
