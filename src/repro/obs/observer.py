"""The engine-attached telemetry sink: stall attribution.

Every :class:`~repro.sim.Engine` owns an :class:`Observer` (disabled by
default, mirroring the :class:`~repro.sim.Tracer` no-op pattern).  When
enabled, hardware models report every cycle a track spends *waiting* —
and, crucially, **why**:

==================  =====================================================
cause               reported by
==================  =====================================================
``cb_element_wait``  a functional unit blocked on the CP's circular-
                     buffer *element* check (consumer starved)
``cb_space_wait``    a unit blocked on the CB *space* check (producer
                     backed up)
``dep_interlock``    a unit blocked on the Command Processor's CB-ID
                     dependency interlocks (program-order hazard)
``noc_link_arb``     a NoC row/column link arbitrating between requests
``dram_queue``       a DRAM controller serialising transfers
``sram_queue``       an SRAM slice serialising transfers
``lm_port_arb``      the PE local-memory port arbitrating clients
``fi_slot_wait``     the Fabric Interface out of outstanding-request
                     slots (memory-level-parallelism limit)
``dram_ecc_retry``   injected DRAM ECC correctable/uncorrectable retry
                     windows (:mod:`repro.faults`)
``sram_fault_stall`` an injected SRAM slice-stall window
``noc_retransmit``   injected NoC / reduction-network packet
                     retransmission
``pe_fault_stall``   injected PE lockup or dispatch slowdown
==================  =====================================================

Stall cycles land in the observer's :class:`MetricRegistry` under the
``stall_cycles`` counter family labelled ``track=...,cause=...``, so the
profiler can answer "why is this kernel slow?" per track, per PE, or
grid-wide.  When the engine's tracer is enabled too, each stall also
becomes a ``stall:<cause>`` span on the same timeline as the command
spans it delays.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricRegistry

#: The closed set of attribution causes (documentation + test anchor).
STALL_CAUSES: Tuple[str, ...] = (
    "cb_element_wait",
    "cb_space_wait",
    "dep_interlock",
    "noc_link_arb",
    "dram_queue",
    "sram_queue",
    "lm_port_arb",
    "fi_slot_wait",
    # injected by repro.faults (absent unless a FaultInjector is armed)
    "dram_ecc_retry",
    "sram_fault_stall",
    "noc_retransmit",
    "pe_fault_stall",
)


class Observer:
    """Collects stall attributions and ad-hoc counters for one engine.

    Disabled observers are no-ops and allocate nothing, so the
    instrumentation hooks can stay on the simulator hot path.  Enable
    with ``Accelerator(observe=True)`` (or construct directly and
    assign to ``engine.obs``).
    """

    def __init__(self, enabled: bool = False,
                 registry: Optional[MetricRegistry] = None,
                 tracer=None) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricRegistry()
        #: optional Tracer; stalls become ``stall:<cause>`` spans on it
        self.tracer = tracer
        self._stall_family = self.registry.counter(
            "stall_cycles", "idle cycles attributed to a named cause")
        #: (track, cause) -> Counter, bypassing label hashing per call
        self._stall_cache: Dict[Tuple[str, str], object] = {}

    # -- stall attribution ----------------------------------------------
    def stall(self, track: str, cause: str, start: float,
              end: float) -> None:
        """Attribute ``end - start`` idle cycles on ``track`` to ``cause``."""
        if not self.enabled or end <= start:
            return
        counter = self._stall_cache.get((track, cause))
        if counter is None:
            counter = self._stall_family.labels(track=track, cause=cause)
            self._stall_cache[(track, cause)] = counter
        counter.inc(end - start)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(track, f"stall:{cause}", start, end,
                               cause=cause)

    # -- ad-hoc instruments ----------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels) -> None:
        if not self.enabled:
            return
        self.registry.counter(name).labels(**labels).inc(amount)

    def gauge(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self.registry.gauge(name).labels(**labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self.registry.histogram(name).labels(**labels).observe(value)

    def observe_many(self, name: str, values, **labels) -> None:
        """Bulk histogram recording (vectorised; see observe_many)."""
        if not self.enabled:
            return
        self.registry.histogram(name).labels(**labels).observe_many(values)

    # -- queries ----------------------------------------------------------
    def stalls_by_cause(self) -> Dict[str, float]:
        """Grid-wide roll-up: total stall cycles per cause."""
        return {cause: total for (cause,), total in
                self.registry.rollup("stall_cycles", by=("cause",)).items()}

    def stalls_by_track(self) -> Dict[str, Dict[str, float]]:
        """Per-track attribution: track -> {cause: cycles}."""
        out: Dict[str, Dict[str, float]] = {}
        grouped = self.registry.rollup("stall_cycles", by=("track", "cause"))
        for (track, cause), total in grouped.items():
            out.setdefault(track, {})[cause] = total
        return out
