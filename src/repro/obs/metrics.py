"""Typed metrics registry: the numerical half of ``repro.obs``.

A :class:`MetricRegistry` owns named metric *families*; a family plus a
set of labels (``pe=3,unit=dpe``) identifies one *instrument*:

* :class:`Counter` — monotonically increasing totals (stall cycles,
  bytes moved, commands dispatched);
* :class:`Gauge` — last-value measurements (queue depth, utilisation);
* :class:`Histogram` — distributions (serving latency); keeps both the
  raw observations (exact percentiles — these are simulations, memory
  is cheap) and fixed bucket counts for the Prometheus export.

Labels are hierarchical by convention — a ``track`` label like
``pe3.dpe`` rolls up by prefix — and :meth:`MetricRegistry.rollup`
aggregates families over any label subset, which is how per-PE stall
counters become grid-level attributions.

Exporters: :meth:`~MetricRegistry.to_json` (machine-readable dump),
:meth:`~MetricRegistry.to_csv` (one row per labelled sample), and
:meth:`~MetricRegistry.to_prometheus` (text exposition format, so a
simulation sweep can be scraped like a production service).

Everything here is dependency-free and engine-agnostic: the simulator,
the analytical runtime, and the serving layer all record into the same
registry types.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency-style buckets (unit-agnostic; callers pick the unit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    25000, 50000, 100000, float("inf"))


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(key: LabelKey) -> str:
    """Render a label key the way the docs write it: ``pe=3,unit=dpe``."""
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-value measurement."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """A distribution: raw samples plus fixed cumulative buckets."""

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "samples", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        if self.buckets[-1] != float("inf"):
            self.buckets = self.buckets + (float("inf"),)
        self.bucket_counts = [0] * len(self.buckets)
        self.samples: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` — one vectorised pass over ``values``.

        Equivalent to ``for v in values: self.observe(v)`` but O(n log b)
        with numpy instead of O(n·b) Python-loop work; the serving
        simulator records thousands of request latencies per run, and
        the per-sample loop dominated metrics-on runs.
        """
        import numpy as np  # local: keep module import dependency-free
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        self.samples.extend(arr.tolist())
        self.sum += float(arr.sum())
        # observe() puts v in the first bucket with v <= bound, i.e. the
        # left insertion point into the sorted bound list.
        idx = np.searchsorted(np.asarray(self.buckets), arr, side="left")
        for i, n in enumerate(np.bincount(idx, minlength=len(self.buckets))):
            if n:
                self.bucket_counts[i] += int(n)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def value(self) -> float:
        """The scalar summary (mean) so histograms dump like the others."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile from the raw samples (q in [0, 100])."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if q <= 0:
            return ordered[0]
        if q >= 100:
            return ordered[-1]
        # Linear interpolation between closest ranks.
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1 - frac) + ordered[lo + 1] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All instruments sharing one metric name, keyed by label set."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelKey, object] = {}

    def labels(self, **labels):
        """The instrument for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self._buckets or DEFAULT_BUCKETS)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def get(self, **labels):
        """The instrument for this label set, or ``None`` if never used."""
        return self._children.get(_label_key(labels))

    def samples(self) -> Iterable[Tuple[LabelKey, object]]:
        return self._children.items()

    def total(self) -> float:
        """Sum of scalar values over every label set."""
        return sum(child.value for child in self._children.values())

    def __len__(self) -> int:
        return len(self._children)


class MetricRegistry:
    """A named collection of metric families."""

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._families: Dict[str, MetricFamily] = {}

    # -- family constructors (idempotent) -------------------------------
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._family(name, "histogram", help, buckets)

    # -- queries ---------------------------------------------------------
    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def rollup(self, name: str,
               by: Sequence[str] = ()) -> Dict[Tuple[str, ...], float]:
        """Aggregate a family's scalar values over a label subset.

        ``rollup("stall_cycles", by=("cause",))`` sums every labelled
        counter into one bucket per distinct ``cause`` value; ``by=()``
        gives the single grand total under the empty key.
        """
        family = self._families.get(name)
        out: Dict[Tuple[str, ...], float] = {}
        if family is None:
            return out
        for key, child in family.samples():
            labels = dict(key)
            group = tuple(labels.get(dim, "") for dim in by)
            out[group] = out.get(group, 0.0) + child.value
        return out

    # -- exporters -------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready dump: one entry per family, one per label set."""
        out: Dict = {"registry": self.name, "metrics": {}}
        for family in self._families.values():
            entries = []
            for key, child in sorted(family.samples()):
                entry: Dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update({
                        "count": child.count, "sum": child.sum,
                        "p50": child.p50, "p95": child.p95, "p99": child.p99,
                    })
                else:
                    entry["value"] = child.value
                entries.append(entry)
            out["metrics"][family.name] = {
                "type": family.kind, "help": family.help, "samples": entries}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """One row per labelled sample: ``metric,type,labels,value``."""
        lines = ["metric,type,labels,value"]
        for family in sorted(self._families.values(), key=lambda f: f.name):
            for key, child in sorted(family.samples()):
                labels = format_labels(key).replace('"', '""')
                lines.append(f'{family.name},{family.kind},"{labels}",'
                             f'{child.value:g}')
        return "\n".join(lines) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        def sanitize(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_"
                           for c in name)

        def label_str(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()
                      ) -> str:
            pairs = key + extra
            if not pairs:
                return ""
            body = ",".join(f'{sanitize(k)}="{v}"' for k, v in pairs)
            return "{" + body + "}"

        lines: List[str] = []
        prefix = sanitize(self.name)
        for family in sorted(self._families.values(), key=lambda f: f.name):
            metric = f"{prefix}_{sanitize(family.name)}"
            if family.help:
                lines.append(f"# HELP {metric} {family.help}")
            lines.append(f"# TYPE {metric} {family.kind}")
            for key, child in sorted(family.samples()):
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.bucket_counts):
                        cumulative += n
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(f"{metric}_bucket"
                                     f"{label_str(key, (('le', le),))} "
                                     f"{cumulative}")
                    lines.append(f"{metric}_sum{label_str(key)} "
                                 f"{child.sum:g}")
                    lines.append(f"{metric}_count{label_str(key)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{metric}{label_str(key)} {child.value:g}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Process-wide default registry (opt-in, mirroring Tracer's no-op default)
# ---------------------------------------------------------------------------

_DEFAULT: Optional[MetricRegistry] = None


def default_registry() -> Optional[MetricRegistry]:
    """The opt-in process-wide registry, or ``None`` when not enabled.

    Layers that accept ``registry=None`` fall back to this, so a single
    ``enable_default_registry()`` call (e.g. ``repro.report --metrics``)
    turns on metrics collection everywhere without threading a registry
    through every constructor.  Disabled by default: the hot path then
    records nothing.
    """
    return _DEFAULT


def enable_default_registry() -> MetricRegistry:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricRegistry("repro")
    return _DEFAULT


def disable_default_registry() -> None:
    global _DEFAULT
    _DEFAULT = None
