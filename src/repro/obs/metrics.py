"""Typed metrics registry: the numerical half of ``repro.obs``.

A :class:`MetricRegistry` owns named metric *families*; a family plus a
set of labels (``pe=3,unit=dpe``) identifies one *instrument*:

* :class:`Counter` — monotonically increasing totals (stall cycles,
  bytes moved, commands dispatched);
* :class:`Gauge` — last-value measurements (queue depth, utilisation);
* :class:`Histogram` — distributions (serving latency); in the default
  ``exact`` mode it keeps both the raw observations (exact percentiles)
  and fixed bucket counts for the Prometheus export; in ``sketch`` mode
  raw samples are replaced by a bounded-memory
  :class:`~repro.obs.sketch.QuantileSketch` (percentiles within a
  configured relative error, mergeable across replicas);
* sketch families (:meth:`MetricRegistry.sketch`) — standalone
  mergeable quantile sketches, exported as Prometheus summaries;
* time-series families (:meth:`MetricRegistry.timeseries`) — windowed
  :class:`~repro.obs.timeseries.WindowedSeries` for rates and
  percentile-over-time, exported one gauge sample per window.

**Exact-vs-sketch policy**: single-card simulations default to exact
histograms — memory is cheap and the conformance suite compares
percentiles bit-for-bit.  Fleet-scale paths (multi-replica serving,
the faults campaign, anything merged across ``--jobs`` workers) use
sketch mode / sketch families: bounded memory, deterministic merges.

Labels are hierarchical by convention — a ``track`` label like
``pe3.dpe`` rolls up by prefix — and :meth:`MetricRegistry.rollup`
aggregates families over any label subset, which is how per-PE stall
counters become grid-level attributions.

Exporters: :meth:`~MetricRegistry.to_json` (machine-readable dump),
:meth:`~MetricRegistry.to_csv` (one row per labelled sample), and
:meth:`~MetricRegistry.to_prometheus` (text exposition format, so a
simulation sweep can be scraped like a production service).

Everything here is dependency-free and engine-agnostic: the simulator,
the analytical runtime, and the serving layer all record into the same
registry types.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency-style buckets (unit-agnostic; callers pick the unit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    25000, 50000, 100000, float("inf"))


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(key: LabelKey) -> str:
    """Render a label key the way the docs write it: ``pe=3,unit=dpe``."""
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-value measurement."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """A distribution: fixed cumulative buckets plus either raw samples
    (``mode="exact"``) or a bounded-memory quantile sketch
    (``mode="sketch"``).

    The mode is an explicit policy choice, never inferred: exact keeps
    every observation (simulations, conformance comparisons), sketch
    bounds memory to O(buckets) with percentiles within
    ``relative_accuracy`` of exact (fleet-scale serving telemetry).
    """

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "samples", "sum", "mode",
                 "sketch", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 mode: str = "exact",
                 relative_accuracy: float = 0.01) -> None:
        if mode not in ("exact", "sketch"):
            raise ValueError(f"unknown histogram mode {mode!r}; "
                             "choose 'exact' or 'sketch'")
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        if self.buckets[-1] != float("inf"):
            self.buckets = self.buckets + (float("inf"),)
        self.bucket_counts = [0] * len(self.buckets)
        self.samples: List[float] = []
        self.sum = 0.0
        self.mode = mode
        self._count = 0
        if mode == "sketch":
            from repro.obs.sketch import QuantileSketch
            self.sketch = QuantileSketch(relative_accuracy)
        else:
            self.sketch = None

    def observe(self, value: float) -> None:
        value = float(value)
        if self.sketch is not None:
            self.sketch.add(value)
        else:
            self.samples.append(value)
        self._count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` — one vectorised pass over ``values``.

        Equivalent to ``for v in values: self.observe(v)`` but O(n log b)
        with numpy instead of O(n·b) Python-loop work; the serving
        simulator records thousands of request latencies per run, and
        the per-sample loop dominated metrics-on runs.
        """
        import numpy as np  # local: keep module import dependency-free
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if self.sketch is not None:
            self.sketch.add_many(arr)
        else:
            self.samples.extend(arr.tolist())
        self._count += int(arr.size)
        self.sum += float(arr.sum())
        # observe() puts v in the first bucket with v <= bound, i.e. the
        # left insertion point into the sorted bound list.
        idx = np.searchsorted(np.asarray(self.buckets), arr, side="left")
        for i, n in enumerate(np.bincount(idx, minlength=len(self.buckets))):
            if n:
                self.bucket_counts[i] += int(n)

    @property
    def count(self) -> int:
        return self._count

    @property
    def value(self) -> float:
        """The scalar summary (mean) so histograms dump like the others."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (in place; returns self).

        Modes and bucket bounds must match; sketch-mode merges are
        order-invariant on the sketch state (see
        :mod:`repro.obs.sketch`), exact-mode merges concatenate samples.
        """
        if other.mode != self.mode:
            raise ValueError(f"cannot merge {other.mode} histogram into "
                             f"{self.mode} histogram")
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        if self.sketch is not None:
            self.sketch.merge(other.sketch)
        else:
            self.samples.extend(other.samples)
        self._count += other._count
        self.sum += other.sum
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        return self

    def percentile(self, q: float) -> float:
        """Percentile (q in [0, 100]): exact from raw samples, or the
        sketch's relative-error estimate in sketch mode."""
        if self.sketch is not None:
            return self.sketch.percentile(q)
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if q <= 0:
            return ordered[0]
        if q >= 100:
            return ordered[-1]
        # Linear interpolation between closest ranks.
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1 - frac) + ordered[lo + 1] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All instruments sharing one metric name, keyed by label set."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 mode: str = "exact",
                 relative_accuracy: float = 0.01,
                 window_us: float = 50_000.0,
                 track_quantiles: bool = False) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._buckets = tuple(buckets) if buckets is not None else None
        self.mode = mode
        self.relative_accuracy = relative_accuracy
        self.window_us = window_us
        self.track_quantiles = track_quantiles
        self._children: Dict[LabelKey, object] = {}

    def labels(self, **labels):
        """The instrument for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self._buckets or DEFAULT_BUCKETS,
                                  mode=self.mode,
                                  relative_accuracy=self.relative_accuracy)
            elif self.kind == "sketch":
                from repro.obs.sketch import QuantileSketch
                child = QuantileSketch(self.relative_accuracy)
            elif self.kind == "timeseries":
                from repro.obs.timeseries import WindowedSeries
                child = WindowedSeries(
                    self.window_us,
                    track_quantiles=self.track_quantiles,
                    relative_accuracy=self.relative_accuracy,
                    name=self.name)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def get(self, **labels):
        """The instrument for this label set, or ``None`` if never used."""
        return self._children.get(_label_key(labels))

    def samples(self) -> Iterable[Tuple[LabelKey, object]]:
        return self._children.items()

    def total(self) -> float:
        """Sum of scalar values over every label set."""
        return sum(child.value for child in self._children.values())

    def __len__(self) -> int:
        return len(self._children)


class MetricRegistry:
    """A named collection of metric families."""

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._families: Dict[str, MetricFamily] = {}

    # -- family constructors (idempotent) -------------------------------
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None,
                **options) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, buckets, **options)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  mode: str = "exact",
                  relative_accuracy: float = 0.01) -> MetricFamily:
        return self._family(name, "histogram", help, buckets, mode=mode,
                            relative_accuracy=relative_accuracy)

    def sketch(self, name: str, help: str = "",
               relative_accuracy: float = 0.01) -> MetricFamily:
        """A mergeable quantile-sketch family (bounded memory)."""
        return self._family(name, "sketch", help,
                            relative_accuracy=relative_accuracy)

    def timeseries(self, name: str, help: str = "",
                   window_us: float = 50_000.0,
                   track_quantiles: bool = False,
                   relative_accuracy: float = 0.01) -> MetricFamily:
        """A windowed time-series family (rates / quantiles over time)."""
        return self._family(name, "timeseries", help,
                            window_us=window_us,
                            track_quantiles=track_quantiles,
                            relative_accuracy=relative_accuracy)

    # -- queries ---------------------------------------------------------
    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def rollup(self, name: str,
               by: Sequence[str] = ()) -> Dict[Tuple[str, ...], float]:
        """Aggregate a family's scalar values over a label subset.

        ``rollup("stall_cycles", by=("cause",))`` sums every labelled
        counter into one bucket per distinct ``cause`` value; ``by=()``
        gives the single grand total under the empty key.
        """
        family = self._families.get(name)
        out: Dict[Tuple[str, ...], float] = {}
        if family is None:
            return out
        for key, child in family.samples():
            labels = dict(key)
            group = tuple(labels.get(dim, "") for dim in by)
            out[group] = out.get(group, 0.0) + child.value
        return out

    # -- exporters -------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready dump: one entry per family, one per label set."""
        out: Dict = {"registry": self.name, "metrics": {}}
        for family in self._families.values():
            entries = []
            for key, child in sorted(family.samples()):
                entry: Dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update({
                        "count": child.count, "sum": child.sum,
                        "p50": child.p50, "p95": child.p95, "p99": child.p99,
                        "mode": child.mode,
                    })
                elif family.kind == "sketch":
                    entry.update(child.summary())
                elif family.kind == "timeseries":
                    entry.update(child.to_dict())
                else:
                    entry["value"] = child.value
                entries.append(entry)
            out["metrics"][family.name] = {
                "type": family.kind, "help": family.help, "samples": entries}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """One row per labelled sample: ``metric,type,labels,value``."""
        lines = ["metric,type,labels,value"]
        for family in sorted(self._families.values(), key=lambda f: f.name):
            for key, child in sorted(family.samples()):
                labels = format_labels(key).replace('"', '""')
                lines.append(f'{family.name},{family.kind},"{labels}",'
                             f'{child.value:g}')
        return "\n".join(lines) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        def sanitize(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_"
                           for c in name)

        def label_str(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()
                      ) -> str:
            pairs = key + extra
            if not pairs:
                return ""
            body = ",".join(f'{sanitize(k)}="{v}"' for k, v in pairs)
            return "{" + body + "}"

        lines: List[str] = []
        prefix = sanitize(self.name)
        for family in sorted(self._families.values(), key=lambda f: f.name):
            metric = f"{prefix}_{sanitize(family.name)}"
            if family.help:
                lines.append(f"# HELP {metric} {family.help}")
            # sketches export as the Prometheus summary type (quantile
            # labels); windowed series as one gauge sample per window
            kind = {"sketch": "summary",
                    "timeseries": "gauge"}.get(family.kind, family.kind)
            lines.append(f"# TYPE {metric} {kind}")
            for key, child in sorted(family.samples()):
                if family.kind == "sketch":
                    for q in (0.5, 0.95, 0.99):
                        lines.append(
                            f"{metric}"
                            f"{label_str(key, (('quantile', f'{q:g}'),))} "
                            f"{child.percentile(100 * q):g}")
                    lines.append(f"{metric}_sum{label_str(key)} "
                                 f"{child.sum:g}")
                    lines.append(f"{metric}_count{label_str(key)} "
                                 f"{child.count}")
                elif family.kind == "timeseries":
                    for index in child.window_indices():
                        start = index * child.window_us
                        lines.append(
                            f"{metric}"
                            f"{label_str(key, (('window_start_us', f'{start:g}'),))} "
                            f"{child.window(index).mean:g}")
                    lines.append(f"{metric}_count{label_str(key)} "
                                 f"{child.count}")
                elif family.kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.bucket_counts):
                        cumulative += n
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(f"{metric}_bucket"
                                     f"{label_str(key, (('le', le),))} "
                                     f"{cumulative}")
                    lines.append(f"{metric}_sum{label_str(key)} "
                                 f"{child.sum:g}")
                    lines.append(f"{metric}_count{label_str(key)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{metric}{label_str(key)} {child.value:g}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Process-wide default registry (opt-in, mirroring Tracer's no-op default)
# ---------------------------------------------------------------------------

_DEFAULT: Optional[MetricRegistry] = None


def default_registry() -> Optional[MetricRegistry]:
    """The opt-in process-wide registry, or ``None`` when not enabled.

    Layers that accept ``registry=None`` fall back to this, so a single
    ``enable_default_registry()`` call (e.g. ``repro.report --metrics``)
    turns on metrics collection everywhere without threading a registry
    through every constructor.  Disabled by default: the hot path then
    records nothing.
    """
    return _DEFAULT


def enable_default_registry() -> MetricRegistry:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricRegistry("repro")
    return _DEFAULT


def disable_default_registry() -> None:
    global _DEFAULT
    _DEFAULT = None
