"""Fixed-size windowed time series for fleet-scale telemetry.

Rates, gauges, and percentile-over-time for traces that are hours long
and millions of requests deep.  A :class:`WindowedSeries` buckets
observations into fixed-width time windows; each window keeps bounded
per-window statistics (count, sum, min, max, and optionally a
:class:`~repro.obs.sketch.QuantileSketch` for p50/p99-over-time), so
memory is O(windows), never O(samples).

Built for the diurnal million-user traces the fleet simulator will
generate:

* **Downsampling** — :meth:`downsample` folds adjacent windows into a
  coarser series (window counts add, sketches merge), and
  :meth:`resampled` picks the smallest power-of-two factor that fits a
  target window budget, so a 24-hour trace renders at any resolution.
* **Mergeable** — :meth:`merge` combines per-replica series window by
  window.  Counts are integers (exact); sums are floats and therefore
  merged deterministically *in call order* — the serving layer always
  merges replicas in index order, which is what makes ``--jobs 1`` and
  ``--jobs 4`` reports byte-identical.  Sketch state is fully
  order-invariant (see :mod:`repro.obs.sketch`).
* **Deterministic export** — :meth:`to_dict` walks windows in time
  order with canonical keys.

The window accumulator intentionally mirrors what production metric
pipelines ship between hosts: no raw samples leave a replica, only
mergeable window aggregates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = ["WindowStats", "WindowedSeries", "DEFAULT_WINDOW_US"]

DEFAULT_WINDOW_US = 50_000.0


class WindowStats:
    """Bounded accumulator for one time window."""

    __slots__ = ("count", "total", "min", "max", "sketch")

    def __init__(self, sketch: Optional[QuantileSketch] = None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sketch = sketch

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.sketch is not None:
            self.sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "WindowStats") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.sketch is not None and other.sketch is not None:
            self.sketch.merge(other.sketch)
        elif self.sketch is None and other.sketch is not None:
            self.sketch = other.sketch.copy()


class WindowedSeries:
    """Time-bucketed observations with bounded per-window state.

    ``window_us`` fixes the bucket width; ``track_quantiles`` attaches a
    per-window :class:`QuantileSketch` (α = ``relative_accuracy``) so
    the series can answer "what was the p99 *in this window*", not just
    the run-wide quantile.
    """

    def __init__(self, window_us: float = DEFAULT_WINDOW_US,
                 track_quantiles: bool = False,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 name: str = "") -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        self.track_quantiles = track_quantiles
        self.relative_accuracy = relative_accuracy
        self.name = name
        self._windows: Dict[int, WindowStats] = {}

    # -- ingest ----------------------------------------------------------
    def _window(self, index: int) -> WindowStats:
        stats = self._windows.get(index)
        if stats is None:
            sketch = (QuantileSketch(self.relative_accuracy)
                      if self.track_quantiles else None)
            stats = WindowStats(sketch)
            self._windows[index] = stats
        return stats

    def record(self, t_us: float, value: float = 1.0) -> None:
        """Observe ``value`` at time ``t_us`` (defaults to a count)."""
        self._window(int(t_us // self.window_us)).observe(float(value))

    def record_many(self, ts_us: Iterable[float],
                    values: Optional[Iterable[float]] = None) -> None:
        """Bulk :meth:`record`; ``values=None`` counts occurrences.

        Observations are ingested in the given order — bit-identical to
        the equivalent sequence of :meth:`record` calls (float sums are
        order-sensitive, so no internal reordering is allowed).
        """
        import numpy as np
        ts = np.asarray(ts_us, dtype=float).ravel()
        if ts.size == 0:
            return
        vals = (np.ones_like(ts) if values is None
                else np.asarray(values, dtype=float).ravel())
        if vals.shape != ts.shape:
            raise ValueError("ts_us and values must align")
        for t, v in zip(ts.tolist(), vals.tolist()):
            self.record(t, v)

    # -- structure -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._windows)

    @property
    def count(self) -> int:
        return sum(w.count for w in self._windows.values())

    @property
    def value(self) -> float:
        """Scalar summary (total count) for registry dumps/rollups."""
        return float(self.count)

    def window_indices(self) -> List[int]:
        return sorted(self._windows)

    def window(self, index: int) -> Optional[WindowStats]:
        return self._windows.get(index)

    @property
    def span_us(self) -> float:
        if not self._windows:
            return 0.0
        lo, hi = min(self._windows), max(self._windows)
        return (hi - lo + 1) * self.window_us

    # -- merge / downsample ---------------------------------------------
    def merge(self, other: "WindowedSeries") -> "WindowedSeries":
        """Fold another series in, window by window (in place)."""
        if other.window_us != self.window_us:
            raise ValueError(
                f"cannot merge series with different windows: "
                f"{self.window_us} vs {other.window_us}")
        for index, stats in other._windows.items():
            mine = self._windows.get(index)
            if mine is None:
                copy = WindowStats(stats.sketch.copy()
                                   if stats.sketch is not None else None)
                copy.count, copy.total = stats.count, stats.total
                copy.min, copy.max = stats.min, stats.max
                self._windows[index] = copy
            else:
                mine.merge(stats)
        return self

    def downsample(self, factor: int) -> "WindowedSeries":
        """A new series with windows ``factor`` times wider."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        out = WindowedSeries(self.window_us * factor,
                             track_quantiles=self.track_quantiles,
                             relative_accuracy=self.relative_accuracy,
                             name=self.name)
        for index in sorted(self._windows):
            stats = self._windows[index]
            target = out._window(index // factor)
            target.merge(stats)
        return out

    def resampled(self, max_windows: int) -> "WindowedSeries":
        """Downsample by the smallest power of two fitting the budget.

        Power-of-two factors keep downsampled window boundaries aligned
        across replicas, so a merged fleet series resamples identically
        to per-replica resampling.
        """
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        if not self._windows:
            return self.downsample(1)
        lo, hi = min(self._windows), max(self._windows)
        factor = 1
        while (hi // factor) - (lo // factor) + 1 > max_windows:
            factor *= 2
        return self.downsample(factor)

    # -- export ----------------------------------------------------------
    def rate_per_s(self, index: int) -> float:
        stats = self._windows.get(index)
        if stats is None:
            return 0.0
        return stats.count / (self.window_us / 1e6)

    def to_dict(self, include_sketch_state: bool = False) -> Dict:
        """Canonical JSON-ready dump, windows in time order."""
        windows = []
        for index in sorted(self._windows):
            stats = self._windows[index]
            row: Dict = {
                "index": index,
                "start_us": index * self.window_us,
                "count": stats.count,
                "sum": stats.total,
                "mean": stats.mean,
                "min": stats.min if stats.count else 0.0,
                "max": stats.max if stats.count else 0.0,
                "rate_per_s": self.rate_per_s(index),
            }
            if stats.sketch is not None:
                row["p50"] = stats.sketch.p50
                row["p95"] = stats.sketch.p95
                row["p99"] = stats.sketch.p99
                if include_sketch_state:
                    row["sketch"] = stats.sketch.to_dict()
            windows.append(row)
        return {"name": self.name,
                "window_us": self.window_us,
                "track_quantiles": self.track_quantiles,
                "total_count": self.count,
                "windows": windows}

    @classmethod
    def from_dict(cls, data: Dict) -> "WindowedSeries":
        """Rebuild a series from :meth:`to_dict` output.

        Per-window sketches are only restored when the dump was written
        with ``include_sketch_state=True``.
        """
        out = cls(data["window_us"],
                  track_quantiles=data.get("track_quantiles", False),
                  name=data.get("name", ""))
        for row in data["windows"]:
            stats = WindowStats(
                QuantileSketch.from_dict(row["sketch"])
                if "sketch" in row else None)
            stats.count = int(row["count"])
            stats.total = float(row["sum"])
            stats.min = float(row["min"]) if row["count"] else math.inf
            stats.max = float(row["max"]) if row["count"] else -math.inf
            out._windows[int(row["index"])] = stats
        return out

    def values(self, stat: str = "mean") -> List[float]:
        """One value per window in time order (for the detectors).

        ``stat`` is ``mean``, ``count``, ``rate``, ``min``, ``max``,
        ``p50``, ``p95``, or ``p99``.
        """
        out: List[float] = []
        for index in sorted(self._windows):
            stats = self._windows[index]
            if stat == "mean":
                out.append(stats.mean)
            elif stat == "count":
                out.append(float(stats.count))
            elif stat == "rate":
                out.append(self.rate_per_s(index))
            elif stat == "min":
                out.append(stats.min if stats.count else 0.0)
            elif stat == "max":
                out.append(stats.max if stats.count else 0.0)
            elif stat in ("p50", "p95", "p99"):
                if stats.sketch is None:
                    raise ValueError(
                        "per-window quantiles need track_quantiles=True")
                out.append(stats.sketch.percentile(float(stat[1:])))
            else:
                raise ValueError(f"unknown stat {stat!r}")
        return out

    def __repr__(self) -> str:
        return (f"WindowedSeries(window_us={self.window_us:g}, "
                f"windows={len(self)}, count={self.count})")
