"""Causal critical-path profiling over the DES event graph.

The union-accounted profiler (:mod:`repro.obs.profiler`) answers *where
time went*; this module answers *what gated the finish time*.  MTIA's
operators are concurrent pipelines — DMA vs. compute vs. NoC vs. DRAM —
so a roofline-style analysis needs the critical path through the
dependency DAG, not an overlap breakdown.

Three layers:

* :class:`EdgeRecorder` — opt-in dependency-edge recording inside the
  engine.  Every scheduled callback (one *node* per engine ticket)
  records its triggering *parent*: the node that was executing when it
  was scheduled — a plain callback, an event wakeup, a resource grant,
  a process spawn, or a timed delay.  Recording never schedules
  anything and never draws an extra ticket, so the simulated event
  stream is bit-identical with recording on or off (the conformance
  ``determinism`` pillar proves the *off* case is byte-identical and
  the *on* case result-identical).
* :func:`extract_critical_path` — walks the edge DAG backward from any
  completion node.  Consecutive node times tile the interval
  ``[root, completion]`` exactly (segments share boundary floats), so
  the critical-segment sum *is* ``completion - root`` — the path-sum
  invariant is IEEE-exact, not approximate.
* :func:`serving_critical_path` / :func:`fleet_critical_path` — the
  same path shape reconstructed for the analytical serving/fleet
  simulators from their exact per-request arrays.  ``path.total`` is
  computed with the *same* float operations the simulator used to
  store ``latencies_us``, so ``path.total == latencies_us[r]`` holds
  bit-for-bit under every routing policy and fault plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EdgeRecorder", "Segment", "CriticalPath", "CriticalPathError",
           "classify_label", "extract_critical_path",
           "serving_critical_path", "fleet_critical_path",
           "slowest_critical_paths"]


class CriticalPathError(ValueError):
    """A critical path violated its structural invariants."""


# ---------------------------------------------------------------------------
# resource classification
# ---------------------------------------------------------------------------

#: compute-unit name fragments (PE pipelines and sequencers)
_COMPUTE_TOKENS = (".dpe", ".se", ".mlu", ".re", ".fi", "sched")


def classify_label(label: str, kind: str = "") -> str:
    """Map a node label (event/process/resource name) to a resource.

    Labels follow the hardware models' naming conventions —
    ``dram.ctrl0.xfer``, ``sram.slice3.xfer``, ``noc.row1``,
    ``pe00.lm.port``, ``rednet.inbox5.get``, ``*.acquire`` semaphore
    grants — so a prefix/suffix match is exact, not heuristic.
    """
    if label.startswith("dram."):
        return "dram"
    if label.startswith("sram."):
        return "sram"
    if label.startswith("noc."):
        return "noc"
    if label.startswith("rednet"):
        return "rednet"
    if label.startswith("regnet"):
        return "regnet"
    if ".lm." in label or label.endswith(".lm"):
        return "local_memory"
    if label.endswith(".acquire"):
        return "semaphore"
    if label.endswith(".put") or label.endswith(".get"):
        return "queue"
    if label.startswith("timeout("):
        return "wait"
    if label.startswith(("firmware", "control", "cp.")):
        return "control"
    if any(token in label for token in _COMPUTE_TOKENS):
        return "compute"
    return "other"


def _label_of(callback: Callable) -> str:
    """Best label for a scheduled callback, by introspection.

    Bound methods of named objects (events, processes, resources) label
    as the owner's name; ``functools.partial`` unwraps to its target;
    anything else falls back to the qualified function name.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "")
        if name:
            return name
        return f"{type(owner).__name__}.{callback.__name__}"
    inner = getattr(callback, "func", None)   # functools.partial
    if inner is not None:
        return _label_of(inner)
    return getattr(callback, "__qualname__",
                   getattr(callback, "__name__", "callback"))


# ---------------------------------------------------------------------------
# the edge recorder (engine-attached, opt-in)
# ---------------------------------------------------------------------------

class EdgeRecorder:
    """Dependency edges of one simulated run, keyed by engine ticket.

    Attached via ``engine.edges = EdgeRecorder()`` (or
    ``Accelerator(record_edges=True)``).  The engine calls the ``on_*``
    hooks at every ticket draw and every callback execution; with
    ``engine.edges is None`` (the default) each hook site costs one
    attribute check and the event stream is bit-identical to a kernel
    without the hooks at all.

    Node state is parallel dicts (tickets are not dense when the
    recorder attaches mid-run):

    * ``parent[t]`` — the node executing when ``t`` was scheduled
      (``None`` for host-code roots),
    * ``kind[t]`` — ``spawn`` / ``callback`` / ``wakeup`` / ``delay``,
    * ``label[t]`` — the event/process/resource name behind the edge,
    * ``wait_parent[t]`` — for wakeups: the node that *registered* the
      wait (the what-if projector needs both constraints),
    * ``time[t]`` / ``order`` — execution time and global execution
      order (parents always execute before children: the DAG check).
    """

    __slots__ = ("parent", "kind", "label", "wait_parent", "time",
                 "order", "resource", "service", "current",
                 "_registrations", "_pending_charge")

    def __init__(self) -> None:
        self.parent: Dict[int, Optional[int]] = {}
        self.kind: Dict[int, str] = {}
        self.label: Dict[int, str] = {}
        self.wait_parent: Dict[int, int] = {}
        self.time: Dict[int, float] = {}
        self.order: List[int] = []
        #: delay edges backed by a Resource reservation: ticket ->
        #: resource name / pure service cycles (queue wait is the rest
        #: of the edge) — lets the what-if projector replay the
        #: resource's queue recurrence instead of scaling queue time
        self.resource: Dict[int, str] = {}
        self.service: Dict[int, float] = {}
        #: ticket of the currently-executing node (None in host code)
        self.current: Optional[int] = None
        #: per live event: waiter nodes in registration order
        self._registrations: Dict[int, List[int]] = {}
        self._pending_charge: Optional[tuple] = None

    # -- engine hooks ----------------------------------------------------
    def on_schedule(self, ticket: int, callback: Callable,
                    delay: float) -> None:
        """A callback was scheduled ``delay`` cycles ahead (0 = now)."""
        self.parent[ticket] = self.current
        self.kind[ticket] = "delay" if delay > 0 else "callback"
        self.label[ticket] = _label_of(callback)
        pending = self._pending_charge
        if pending is not None:
            self._pending_charge = None
            self.resource[ticket] = pending[0]
            self.service[ticket] = pending[1]

    def on_charge(self, resource: str, service: float) -> None:
        """A :class:`~repro.sim.resources.Resource` reservation was
        made; the caller's next ``schedule`` call is its completion."""
        self._pending_charge = (resource, service)

    def on_spawn(self, ticket: int, name: str) -> None:
        """A new process's start callback was enqueued."""
        self.parent[ticket] = self.current
        self.kind[ticket] = "spawn"
        self.label[ticket] = name

    def on_wait(self, event: Any) -> None:
        """A callback was registered on a pending event.

        Host-code registrations (``current is None``) still occupy a
        slot so wakeups pair with their registrants positionally.
        """
        self._registrations.setdefault(id(event), []).append(self.current)

    def on_wakeup(self, ticket: int, event: Any) -> None:
        """A triggered event enqueued one waiter callback."""
        self.parent[ticket] = self.current
        self.kind[ticket] = "wakeup"
        self.label[ticket] = getattr(event, "name", "") or "event"
        waiting = self._registrations.get(id(event))
        if waiting:
            registrant = waiting.pop(0)
            if not waiting:
                del self._registrations[id(event)]
            if registrant is not None:
                self.wait_parent[ticket] = registrant

    def on_execute(self, ticket: int, now: float) -> None:
        """The run loop is about to execute node ``ticket``."""
        self.time[ticket] = now
        self.order.append(ticket)
        self.current = ticket

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.order)

    def stats(self) -> Dict:
        kinds: Dict[str, int] = {}
        for ticket in self.order:
            k = self.kind.get(ticket, "?")
            kinds[k] = kinds.get(k, 0) + 1
        return {"nodes": len(self.order),
                "scheduled": len(self.parent),
                "kinds": {k: kinds[k] for k in sorted(kinds)},
                "charges": len(self.resource),
                "pending_waits": sum(len(v) for v
                                     in self._registrations.values())}


# ---------------------------------------------------------------------------
# path representation
# ---------------------------------------------------------------------------

@dataclass
class Segment:
    """One critical interval: ``[start, end]`` attributed to a resource.

    ``duration == end - start`` always; segments of a path share their
    boundary floats, so consecutive durations telescope exactly.
    """

    start: float
    end: float
    duration: float
    resource: str
    kind: str
    label: str

    def to_dict(self) -> Dict:
        return {"start": self.start, "end": self.end,
                "duration": self.duration, "resource": self.resource,
                "kind": self.kind, "label": self.label}


@dataclass
class CriticalPath:
    """The gating chain from a root to one completion.

    Invariants (:meth:`verify` raises on violation):

    * segments tile: ``segments[i].start == segments[i-1].end`` exactly;
    * every ``duration == end - start`` exactly;
    * ``total == end - start`` (bit-exact for DES and serving paths;
      fleet paths compose ``total`` with the simulator's own
      ``(route + hedge) + local`` op tree, equal in exact arithmetic).
    """

    unit: str                       #: "cycles" (DES) or "us" (serving)
    total: float
    start: float
    end: float
    segments: List[Segment]
    nodes: List[int] = field(default_factory=list)
    attrs: Dict = field(default_factory=dict)

    def verify(self) -> "CriticalPath":
        cursor = self.start
        for i, seg in enumerate(self.segments):
            if seg.start != cursor:
                raise CriticalPathError(
                    f"segment {i} starts at {seg.start!r}, expected "
                    f"{cursor!r} (segments must tile)")
            if seg.end < seg.start:
                raise CriticalPathError(
                    f"segment {i} runs backward: {seg.start!r} -> "
                    f"{seg.end!r}")
            if seg.duration != seg.end - seg.start:
                raise CriticalPathError(
                    f"segment {i} duration {seg.duration!r} != "
                    f"end - start")
            cursor = seg.end
        if cursor != self.end:
            raise CriticalPathError(
                f"segments end at {cursor!r}, path ends at {self.end!r}")
        span = self.end - self.start
        tolerance = 1e-9 * max(1.0, abs(self.total))
        if abs(self.total - span) > tolerance:
            raise CriticalPathError(
                f"total {self.total!r} diverges from span {span!r}")
        return self

    # -- views -----------------------------------------------------------
    def condensed(self) -> List[Segment]:
        """Adjacent same-(resource, label) segments merged, zero-width
        segments dropped.  Tiling is preserved across the kept segments
        (a dropped segment has ``start == end``)."""
        merged: List[Segment] = []
        for seg in self.segments:
            if (merged and merged[-1].resource == seg.resource
                    and merged[-1].label == seg.label):
                prev = merged[-1]
                merged[-1] = Segment(prev.start, seg.end,
                                     seg.end - prev.start,
                                     seg.resource, seg.kind, seg.label)
            else:
                merged.append(seg)
        return [seg for seg in merged if seg.duration > 0.0]

    def by_resource(self) -> Dict[str, float]:
        """Critical time per resource, largest first (fsum — exact for
        the integer-cycle DES, deterministic always)."""
        buckets: Dict[str, List[float]] = {}
        for seg in self.segments:
            buckets.setdefault(seg.resource, []).append(seg.duration)
        totals = {name: math.fsum(values)
                  for name, values in buckets.items()}
        return dict(sorted(totals.items(),
                           key=lambda item: (-item[1], item[0])))

    def to_dict(self, max_segments: int = 200) -> Dict:
        condensed = self.condensed()
        return {
            "unit": self.unit,
            "total": self.total,
            "start": self.start,
            "end": self.end,
            "num_segments": len(self.segments),
            "num_condensed": len(condensed),
            "by_resource": self.by_resource(),
            "segments": [seg.to_dict()
                         for seg in condensed[:max_segments]],
            "attrs": dict(self.attrs),
        }

    def to_text(self, top: int = 10) -> str:
        lines = [f"critical path: {self.total:g} {self.unit} "
                 f"over {len(self.segments)} segments "
                 f"({len(self.condensed())} condensed)"]
        for resource, value in list(self.by_resource().items())[:top]:
            share = 100.0 * value / self.total if self.total else 0.0
            lines.append(f"  {resource:<14}{value:>14.1f} {self.unit}"
                         f"  {share:5.1f} %")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# DES extraction
# ---------------------------------------------------------------------------

def extract_critical_path(edges: EdgeRecorder,
                          completion: Optional[int] = None,
                          unit: str = "cycles") -> CriticalPath:
    """Walk the edge DAG backward from ``completion`` (default: the
    last node executed) and return the gating chain.

    Each backward step follows ``parent`` — the node that *triggered*
    this one, which by construction executed at or before it — so the
    chain's times are monotone and its segments tile
    ``[t(root), t(completion)]`` exactly.
    """
    if not edges.order:
        raise CriticalPathError("edge recorder saw no executed nodes")
    node: Optional[int] = (edges.order[-1] if completion is None
                           else completion)
    if node not in edges.time:
        raise CriticalPathError(f"completion node {node} never executed")
    chain: List[int] = []
    seen = set()
    while node is not None:
        if node in seen:
            raise CriticalPathError(f"cycle through node {node}")
        seen.add(node)
        chain.append(node)
        node = edges.parent.get(node)
        if node is not None and node not in edges.time:
            node = None         # parent scheduled but cut off by `until`
    chain.reverse()
    times = edges.time
    segments: List[Segment] = []
    for prev, cur in zip(chain, chain[1:]):
        label = edges.label.get(cur, "?")
        kind = edges.kind.get(cur, "?")
        # A delay edge backed by a Resource reservation attributes to
        # that resource even when the label is the waiting process
        # (e.g. a PE pipeline yielding on its local-memory port).
        charged = edges.resource.get(cur)
        bucket = classify_label(charged if charged is not None else label,
                                kind)
        lo, hi = times[prev], times[cur]
        segments.append(Segment(lo, hi, hi - lo, bucket, kind,
                                charged if charged is not None else label))
    total = times[chain[-1]] - times[chain[0]]
    path = CriticalPath(unit=unit, total=total, start=times[chain[0]],
                        end=times[chain[-1]], segments=segments,
                        nodes=list(chain),
                        attrs={"completion": chain[-1],
                               "root": chain[0],
                               "nodes": len(chain)})
    return path.verify()


# ---------------------------------------------------------------------------
# serving / fleet reconstruction
# ---------------------------------------------------------------------------

def _queue_segments(report, k: int, lo: float, hi: float) -> List[Segment]:
    """Subdivide a queue-wait window by head-of-line predecessor batches.

    The device serializes batches, so the wait between batch formation
    and dispatch is mostly predecessors executing; clipping their
    dispatch windows into ``[lo, hi]`` attributes that time causally.
    Boundaries are shared floats from the batch records, so the pieces
    tile exactly; anything uncovered stays ``device.queue``.
    """
    if hi <= lo:
        return []
    pieces: List[Tuple[float, float, int]] = []
    j = k - 1
    while j >= 0:
        batch = report.batches[j]
        dispatch = float(batch.dispatch_us)
        finish = float(batch.finish_us)
        if finish <= lo:
            break
        piece_lo, piece_hi = max(lo, dispatch), min(hi, finish)
        if piece_hi > piece_lo:
            pieces.append((piece_lo, piece_hi, j))
        j -= 1
    pieces.reverse()
    segments: List[Segment] = []
    cursor = lo
    for piece_lo, piece_hi, j in pieces:
        piece_lo = max(piece_lo, cursor)   # overlapping multi-card windows
        if piece_hi <= piece_lo:
            continue
        if piece_lo > cursor:
            segments.append(Segment(cursor, piece_lo, piece_lo - cursor,
                                    "device.queue", "queue_wait",
                                    "queue_wait"))
        segments.append(Segment(piece_lo, piece_hi, piece_hi - piece_lo,
                                "device", "queue_wait", f"batch{j}"))
        cursor = piece_hi
    if hi > cursor:
        segments.append(Segment(cursor, hi, hi - cursor, "device.queue",
                                "queue_wait", "queue_wait"))
    return segments


def serving_critical_path(report, r: int) -> CriticalPath:
    """Critical path of request ``r`` in a (plain or resilient)
    :class:`~repro.serving.simulator.ServingReport`.

    ``path.total`` reproduces the simulator's own latency arithmetic
    bit-for-bit: ``finish - arrival`` for served requests,
    ``abort - arrival`` for shed/timeout/failed ones.
    """
    from repro.serving.simulator import STATUS_NAMES, STATUS_SERVED

    n = int(report.latencies_us.size)
    if not 0 <= r < n:
        raise IndexError(f"request {r} out of range (n={n})")
    arr = float(report.arrivals_us[r])
    status_code = (int(report.status[r]) if report.status.size
                   else STATUS_SERVED)
    status = STATUS_NAMES[status_code]
    retry = (float(report.retry_overhead_us[r])
             if report.retry_overhead_us.size else 0.0)
    segments: List[Segment] = []

    if status_code == STATUS_SERVED:
        k = int(report.batch_index[r]) if report.batch_index.size else -1
        if not 0 <= k < len(report.batches):
            raise CriticalPathError(
                f"served request {r} has no batch record (index {k})")
        batch = report.batches[k]
        dispatch = float(batch.dispatch_us)
        finish = float(batch.finish_us)
        ready = float(batch.ready_us)
        t1 = min(max(arr + retry, arr), dispatch)
        t2 = min(max(t1, min(ready, dispatch)), dispatch)
        segments.append(Segment(arr, t1, t1 - arr, "retry", "retry",
                                "retry"))
        segments.append(Segment(t1, t2, t2 - t1, "batching",
                                "batch_wait", "batch_wait"))
        segments.extend(_queue_segments(report, k, t2, dispatch))
        segments.append(Segment(dispatch, finish, finish - dispatch,
                                "device", "execute", f"batch{k}"))
        total = finish - arr           # the simulator's own op
        end = finish
        batch_id = k
    else:
        end = float(report.abort_us[r])
        batch_wait = float(report.batch_wait_us[r])
        queue_wait = float(report.queue_wait_us[r])
        t1 = min(max(arr + retry, arr), end)
        t2 = min(t1 + batch_wait, end)
        t3 = min(t2 + queue_wait, end)
        segments.append(Segment(arr, t1, t1 - arr, "retry", "retry",
                                "retry"))
        segments.append(Segment(t1, t2, t2 - t1, "batching",
                                "batch_wait", "batch_wait"))
        segments.append(Segment(t2, t3, t3 - t2, "device.queue",
                                "queue_wait", "queue_wait"))
        segments.append(Segment(t3, end, end - t3, "abort", "abort",
                                status))
        total = end - arr              # == fail_t - arrivals[r] bitwise
        batch_id = (int(report.batch_index[r])
                    if report.batch_index.size else -1)

    path = CriticalPath(unit="us", total=total, start=arr, end=end,
                        segments=segments,
                        attrs={"request": int(r), "status": status,
                               "batch": batch_id})
    return path.verify()


def fleet_critical_path(report, i: int) -> CriticalPath:
    """Critical path of fleet request ``i``, hedged copies included.

    The winning copy's local path (``per_replica[replica[i]]`` at
    ``replica_pos[i]``) is prefixed with the router hop and, when the
    hedge won, the hedge-launch delay.  Local arrivals were built as
    ``(arrival + route) [+ hedge]`` with the same left-associated ops,
    so the prefix boundaries meet the local path's start bit-exactly,
    and ``total`` composes ``(route + hedge) + local`` exactly as
    :func:`~repro.serving.fleet.simulate_fleet` stored it.
    """
    n = int(report.latencies_us.size)
    if not 0 <= i < n:
        raise IndexError(f"request {i} out of range (n={n})")
    arr = float(report.arrivals_us[i])
    route = float(report.route_overhead_us[i])
    hedge = float(report.hedge_wait_us[i])
    replica = int(report.replica[i])
    pos = int(report.replica_pos[i])
    local = report.per_replica[replica]
    local_path = serving_critical_path(local, pos)

    t1 = arr + route
    t2 = t1 + hedge
    if t2 != local_path.start:
        raise CriticalPathError(
            f"fleet request {i}: router prefix ends at {t2!r} but the "
            f"local path starts at {local_path.start!r}")
    segments = [Segment(arr, t1, t1 - arr, "router", "route", "route"),
                Segment(t1, t2, t2 - t1, "hedge", "hedge_wait",
                        "hedge_wait")]
    segments.extend(local_path.segments)
    total = (route + hedge) + local_path.total   # simulate_fleet's op tree
    path = CriticalPath(unit="us", total=total, start=arr,
                        end=local_path.end, segments=segments,
                        attrs={"request": int(i), "replica": replica,
                               "replica_pos": pos,
                               "hedge_won": bool(hedge > 0.0),
                               "status": local_path.attrs["status"],
                               "batch": local_path.attrs["batch"]})
    return path.verify()


def slowest_critical_paths(report, k: int = 8) -> List[CriticalPath]:
    """Critical paths of the ``k`` slowest *served* requests.

    Dispatches on the report's shape: anything with ``per_replica``
    (a :class:`~repro.serving.fleet.FleetReport`) walks
    :func:`fleet_critical_path`, a plain
    :class:`~repro.serving.simulator.ServingReport` walks
    :func:`serving_critical_path`.  Ties break toward the lower request
    index (stable argsort), so the selection is deterministic.
    """
    import numpy as np

    if k <= 0:
        return []
    latencies = report.latencies_us
    if latencies.size == 0:
        return []
    mask = report.served_mask
    candidates = (np.arange(latencies.size) if mask is None
                  else np.flatnonzero(mask))
    if candidates.size == 0:
        return []
    order = candidates[np.argsort(latencies[candidates],
                                  kind="stable")][::-1][:k]
    extractor = (fleet_critical_path if hasattr(report, "per_replica")
                 else serving_critical_path)
    return [extractor(report, int(i)) for i in order.tolist()]
