"""Hierarchical request-level span tracing with context propagation.

The cycle-level :class:`~repro.sim.trace.Tracer` answers "what was unit
X doing at cycle C"; this module answers the *serving-side* question —
"why did request 1234 land at p99?" — by recording a hierarchy of
microsecond-domain spans::

    request 1234                      (track ``request.1234``)
      ├─ batch_wait                   waiting for the batch to form
      ├─ queue_wait                   batch formed, device still busy
      └─ execute        ──flow──▶  batch 17       (track ``serving.device``)
                                     └─ graph_execute ── per-op spans
                                         └──flow──▶ pe0.dpe MML ...  (sim cycles)

Every span carries an id and a parent id, so exports preserve the tree;
``flow`` ids create Chrome-trace flow arrows *across* trackers — a
request span can point at its batch's spans, and a batch span at the
cycle-level spans a :class:`~repro.sim.trace.Tracer` recorded for it
(see :func:`merge_chrome_traces`).

Contract (shared with the metrics registry and stall hooks, and checked
by the conformance determinism pillar): a disabled ``SpanTracer`` is a
strict no-op — it records nothing, allocates nothing per call, and
never perturbs the instrumented computation.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class ObsSpan:
    """One microsecond-domain span in the request hierarchy."""

    span_id: int
    parent_id: Optional[int]
    track: str                 #: trace row (Chrome ``tid``)
    name: str
    start_us: float
    end_us: float
    args: Dict[str, object] = field(default_factory=dict)
    pid: str = ""              #: process row; defaults from the track
    flow_out: Tuple[int, ...] = ()   #: flow ids departing this span
    flow_in: Tuple[int, ...] = ()    #: flow ids arriving at this span

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class SpanTracer:
    """Collects :class:`ObsSpan` trees; exports Chrome trace JSON.

    Two recording styles, both usable with *virtual* (simulated) time:

    * :meth:`add` — record a finished span retroactively with explicit
      start/end; the parent is whatever span is currently open.
    * :meth:`span` — context manager opening a span (explicit times,
      since simulations know them up front) so children recorded inside
      the ``with`` body attach to it automatically.

    ``new_flow()`` allocates ids for Chrome flow arrows; mark the source
    span's ``flow_out`` and the destination's ``flow_in`` (destinations
    may live on a :class:`~repro.sim.trace.Tracer` instead — its export
    understands the same ids).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: List[ObsSpan] = []
        self._stack: List[ObsSpan] = []
        self._next_id = 1
        self._next_flow = 1

    # -- recording ---------------------------------------------------------
    @property
    def current(self) -> Optional[ObsSpan]:
        """The innermost open span (context-propagation parent)."""
        return self._stack[-1] if self._stack else None

    def add(self, track: str, name: str, start_us: float, end_us: float,
            pid: str = "", parent: Optional[ObsSpan] = None,
            flow_in: Tuple[int, ...] = (), flow_out: Tuple[int, ...] = (),
            **args) -> Optional[ObsSpan]:
        """Record one finished span under the current (or given) parent."""
        if not self.enabled:
            return None
        if end_us < start_us:
            raise ValueError(f"span {name!r} ends before it starts")
        if parent is None:
            parent = self.current
        span = ObsSpan(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            track=track, name=name, start_us=start_us, end_us=end_us,
            args=dict(args), pid=pid, flow_in=tuple(flow_in),
            flow_out=tuple(flow_out))
        self._next_id += 1
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, track: str, name: str, start_us: float, end_us: float,
             pid: str = "", **args) -> Iterator[Optional[ObsSpan]]:
        """Open a span so children recorded inside attach to it."""
        span = self.add(track, name, start_us, end_us, pid=pid, **args)
        if span is None:
            yield None
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def attach(self, span: Optional[ObsSpan]) -> Iterator[Optional[ObsSpan]]:
        """Re-enter an already-recorded span as the propagation context.

        Lets a pipeline record children under a span created earlier
        (e.g. per-op spans under a batch recorded by the serving
        simulator).
        """
        if not self.enabled or span is None:
            yield span
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    def new_flow(self) -> int:
        """Allocate a flow id (unique within this tracer's exports)."""
        fid = self._next_flow
        self._next_flow += 1
        return fid

    def link(self, src: Optional[ObsSpan],
             dst: Optional[ObsSpan] = None) -> Optional[int]:
        """Record a flow arrow ``src -> dst``; returns the flow id.

        ``dst`` may be omitted when the destination lives on another
        tracker — mark it there with the returned id.
        """
        if not self.enabled or src is None:
            return None
        fid = self.new_flow()
        src.flow_out = src.flow_out + (fid,)
        if dst is not None:
            dst.flow_in = dst.flow_in + (fid,)
        return fid

    # -- queries -----------------------------------------------------------
    def tracks(self) -> List[str]:
        return sorted({s.track for s in self.spans})

    def spans_on(self, track: str) -> List[ObsSpan]:
        return sorted((s for s in self.spans if s.track == track),
                      key=lambda s: s.start_us)

    def children_of(self, span: ObsSpan) -> List[ObsSpan]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[ObsSpan]:
        return [s for s in self.spans if s.name == name]

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON; timestamps already in microseconds.

        Span trees become ``X`` events (ids in ``args``); flow ids
        become ``s``/``f`` flow-event pairs under category ``flow`` —
        the same category :meth:`Tracer.to_chrome_trace` uses, so
        arrows survive :func:`merge_chrome_traces`.
        """
        events: List[dict] = []
        pids: Dict[str, int] = {}
        for span in self.spans:
            key = span.pid or span.track.split(".")[0]
            pid = pids.setdefault(key, len(pids))
            args = dict(span.args)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": span.track.split(".")[-1],
                "ph": "X",
                "ts": span.start_us,
                "dur": max(span.duration_us, 1e-3),
                "pid": pid,
                "tid": span.track,
                "args": args,
            })
            for fid in span.flow_out:
                events.append({"name": "flow", "cat": "flow", "ph": "s",
                               "id": fid, "ts": max(span.start_us,
                                                    span.end_us - 1e-3),
                               "pid": pid, "tid": span.track})
            for fid in span.flow_in:
                events.append({"name": "flow", "cat": "flow", "ph": "f",
                               "bp": "e", "id": fid, "ts": span.start_us,
                               "pid": pid, "tid": span.track})
        for name, pid in sorted(pids.items(), key=lambda kv: kv[1]):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": name}})
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


def merge_chrome_traces(*traces: dict) -> dict:
    """Merge Chrome trace dicts onto one timeline.

    Each input keeps its own process rows: pids are renumbered into one
    namespace (``process_name`` metadata preserved), events are
    concatenated.  Timestamps are *not* shifted — align them at export
    time (:meth:`Tracer.to_chrome_trace` takes ``ts_offset_us``).  Flow
    ids must already be unique across inputs; allocate them all from
    one :class:`SpanTracer` (``new_flow``).
    """
    events: List[dict] = []
    next_pid = 0
    for trace in traces:
        remap: Dict[int, int] = {}
        for event in trace.get("traceEvents", ()):
            event = dict(event)
            old = event.get("pid", 0)
            if old not in remap:
                remap[old] = next_pid
                next_pid += 1
            event["pid"] = remap[old]
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ns"}
