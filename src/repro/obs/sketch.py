"""Mergeable relative-error quantile sketch (DDSketch-style).

``obs.metrics.Histogram`` keeps every raw observation, which is exact
but grows linearly with traffic — fine for one simulated card, fatal
for a fleet serving millions of requests.  :class:`QuantileSketch`
bounds the memory: values land in logarithmic buckets sized so that
any quantile estimate is within a configurable *relative* error of the
true value, and the whole distribution is a small integer map.

Design properties (all load-bearing for the fleet simulator):

* **Relative-error guarantee** — with ``relative_accuracy`` α, bucket
  ``k`` covers ``(γ^(k-1), γ^k]`` for ``γ = (1+α)/(1-α)``; reporting
  the bucket midpoint keeps ``|est - true| <= α * true`` for every
  quantile (DDSketch, Masson et al., VLDB 2019).
* **Mergeable and order-invariant** — the state is a map of integer
  bucket keys to integer counts plus exact min/max; ``merge`` adds
  counts.  Integer addition is associative and commutative, so
  ``merge(a, b)``, ``merge(b, a)``, and single-stream ingest of the
  combined data produce *bit-identical* serializations.  The ``sum``
  surfaced in exports is reconstructed from the buckets (sorted-key
  order), never accumulated in float, for the same reason.
* **Fixed memory** — live keys are bounded by the data's dynamic range
  (``ln(max/min)/ln γ``; ~800 keys for α=1 % over six decades) and
  hard-capped by ``max_bins`` via a *canonical* collapse of the lowest
  buckets, applied to the final key map (a pure function of the
  ingested multiset) so it cannot break merge-order invariance.
* **Deterministic serialization** — :meth:`to_dict` emits sorted keys
  and integer counts only; byte-identical JSON at any merge order or
  ``--jobs`` count (the conformance determinism pillar asserts this).

Zero and negative values: serving latencies are non-negative, but the
sketch accepts any float — exact zeros go to a dedicated counter, and
negative values are sketched on a mirrored key map with the same
guarantee.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ACCURACY",
           "DEFAULT_MAX_BINS"]

DEFAULT_RELATIVE_ACCURACY = 0.01
DEFAULT_MAX_BINS = 4096


class QuantileSketch:
    """A mergeable quantile sketch with a relative-error guarantee."""

    __slots__ = ("relative_accuracy", "max_bins", "gamma", "_ln_gamma",
                 "zero_count", "counts", "neg_counts", "_min", "_max")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 max_bins: int = DEFAULT_MAX_BINS) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.relative_accuracy = float(relative_accuracy)
        self.max_bins = int(max_bins)
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._ln_gamma = math.log(self.gamma)
        self.zero_count = 0
        self.counts: Dict[int, int] = {}       #: key -> count, positives
        self.neg_counts: Dict[int, int] = {}   #: key over |v|, negatives
        self._min = math.inf
        self._max = -math.inf

    # -- ingest ----------------------------------------------------------
    def _key(self, value: float) -> int:
        """Bucket key: smallest k with value <= gamma**k."""
        return math.ceil(math.log(value) / self._ln_gamma)

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot sketch NaN")
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value > 0.0:
            key = self._key(value)
            self.counts[key] = self.counts.get(key, 0) + 1
        elif value < 0.0:
            key = self._key(-value)
            self.neg_counts[key] = self.neg_counts.get(key, 0) + 1
        else:
            self.zero_count += 1

    def add_many(self, values: Iterable[float]) -> None:
        """Bulk :meth:`add` — one vectorised pass over ``values``."""
        import numpy as np  # local: keep module import dependency-free
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot sketch NaN")
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        self.zero_count += int(np.count_nonzero(arr == 0.0))
        for signed, store in ((arr[arr > 0.0], self.counts),
                              (-arr[arr < 0.0], self.neg_counts)):
            if signed.size == 0:
                continue
            keys = np.ceil(np.log(signed) / self._ln_gamma).astype(np.int64)
            uniq, n = np.unique(keys, return_counts=True)
            for key, count in zip(uniq.tolist(), n.tolist()):
                store[key] = store.get(key, 0) + int(count)

    # -- merging ---------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place; returns self).

        Requires identical ``relative_accuracy`` — merging sketches with
        different bucket boundaries would silently void the error bound.
        """
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative_accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}")
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        for key, count in other.neg_counts.items():
            self.neg_counts[key] = self.neg_counts.get(key, 0) + count
        self.zero_count += other.zero_count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.relative_accuracy, self.max_bins)
        out.counts = dict(self.counts)
        out.neg_counts = dict(self.neg_counts)
        out.zero_count = self.zero_count
        out._min, out._max = self._min, self._max
        return out

    # -- canonical collapse ----------------------------------------------
    def _collapsed(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Key maps capped at ``max_bins``, lowest buckets folded up.

        Collapse is a pure function of the final key maps (never applied
        incrementally during ingest), so two sketches holding the same
        multiset — regardless of ingest or merge order — collapse
        identically.  Folding the *lowest* keys keeps the tail (the
        quantiles fleet telemetry cares about) at full accuracy.
        """
        budget = self.max_bins
        pos, neg = self.counts, self.neg_counts
        if len(pos) + len(neg) <= budget:
            return pos, neg
        # Keep the highest keys overall (negatives sort below positives
        # in value order, so they fold first).
        ordered: List[Tuple[float, str, int]] = (
            [(-key, "neg", key) for key in neg]      # value order: big |v|
            + [(key, "pos", key) for key in pos])    # ... ascending
        ordered.sort()
        folded = ordered[:len(ordered) - (budget - 1)]
        kept = ordered[len(ordered) - (budget - 1):]
        fold_count = sum(
            (neg if kind == "neg" else pos)[key] for _o, kind, key in folded)
        out_pos: Dict[int, int] = {}
        out_neg: Dict[int, int] = {}
        for _o, kind, key in kept:
            (out_neg if kind == "neg" else out_pos)[key] = (
                (neg if kind == "neg" else pos)[key])
        # All folded mass lands in one bucket just below the lowest kept
        # key (value order), preserving total count exactly.
        low_order, low_kind, low_key = kept[0]
        if low_kind == "neg":
            fold_key = low_key + 1      # larger |v| key = smaller value
            out_neg[fold_key] = out_neg.get(fold_key, 0) + fold_count
        else:
            fold_key = low_key - 1
            out_pos[fold_key] = out_pos.get(fold_key, 0) + fold_count
        return out_pos, out_neg

    # -- queries ---------------------------------------------------------
    @property
    def count(self) -> int:
        return (sum(self.counts.values()) + sum(self.neg_counts.values())
                + self.zero_count)

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def num_buckets(self) -> int:
        """Live bucket count (the memory footprint, in map entries)."""
        return len(self.counts) + len(self.neg_counts)

    def _bucket_value(self, key: int) -> float:
        """Midpoint estimate for bucket ``k``: 2·γ^k / (γ+1)."""
        return 2.0 * math.pow(self.gamma, key) / (self.gamma + 1.0)

    @property
    def sum(self) -> float:
        """Estimated total, reconstructed from buckets in key order.

        Never accumulated per-sample: a float running sum would make the
        serialization depend on ingest order, breaking the merge
        contract.  The estimate inherits the per-bucket relative bound.
        """
        total = 0.0
        for key in sorted(self.neg_counts):
            total -= self.neg_counts[key] * self._bucket_value(key)
        for key in sorted(self.counts):
            total += self.counts[key] * self._bucket_value(key)
        return total

    @property
    def mean(self) -> float:
        n = self.count
        return self.sum / n if n else 0.0

    @property
    def value(self) -> float:
        """Scalar summary (mean) so sketches dump like other metrics."""
        return self.mean

    def percentile(self, q: float) -> float:
        """Quantile estimate, q in [0, 100] (Histogram convention).

        Within ``relative_accuracy`` of the exact sample quantile; empty
        sketches return 0.0 (matching ``Histogram.percentile``).
        """
        n = self.count
        if n == 0:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 100:
            return self.max
        pos, neg = self._collapsed()
        rank = q / 100.0 * (n - 1)
        seen = 0
        # negatives first, most-negative (largest |v| key) first
        for key in sorted(neg, reverse=True):
            seen += neg[key]
            if seen > rank:
                value = -self._bucket_value(key)
                return min(self._max, max(self._min, value))
        seen += self.zero_count
        if self.zero_count and seen > rank:
            return 0.0
        for key in sorted(pos):
            seen += pos[key]
            if seen > rank:
                value = self._bucket_value(key)
                return min(self._max, max(self._min, value))
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """Canonical JSON-ready state: sorted integer keys and counts."""
        pos, neg = self._collapsed()
        out: Dict = {
            "relative_accuracy": self.relative_accuracy,
            "max_bins": self.max_bins,
            "count": self.count,
            "zero_count": self.zero_count,
            "counts": {str(k): pos[k] for k in sorted(pos)},
        }
        if neg:
            out["neg_counts"] = {str(k): neg[k] for k in sorted(neg)}
        if self.count:
            out["min"] = self._min
            out["max"] = self._max
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "QuantileSketch":
        out = cls(data["relative_accuracy"],
                  data.get("max_bins", DEFAULT_MAX_BINS))
        out.counts = {int(k): int(v) for k, v in data["counts"].items()}
        out.neg_counts = {int(k): int(v)
                          for k, v in data.get("neg_counts", {}).items()}
        out.zero_count = int(data["zero_count"])
        out._min = float(data.get("min", math.inf))
        out._max = float(data.get("max", -math.inf))
        return out

    def summary(self) -> Dict:
        """Headline numbers for report surfaces (not the full state)."""
        return {"count": self.count,
                "relative_accuracy": self.relative_accuracy,
                "num_buckets": self.num_buckets,
                "min": self.min, "max": self.max,
                "mean": self.mean,
                "p50": self.p50, "p95": self.p95, "p99": self.p99}

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"QuantileSketch(alpha={self.relative_accuracy:g}, "
                f"count={self.count}, buckets={self.num_buckets})")
