"""Anomaly detection over windowed telemetry series.

Two detectors, both deterministic and dependency-free, tuned for the
signals the serving layer emits (request rate, per-window p99, SLO
error-budget burn):

* :class:`EWMADetector` — an exponentially weighted moving average of
  the signal plus an EWMA of its squared deviation; a point whose
  z-score against the *pre-update* estimate exceeds ``threshold``
  sigmas is an anomaly.  Catches spikes and level shifts quickly and
  recovers on its own.
* :func:`cusum_changepoints` — a two-sided CUSUM on the standardised
  signal: cumulative positive/negative drift beyond ``threshold``
  flags a changepoint (sustained shifts an EWMA would slowly absorb —
  a card failing mid-run, a diurnal ramp, a retry storm igniting).

:func:`detect_series` runs both over a
:class:`~repro.obs.timeseries.WindowedSeries` statistic, and
:func:`burn_anomalies` applies them to the SLO monitor's per-window
violation rate so error-budget burn spikes page like they would in
production.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.timeseries import WindowedSeries

__all__ = ["Anomaly", "AnomalyReport", "EWMADetector",
           "cusum_changepoints", "detect_series", "burn_anomalies"]


@dataclass(frozen=True)
class Anomaly:
    """One flagged point in a series."""

    index: int           #: position in the series (window order)
    value: float
    score: float         #: z-score (EWMA) or CUSUM statistic
    expected: float      #: detector's estimate before seeing the point
    kind: str            #: "spike" | "drop" | "changepoint"

    def to_dict(self) -> Dict:
        return {"index": self.index, "value": self.value,
                "score": self.score, "expected": self.expected,
                "kind": self.kind}


@dataclass
class AnomalyReport:
    """Everything the detectors flagged on one series."""

    stat: str
    points: int
    anomalies: List[Anomaly] = field(default_factory=list)
    changepoints: List[Anomaly] = field(default_factory=list)

    @property
    def anomalous(self) -> bool:
        return bool(self.anomalies or self.changepoints)

    def to_dict(self) -> Dict:
        return {"stat": self.stat, "points": self.points,
                "anomalies": [a.to_dict() for a in self.anomalies],
                "changepoints": [a.to_dict() for a in self.changepoints],
                "anomalous": self.anomalous}

    def to_text(self) -> str:
        if not self.anomalous:
            return f"{self.stat}: no anomalies over {self.points} windows"
        parts = [f"{self.stat}: {len(self.anomalies)} anomalies, "
                 f"{len(self.changepoints)} changepoints "
                 f"over {self.points} windows"]
        for a in self.anomalies[:5]:
            parts.append(f"  window {a.index}: {a.kind} value {a.value:g} "
                         f"(expected {a.expected:g}, {a.score:.1f} sigma)")
        for a in self.changepoints[:5]:
            parts.append(f"  window {a.index}: changepoint "
                         f"(cusum {a.score:.1f})")
        return "\n".join(parts)


class EWMADetector:
    """Streaming EWMA mean/variance z-score detector."""

    def __init__(self, alpha: float = 0.3, threshold: float = 3.0,
                 warmup: int = 5, min_std: float = 1e-12) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.min_std = min_std
        self._mean: Optional[float] = None
        self._var = 0.0
        self._seen = 0

    def update(self, value: float) -> Optional[Dict]:
        """Feed one point; returns anomaly info or ``None``.

        The z-score is computed against the estimate *before* the point
        updates it, so a spike cannot hide inside its own update; the
        estimate still absorbs the point afterwards (detectors must
        recover, or one spike flags everything after it).
        """
        value = float(value)
        self._seen += 1
        if self._mean is None:
            self._mean = value
            return None
        delta = value - self._mean
        std = math.sqrt(self._var)
        score = delta / max(std, self.min_std)
        anomaly = None
        if self._seen > self.warmup and abs(score) > self.threshold:
            anomaly = {"score": score, "expected": self._mean,
                       "kind": "spike" if score > 0 else "drop"}
        self._mean += self.alpha * delta
        self._var = ((1.0 - self.alpha)
                     * (self._var + self.alpha * delta * delta))
        return anomaly

    def detect(self, values: Sequence[float]) -> List[Anomaly]:
        out: List[Anomaly] = []
        for index, value in enumerate(values):
            hit = self.update(float(value))
            if hit is not None:
                out.append(Anomaly(index=index, value=float(value),
                                   score=hit["score"],
                                   expected=hit["expected"],
                                   kind=hit["kind"]))
        return out


def cusum_changepoints(values: Sequence[float], threshold: float = 5.0,
                       drift: float = 0.5) -> List[Anomaly]:
    """Two-sided CUSUM changepoints on a standardised series.

    The series is standardised against its own mean/std (population);
    cumulative sums of deviations beyond ``drift`` sigmas trip at
    ``threshold``, then reset — so a series with two regime shifts
    reports two changepoints, not one smeared alarm.
    """
    n = len(values)
    if n < 2:
        return []
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    std = math.sqrt(var)
    if std <= 0.0:
        return []
    out: List[Anomaly] = []
    pos = neg = 0.0
    for index, value in enumerate(values):
        z = (value - mean) / std
        pos = max(0.0, pos + z - drift)
        neg = max(0.0, neg - z - drift)
        if pos > threshold or neg > threshold:
            score = pos if pos > threshold else -neg
            out.append(Anomaly(index=index, value=float(value),
                               score=score, expected=mean,
                               kind="changepoint"))
            pos = neg = 0.0
    return out


def detect_series(series: WindowedSeries, stat: str = "mean",
                  alpha: float = 0.3, threshold: float = 3.0,
                  warmup: int = 5, cusum_threshold: float = 5.0,
                  cusum_drift: float = 0.5) -> AnomalyReport:
    """Run both detectors over one statistic of a windowed series."""
    values = series.values(stat)
    report = AnomalyReport(stat=stat, points=len(values))
    report.anomalies = EWMADetector(alpha=alpha, threshold=threshold,
                                    warmup=warmup).detect(values)
    report.changepoints = cusum_changepoints(values,
                                             threshold=cusum_threshold,
                                             drift=cusum_drift)
    return report


def burn_anomalies(slo_summary, threshold: float = 3.0,
                   alpha: float = 0.3, warmup: int = 3) -> AnomalyReport:
    """Anomalies in the SLO monitor's per-window error-budget burn.

    Feeds each rolling window's burn (violation rate over the allowed
    rate — the existing error-budget signal) through the EWMA detector,
    so a burn spike is flagged against the run's own baseline rather
    than a fixed threshold.
    """
    allowed = 1.0 - slo_summary.availability_target
    burns = [w.violation_rate / allowed if allowed > 0 else 0.0
             for w in slo_summary.windows]
    report = AnomalyReport(stat="error_budget_burn", points=len(burns))
    report.anomalies = EWMADetector(alpha=alpha, threshold=threshold,
                                    warmup=warmup).detect(burns)
    report.changepoints = cusum_changepoints(burns)
    return report
