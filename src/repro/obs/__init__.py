"""Unified observability: metrics registry, stall attribution, profiler.

Three layers, all opt-in and free when disabled:

- :mod:`repro.obs.metrics` — typed Counter/Gauge/Histogram instruments
  with hierarchical labels, roll-up, and JSON/CSV/Prometheus export.
- :mod:`repro.obs.observer` — the engine-attached sink that attributes
  every idle cycle on a track to a named cause (``cb_element_wait``,
  ``dep_interlock``, ``noc_link_arb``, ``dram_queue``, ...).
- :mod:`repro.obs.profiler` — wraps one simulated run and emits a
  bottleneck report: per-track compute/memory/stall split, achieved vs
  roofline bandwidth, top-N slowest tracks.
- :mod:`repro.obs.spans` — hierarchical request-level span tracer with
  context propagation and Chrome-trace flow events, linking serving
  requests down to cycle-level unit activity on one merged timeline.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    default_registry,
    disable_default_registry,
    enable_default_registry,
    format_labels,
)
from repro.obs.observer import Observer, STALL_CAUSES
from repro.obs.profiler import (
    BandwidthProfile,
    BottleneckReport,
    OperationProfile,
    Profiler,
    TrackProfile,
)
from repro.obs.spans import ObsSpan, SpanTracer, merge_chrome_traces

__all__ = [
    "ObsSpan",
    "SpanTracer",
    "merge_chrome_traces",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "default_registry",
    "disable_default_registry",
    "enable_default_registry",
    "format_labels",
    "Observer",
    "STALL_CAUSES",
    "BandwidthProfile",
    "BottleneckReport",
    "OperationProfile",
    "Profiler",
    "TrackProfile",
]
