"""Unified observability: metrics registry, stall attribution, profiler.

Three layers, all opt-in and free when disabled:

- :mod:`repro.obs.metrics` — typed Counter/Gauge/Histogram instruments
  with hierarchical labels, roll-up, and JSON/CSV/Prometheus export.
- :mod:`repro.obs.observer` — the engine-attached sink that attributes
  every idle cycle on a track to a named cause (``cb_element_wait``,
  ``dep_interlock``, ``noc_link_arb``, ``dram_queue``, ...).
- :mod:`repro.obs.profiler` — wraps one simulated run and emits a
  bottleneck report: per-track compute/memory/stall split, achieved vs
  roofline bandwidth, top-N slowest tracks.
- :mod:`repro.obs.spans` — hierarchical request-level span tracer with
  context propagation and Chrome-trace flow events, linking serving
  requests down to cycle-level unit activity on one merged timeline.
- :mod:`repro.obs.sketch` — mergeable relative-error quantile sketches
  (bounded memory, order-invariant merges, deterministic bytes).
- :mod:`repro.obs.timeseries` — fixed-size windowed series for rates,
  gauges, and percentile-over-time, with aligned downsampling.
- :mod:`repro.obs.exemplars` — tail-biased exemplar retention: exact
  slowest-k plus a seeded, merge-invariant priority reservoir.
- :mod:`repro.obs.detect` — EWMA spike/drop detection and CUSUM
  changepoints over windowed telemetry, wired to the SLO burn signal.
- :mod:`repro.obs.critical` — causal dependency-edge recording in the
  DES engine and exact critical-path extraction (DES runs, serving
  requests, fleet requests with hedged copies).
- :mod:`repro.obs.whatif` — Coz-style what-if projection: virtually
  scale a resource on the recorded event graph and predict the
  end-to-end delta, validated against true re-simulation.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    default_registry,
    disable_default_registry,
    enable_default_registry,
    format_labels,
)
from repro.obs.observer import Observer, STALL_CAUSES
from repro.obs.profiler import (
    BandwidthProfile,
    BottleneckReport,
    OperationProfile,
    Profiler,
    TrackProfile,
)
from repro.obs.critical import (CriticalPath, CriticalPathError,
                                EdgeRecorder, Segment, classify_label,
                                extract_critical_path,
                                fleet_critical_path,
                                serving_critical_path,
                                slowest_critical_paths)
from repro.obs.detect import (Anomaly, AnomalyReport, EWMADetector,
                              burn_anomalies, cusum_changepoints,
                              detect_series)
from repro.obs.whatif import (RESOURCE_SCALINGS, WhatIfProjection,
                              project_whatif, scaled_chip_config)
from repro.obs.exemplars import ExemplarRecord, ExemplarStore
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import ObsSpan, SpanTracer, merge_chrome_traces
from repro.obs.timeseries import WindowedSeries, WindowStats

__all__ = [
    "Anomaly",
    "AnomalyReport",
    "CriticalPath",
    "CriticalPathError",
    "EdgeRecorder",
    "EWMADetector",
    "RESOURCE_SCALINGS",
    "Segment",
    "WhatIfProjection",
    "classify_label",
    "extract_critical_path",
    "fleet_critical_path",
    "project_whatif",
    "scaled_chip_config",
    "serving_critical_path",
    "slowest_critical_paths",
    "ExemplarRecord",
    "ExemplarStore",
    "ObsSpan",
    "QuantileSketch",
    "SpanTracer",
    "WindowStats",
    "WindowedSeries",
    "burn_anomalies",
    "cusum_changepoints",
    "detect_series",
    "merge_chrome_traces",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "default_registry",
    "disable_default_registry",
    "enable_default_registry",
    "format_labels",
    "Observer",
    "STALL_CAUSES",
    "BandwidthProfile",
    "BottleneckReport",
    "OperationProfile",
    "Profiler",
    "TrackProfile",
]
