"""Bottleneck profiler: turn one simulated run into an attribution report.

Wraps a discrete-event run on an :class:`~repro.core.Accelerator` and
answers the questions the paper's team answered by inspecting per-unit
timelines (Section 6.1): where did each track's cycles go (compute,
memory movement, or a *named* stall cause), which tracks dominate, and
what fraction of the roofline bandwidth the kernel achieved — so the
Figure 12/13 "% of BW" claims fall out of telemetry rather than hand
arithmetic.

Usage::

    acc = Accelerator()
    with Profiler(acc) as prof:
        run_fc(acc, m=512, k=1024, n=256, ...)
    report = prof.report()
    print(report.to_text())

The profiler force-enables the engine's tracer and observer for the
profiled window; per-track cycle accounting satisfies
``compute + memory + stalls + idle == elapsed`` exactly (``idle`` is
the unattributed remainder — time before the track's first command or
after its last).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.observer import STALL_CAUSES

#: Span names that move data rather than compute on it.
MEMORY_SPAN_NAMES = frozenset({
    "DMALoad", "DMAStore", "MemRead", "MemWrite", "sram.hit", "sram.miss"})

#: Accounting priority when intervals overlap on one track: a cycle
#: that is simultaneously busy and inside a stall wait counts as busy
#: (the track *was* making progress); compute wins over memory.
_KIND_RANK = {"compute": 0, "memory": 1}
_KIND_RANK.update({cause: 2 + i for i, cause in enumerate(STALL_CAUSES)})


def _sweep(segments: List[Tuple[float, float, str]]) -> Dict[str, float]:
    """Partition a track's timeline among overlapping labelled intervals.

    Each instant goes to exactly one kind — the highest-priority label
    active there — so the returned totals never double-count a cycle no
    matter how the input intervals overlap (the FI keeps several DMA
    loads in flight on one track; resource queues overlap many waits).
    """
    events: List[Tuple[float, int, str]] = []
    for start, end, kind in segments:
        if end > start:
            events.append((start, +1, kind))
            events.append((end, -1, kind))
    events.sort(key=lambda e: e[0])
    totals: Dict[str, float] = {}
    active: Dict[str, int] = {}
    prev: Optional[float] = None
    i = 0
    while i < len(events):
        pos = events[i][0]
        if prev is not None and pos > prev and active:
            kind = min(active, key=lambda k: _KIND_RANK.get(k, 99))
            totals[kind] = totals.get(kind, 0.0) + (pos - prev)
        while i < len(events) and events[i][0] == pos:
            _, delta, kind = events[i]
            count = active.get(kind, 0) + delta
            if count:
                active[kind] = count
            else:
                active.pop(kind, None)
            i += 1
        prev = pos
    return totals


@dataclass
class TrackProfile:
    """Cycle accounting for one trace track over the profiled window."""

    track: str
    elapsed: float
    compute: float = 0.0       #: busy cycles in compute-class commands
    memory: float = 0.0        #: busy cycles in data-movement commands
    stalls: Dict[str, float] = field(default_factory=dict)
    commands: int = 0

    @property
    def stall_total(self) -> float:
        return sum(self.stalls.values())

    @property
    def busy(self) -> float:
        return self.compute + self.memory

    @property
    def idle(self) -> float:
        """Unattributed remainder; non-negative by construction."""
        return max(0.0, self.elapsed - self.busy - self.stall_total)

    @property
    def active(self) -> float:
        """Busy plus attributed stalls — the 'accounted' cycles."""
        return self.busy + self.stall_total

    def to_dict(self) -> Dict:
        return {
            "track": self.track, "elapsed": self.elapsed,
            "compute": self.compute, "memory": self.memory,
            "stalls": dict(sorted(self.stalls.items())),
            "idle": self.idle, "commands": self.commands,
        }


@dataclass
class BandwidthProfile:
    """Achieved vs. roofline bandwidth for one memory level."""

    name: str
    bytes: float
    elapsed_cycles: float
    peak_bytes_per_cycle: float
    frequency_ghz: float

    @property
    def achieved_bytes_per_cycle(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.bytes / self.elapsed_cycles

    @property
    def achieved_gbs(self) -> float:
        return self.achieved_bytes_per_cycle * self.frequency_ghz

    @property
    def peak_gbs(self) -> float:
        return self.peak_bytes_per_cycle * self.frequency_ghz

    @property
    def fraction(self) -> float:
        if self.peak_bytes_per_cycle <= 0:
            return 0.0
        return self.achieved_bytes_per_cycle / self.peak_bytes_per_cycle

    def to_dict(self) -> Dict:
        return {
            "name": self.name, "bytes": self.bytes,
            "achieved_gbs": self.achieved_gbs, "peak_gbs": self.peak_gbs,
            "percent_of_peak": 100.0 * self.fraction,
        }


@dataclass
class OperationProfile:
    """Aggregate cycles for one command type across all tracks."""

    name: str
    cycles: float = 0.0
    count: int = 0

    def to_dict(self) -> Dict:
        return {"name": self.name, "cycles": self.cycles,
                "count": self.count}


@dataclass
class BottleneckReport:
    """Everything one profiled window measured."""

    workload: str
    elapsed_cycles: float
    frequency_ghz: float
    tracks: List[TrackProfile]
    operations: List[OperationProfile]
    bandwidth: List[BandwidthProfile]
    stalls_by_cause: Dict[str, float]
    #: workload-specific extras, e.g. TBE gather GB/s and its BW fraction
    extras: Dict[str, float] = field(default_factory=dict)

    # -- queries ---------------------------------------------------------
    def top_tracks(self, n: int = 10) -> List[TrackProfile]:
        """The ``n`` slowest tracks (most accounted cycles first)."""
        return sorted(self.tracks, key=lambda t: t.active, reverse=True)[:n]

    def track(self, name: str) -> Optional[TrackProfile]:
        for t in self.tracks:
            if t.track == name:
                return t
        return None

    def bandwidth_for(self, name: str) -> Optional[BandwidthProfile]:
        for bw in self.bandwidth:
            if bw.name == name:
                return bw
        return None

    def stall_fractions(self) -> Dict[str, float]:
        """Stall-cause mix normalised to fractions of all stall cycles.

        The unit the differential tail-attribution report compares: a
        tail-exemplar batch and a median-exemplar batch rarely stall
        the same *way*, even when both stall a lot.
        """
        total = sum(self.stalls_by_cause.values())
        if total <= 0:
            return {}
        return {cause: cycles / total
                for cause, cycles in self.stalls_by_cause.items()}

    def attribution_residual(self) -> float:
        """Largest per-track |elapsed - (busy + stalls + idle)|.

        Zero by construction (``idle`` absorbs the remainder); kept as
        an invariant hook so the CLI can assert full attribution.
        """
        worst = 0.0
        for t in self.tracks:
            worst = max(worst, abs(t.elapsed
                                   - (t.busy + t.stall_total + t.idle)))
        return worst

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "elapsed_cycles": self.elapsed_cycles,
            "elapsed_us": self.elapsed_cycles / (self.frequency_ghz * 1e3),
            "frequency_ghz": self.frequency_ghz,
            "tracks": [t.to_dict() for t in self.tracks],
            "operations": [o.to_dict() for o in self.operations],
            "bandwidth": [b.to_dict() for b in self.bandwidth],
            "stalls_by_cause": dict(sorted(self.stalls_by_cause.items())),
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self, top_n: int = 10) -> str:
        us = self.elapsed_cycles / (self.frequency_ghz * 1e3)
        lines = [
            f"bottleneck report — {self.workload}",
            f"elapsed: {self.elapsed_cycles:,.0f} cycles "
            f"({us:.1f} us at {self.frequency_ghz:g} GHz)",
            "",
            "== achieved bandwidth vs roofline ==",
        ]
        for bw in self.bandwidth:
            lines.append(
                f"  {bw.name:<6} {bw.achieved_gbs:8.1f} GB/s of "
                f"{bw.peak_gbs:7.1f} GB/s peak  "
                f"({100 * bw.fraction:5.1f} % of BW)")
        for key, value in sorted(self.extras.items()):
            lines.append(f"  {key}: {value:.2f}")
        lines.append("")
        lines.append("== stall cycles by cause (grid roll-up) ==")
        if self.stalls_by_cause:
            for cause, cycles in sorted(self.stalls_by_cause.items(),
                                        key=lambda kv: -kv[1]):
                lines.append(f"  {cause:<18} {cycles:12,.0f}")
        else:
            lines.append("  (no stalls recorded)")
        lines.append("")
        lines.append(f"== top {top_n} tracks (cycles: compute / memory / "
                     "stalls / idle; sums to elapsed) ==")
        header = (f"  {'track':<14}{'compute':>10}{'memory':>10}"
                  f"{'stall':>10}{'idle':>10}  dominant stall")
        lines.append(header)
        for t in self.top_tracks(top_n):
            dominant = ""
            if t.stalls:
                cause, cycles = max(t.stalls.items(), key=lambda kv: kv[1])
                dominant = f"{cause} ({cycles:,.0f})"
            lines.append(f"  {t.track:<14}{t.compute:>10,.0f}"
                         f"{t.memory:>10,.0f}{t.stall_total:>10,.0f}"
                         f"{t.idle:>10,.0f}  {dominant}")
        lines.append("")
        lines.append("== command cycles by type ==")
        for op in sorted(self.operations, key=lambda o: -o.cycles)[:top_n]:
            lines.append(f"  {op.name:<18}{op.cycles:>12,.0f}"
                         f"  x{op.count}")
        lines.append("")
        lines.append(f"attribution check: max per-track residual "
                     f"{self.attribution_residual():.3f} cycles "
                     "(compute + memory + stalls + idle == elapsed)")
        return "\n".join(lines)


class Profiler:
    """Context manager measuring one window of an accelerator's life."""

    def __init__(self, acc, workload: str = "") -> None:
        self.acc = acc
        self.workload = workload or "run"
        # Force-enable telemetry for the window (Tracer-style opt-in).
        acc.engine.tracer.enabled = True
        acc.engine.obs.enabled = True
        if acc.engine.obs.tracer is None:
            acc.engine.obs.tracer = acc.engine.tracer
        self._start_cycle: float = 0.0
        self._end_cycle: Optional[float] = None
        self._span_index = 0
        self._stall_base: Dict[Tuple[str, str], float] = {}
        self._dram_base: Dict[str, float] = {}
        self._sram_base: Dict[str, float] = {}

    # -- window control ---------------------------------------------------
    def __enter__(self) -> "Profiler":
        engine = self.acc.engine
        self._start_cycle = engine.now
        self._end_cycle = None
        self._span_index = len(engine.tracer.spans)
        self._stall_base = dict(engine.obs.registry.rollup(
            "stall_cycles", by=("track", "cause")))
        self._dram_base = self.acc.memory.dram.stats.snapshot()
        self._sram_base = self.acc.memory.sram.stats.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end_cycle = self.acc.engine.now

    # -- report -----------------------------------------------------------
    def report(self, extras: Optional[Dict[str, float]] = None
               ) -> BottleneckReport:
        engine = self.acc.engine
        config = self.acc.config
        end = self._end_cycle if self._end_cycle is not None else engine.now
        elapsed = end - self._start_cycle

        # Label every span in the window and sweep each track's timeline
        # so a cycle is counted exactly once even where intervals
        # overlap (concurrent FI loads, queued resource waits).
        tracks: Dict[str, TrackProfile] = {}
        operations: Dict[str, OperationProfile] = {}
        segments: Dict[str, List[Tuple[float, float, str]]] = {}

        def track_for(name: str) -> TrackProfile:
            profile = tracks.get(name)
            if profile is None:
                profile = TrackProfile(track=name, elapsed=elapsed)
                tracks[name] = profile
            return profile

        for span in engine.tracer.spans[self._span_index:]:
            start = max(span.start, self._start_cycle)
            stop = min(span.end, end)
            if span.name.startswith("stall:"):
                kind = span.name[len("stall:"):]
            else:
                kind = ("memory" if span.name in MEMORY_SPAN_NAMES
                        else "compute")
                profile = track_for(span.track)
                profile.commands += 1
                op = operations.get(span.name)
                if op is None:
                    op = operations[span.name] = OperationProfile(span.name)
                op.cycles += span.duration
                op.count += 1
            segments.setdefault(span.track, []).append((start, stop, kind))

        stalls_by_cause: Dict[str, float] = {}
        for track_name, segs in segments.items():
            profile = track_for(track_name)
            for kind, cycles in _sweep(segs).items():
                if kind == "compute":
                    profile.compute = cycles
                elif kind == "memory":
                    profile.memory = cycles
                else:
                    profile.stalls[kind] = cycles
                    stalls_by_cause[kind] = (stalls_by_cause.get(kind, 0.0)
                                             + cycles)

        # Tracks whose stalls were counted but never traced (tracer off
        # while the observer ran) fall back to raw counter deltas.
        stall_now = engine.obs.registry.rollup("stall_cycles",
                                               by=("track", "cause"))
        for (track_name, cause), total in stall_now.items():
            delta = total - self._stall_base.get((track_name, cause), 0.0)
            if delta <= 0 or track_name in segments:
                continue
            profile = track_for(track_name)
            profile.stalls[cause] = profile.stalls.get(cause, 0.0) + delta
            stalls_by_cause[cause] = stalls_by_cause.get(cause, 0.0) + delta

        # Roofline bandwidth from the memory models' counter deltas.
        dram_delta = self.acc.memory.dram.stats.diff(self._dram_base)
        sram_delta = self.acc.memory.sram.stats.diff(self._sram_base)
        dram_bytes = (dram_delta.get("read_bytes", 0.0)
                      + dram_delta.get("write_bytes", 0.0))
        line = config.sram.cache_line_bytes
        sram_bytes = (sram_delta.get("read_bytes", 0.0)
                      + sram_delta.get("write_bytes", 0.0)
                      + sram_delta.get("hit_lines", 0.0) * line)
        bandwidth = [
            BandwidthProfile(
                "dram", dram_bytes, elapsed,
                config.dram.bytes_per_cycle(config.frequency_ghz),
                config.frequency_ghz),
            BandwidthProfile(
                "sram", sram_bytes, elapsed,
                float(config.sram.bytes_per_cycle), config.frequency_ghz),
        ]

        return BottleneckReport(
            workload=self.workload,
            elapsed_cycles=elapsed,
            frequency_ghz=config.frequency_ghz,
            tracks=sorted(tracks.values(), key=lambda t: t.track),
            operations=sorted(operations.values(), key=lambda o: o.name),
            bandwidth=bandwidth,
            stalls_by_cause=stalls_by_cause,
            extras=dict(extras or {}),
        )
