"""Tail-biased exemplar sampling: full detail for the requests that matter.

PR 3's span tracer keeps a full waterfall for *every* request — exact,
but O(traffic) memory.  At fleet scale only two cohorts justify full
span trees:

* the **slowest k** requests — always retained, exactly (these are the
  requests a tail post-mortem replays);
* a small **seeded reservoir** of everything else — an unbiased sample
  for "what does a normal request look like" comparisons.

Everything else folds into sketches and windowed series.

Both cohorts are selected by *order-invariant* rules so per-replica
stores merge into the same fleet store regardless of merge order:

* slowest-k is a top-k by ``(-latency, replica, request_id)`` — a total
  order, so ties break identically everywhere;
* the reservoir uses **bottom-k priority sampling**: each record gets a
  deterministic pseudo-random priority from a seeded integer hash of
  ``(seed, replica, request_id)``, and the store keeps the k smallest
  priorities.  Unlike classic reservoir sampling (order-dependent by
  construction), bottom-k over a fixed priority function is a pure
  function of the record *set* — merge in any order, get the same
  sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["ExemplarRecord", "ExemplarStore", "priority_hash"]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round — a fast, well-mixed 64-bit integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def priority_hash(seed: int, replica: int, request_id: int) -> float:
    """Deterministic priority in [0, 1) for bottom-k sampling."""
    h = _splitmix64(_splitmix64(seed & _MASK64) ^ _splitmix64(
        ((replica & 0xFFFFFFFF) << 32) | (request_id & 0xFFFFFFFF)))
    return h / float(1 << 64)


@dataclass(frozen=True)
class ExemplarRecord:
    """One retained request, with everything a span tree needs."""

    replica: int
    request_id: int
    arrival_us: float
    latency_us: float
    queue_wait_us: float
    batch_wait_us: float
    execute_us: float
    batch_index: int
    batch_size: int
    status: str = "served"
    retry_overhead_us: float = 0.0

    def to_dict(self) -> Dict:
        return {"replica": self.replica, "request": self.request_id,
                "arrival_us": self.arrival_us,
                "latency_us": self.latency_us,
                "queue_wait_us": self.queue_wait_us,
                "batch_wait_us": self.batch_wait_us,
                "execute_us": self.execute_us,
                "retry_overhead_us": self.retry_overhead_us,
                "batch": self.batch_index, "batch_size": self.batch_size,
                "status": self.status}


@dataclass
class ExemplarStore:
    """Bounded, mergeable store of slowest-k + reservoir exemplars."""

    slowest_k: int = 8
    reservoir_size: int = 16
    seed: int = 0
    #: (sort key, record) — kept sorted ascending by key
    _slowest: List[Tuple[Tuple[float, int, int], ExemplarRecord]] = field(
        default_factory=list)
    _reservoir: List[Tuple[Tuple[float, int, int], ExemplarRecord]] = field(
        default_factory=list)

    def offer(self, record: ExemplarRecord) -> None:
        """Consider one request for retention (served requests only)."""
        skey = (-record.latency_us, record.replica, record.request_id)
        self._insert(self._slowest, skey, record, self.slowest_k)
        pkey = (priority_hash(self.seed, record.replica, record.request_id),
                record.replica, record.request_id)
        self._insert(self._reservoir, pkey, record, self.reservoir_size)

    @staticmethod
    def _insert(store: List, key, record: ExemplarRecord,
                capacity: int) -> None:
        if capacity <= 0:
            return
        import bisect
        keys = [k for k, _r in store]
        pos = bisect.bisect_left(keys, key)
        if pos >= capacity:
            return
        store.insert(pos, (key, record))
        if len(store) > capacity:
            store.pop()

    def merge(self, other: "ExemplarStore") -> "ExemplarStore":
        """Fold another store in (in place; returns self).

        Selection keys are total orders over the union, so the merged
        store equals a single store that saw every record — in any
        merge order (the conformance determinism pillar asserts this).
        """
        if other.seed != self.seed:
            raise ValueError("cannot merge exemplar stores with different "
                             f"seeds: {self.seed} vs {other.seed}")
        for key, record in other._slowest:
            self._insert(self._slowest, key, record, self.slowest_k)
        for key, record in other._reservoir:
            self._insert(self._reservoir, key, record, self.reservoir_size)
        return self

    # -- queries ---------------------------------------------------------
    @property
    def slowest(self) -> List[ExemplarRecord]:
        """Slowest-k records, slowest first (exact, always retained)."""
        return [record for _key, record in self._slowest]

    @property
    def reservoir(self) -> List[ExemplarRecord]:
        """The seeded uniform sample, in priority order."""
        return [record for _key, record in self._reservoir]

    def slowest_ids(self) -> List[Tuple[int, int]]:
        """(replica, request_id) pairs of the retained slowest-k."""
        return [(r.replica, r.request_id) for r in self.slowest]

    def to_dict(self) -> Dict:
        return {"slowest_k": self.slowest_k,
                "reservoir_size": self.reservoir_size,
                "seed": self.seed,
                "slowest": [r.to_dict() for r in self.slowest],
                "reservoir": [r.to_dict() for r in self.reservoir]}

    @classmethod
    def from_dict(cls, data: Dict) -> "ExemplarStore":
        out = cls(slowest_k=data["slowest_k"],
                  reservoir_size=data["reservoir_size"], seed=data["seed"])
        for row in data["slowest"] + data["reservoir"]:
            out.offer(ExemplarRecord(
                replica=row["replica"], request_id=row["request"],
                arrival_us=row["arrival_us"], latency_us=row["latency_us"],
                queue_wait_us=row["queue_wait_us"],
                batch_wait_us=row["batch_wait_us"],
                execute_us=row["execute_us"],
                retry_overhead_us=row.get("retry_overhead_us", 0.0),
                batch_index=row["batch"], batch_size=row["batch_size"],
                status=row.get("status", "served")))
        return out
