"""Coz-style what-if projection over the recorded event graph.

Given an :class:`~repro.obs.critical.EdgeRecorder` from one run, answer
*"how much faster would this workload finish if resource X were f×
faster?"* without re-simulating: replay the dependency DAG in execution
order, shrink every timed delay edge charged to X by ``1/f``, and
propagate new completion times through ``max()`` joins (a node waits
for both its triggering parent and — for event wakeups — the waiter
that registered for it).

This is the virtual-speedup idea of Coz (Curtsinger & Berger, SOSP'15)
applied to a simulator's exact dependency graph instead of sampled
stack unwinds.  The projection scales whole delay edges — queue wait
plus service time combined — which is the right first-order model for
a rate resource: in a busy period both components contract by ``1/f``.
Second-order effects (batching boundaries shifting, arbitration order
flips) are *not* modelled, which is why :mod:`repro.critpath` validates
every projection against a true re-simulation with a scaled
:class:`~repro.config.ChipConfig` and reports the error band
(acceptance: within 10 % of the re-simulated end-to-end delta).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.obs.critical import CriticalPathError, EdgeRecorder, classify_label

__all__ = ["WhatIfProjection", "RESOURCE_SCALINGS", "project_whatif",
           "scaled_chip_config"]


#: resources the projector (and the config re-simulation) can scale —
#: bucket name -> human description of what is virtually sped up
RESOURCE_SCALINGS: Dict[str, str] = {
    "dram": "DRAM controller transfer bandwidth",
    "sram": "shared on-chip SRAM slice bandwidth",
    "noc": "NoC row/column link bandwidth",
    "local_memory": "per-PE local-memory port bandwidth",
}


@dataclass
class WhatIfProjection:
    """Predicted effect of making ``resource`` ``factor``× faster."""

    resource: str
    factor: float
    unit: str
    baseline: float          #: recorded root-to-completion time
    projected: float         #: projected root-to-completion time
    delta: float             #: baseline - projected (positive = faster)
    speedup: float           #: baseline / projected
    scaled_edges: int        #: delay edges charged to the resource
    nodes: int               #: graph nodes replayed

    def to_dict(self) -> Dict:
        return {"resource": self.resource, "factor": self.factor,
                "unit": self.unit, "baseline": self.baseline,
                "projected": self.projected, "delta": self.delta,
                "speedup": self.speedup,
                "scaled_edges": self.scaled_edges, "nodes": self.nodes}

    def to_text(self) -> str:
        return (f"what-if {self.resource} x{self.factor:g}: "
                f"{self.baseline:g} -> {self.projected:g} {self.unit} "
                f"({self.speedup:.3f}x speedup, "
                f"{self.scaled_edges} edges scaled)")


def project_whatif(edges: EdgeRecorder, resource: str, factor: float,
                   completion: Optional[int] = None,
                   unit: str = "cycles") -> WhatIfProjection:
    """Project the completion-time effect of scaling ``resource``.

    Replays ``edges.order`` (a topological order — parents execute
    before children) computing a new finish time per node.  Plain edges
    keep their recorded latency shifted to the parent's new time::

        new_t[n] = max(new_t[parent] + duration, new_t[registrant])

    Delay edges backed by a :class:`~repro.sim.resources.Resource`
    reservation instead replay the resource's own queue recurrence —
    the recorded edge is queue wait plus service, but the queue wait is
    an emergent property of *earlier* reservations, so the projector
    recomputes it from a per-resource ``free_at`` cursor::

        completion = max(new_t[parent], free[res]) + service / f?
        free[res]  = completion

    with ``service`` divided by ``factor`` only for resource instances
    that classify to the scaled ``resource``.  With ``factor == 1``
    this recurrence reproduces the recorded times exactly.  Root nodes
    keep their recorded times, so external arrivals never accelerate.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    if resource not in RESOURCE_SCALINGS:
        known = ", ".join(sorted(RESOURCE_SCALINGS))
        raise ValueError(f"unknown resource {resource!r}; one of {known}")
    if not edges.order:
        raise CriticalPathError("edge recorder saw no executed nodes")

    times = edges.time
    parents = edges.parent
    resources = edges.resource
    services = edges.service
    wait_parents = edges.wait_parent
    new_t: Dict[int, float] = {}
    free: Dict[str, float] = {}
    scale_memo: Dict[str, bool] = {}
    scaled_edges = 0

    for node in edges.order:
        parent = parents.get(node)
        recorded = times[node]
        if parent is None or parent not in new_t:
            new_t[node] = recorded       # root (or pre-recorder parent)
            continue
        charged = resources.get(node)
        if charged is not None:
            service = services.get(node, 0.0)
            hit = scale_memo.get(charged)
            if hit is None:
                hit = classify_label(charged) == resource
                scale_memo[charged] = hit
            if hit:
                service /= factor
                scaled_edges += 1
            start = new_t[parent]
            candidate = max(start, free.get(charged, start)) + service
            free[charged] = candidate
        else:
            candidate = new_t[parent] + (recorded - times[parent])
        registrant = wait_parents.get(node)
        if registrant is not None and registrant in new_t:
            candidate = max(candidate, new_t[registrant])
        new_t[node] = candidate

    target = edges.order[-1] if completion is None else completion
    if target not in times:
        raise CriticalPathError(f"completion node {target} never executed")
    # Root of the completion's causal chain anchors both timelines.
    root = target
    seen = set()
    while True:
        seen.add(root)
        parent = parents.get(root)
        if parent is None or parent not in times or parent in seen:
            break
        root = parent
    baseline = times[target] - times[root]
    projected = new_t[target] - new_t[root]
    return WhatIfProjection(
        resource=resource, factor=factor, unit=unit,
        baseline=baseline, projected=projected,
        delta=baseline - projected,
        speedup=baseline / projected if projected else float("inf"),
        scaled_edges=scaled_edges, nodes=len(edges.order))


def scaled_chip_config(config, resource: str,
                       factor: float) -> Tuple[object, float]:
    """A :class:`~repro.config.ChipConfig` with ``resource`` scaled.

    Returns ``(new_config, effective_factor)``: integer-valued config
    fields round to the nearest realisable width, and the *effective*
    factor (realised value / old value) is what callers should feed to
    :func:`project_whatif` so prediction and re-simulation scale by the
    same amount.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    if resource == "dram":
        old = config.dram.total_bandwidth_gbs
        new = old * factor
        return (replace(config, dram=replace(config.dram,
                                             total_bandwidth_gbs=new)),
                new / old)
    if resource == "sram":
        old = config.sram.bytes_per_cycle
        new = max(1, int(round(old * factor)))
        return (replace(config, sram=replace(config.sram,
                                             bytes_per_cycle=new)),
                new / old)
    if resource == "noc":
        old = config.noc.link_bytes_per_cycle
        new = max(1, int(round(old * factor)))
        return (replace(config, noc=replace(config.noc,
                                            link_bytes_per_cycle=new)),
                new / old)
    if resource == "local_memory":
        old = config.local_memory.bytes_per_cycle
        new = max(1, int(round(old * factor)))
        return (replace(config,
                        local_memory=replace(config.local_memory,
                                             bytes_per_cycle=new)),
                new / old)
    known = ", ".join(sorted(RESOURCE_SCALINGS))
    raise ValueError(f"unknown resource {resource!r}; one of {known}")
