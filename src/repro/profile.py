"""``python -m repro.profile`` — profile a built-in workload.

Runs one workload on a freshly constructed card with tracing and stall
attribution enabled, then prints a bottleneck report::

    python -m repro.profile                      # quickstart FC (small)
    python -m repro.profile fc                   # Figure 7 FC mapping
    python -m repro.profile tbe                  # Figure 12 TBE gather
    python -m repro.profile bmm                  # Figure 13 BatchMatMul
    python -m repro.profile examples/fc_mapping.py --format json

Workloads may be named directly (``quickstart``/``fc``/``tbe``/``bmm``)
or given as a path to one of the example scripts, which is mapped to
the equivalent workload by basename.  ``--format chrome`` writes a
Chrome trace-event file (load in ``chrome://tracing`` / Perfetto)
instead of the report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Tuple

from repro.core.accelerator import Accelerator
from repro.obs.profiler import BottleneckReport, Profiler


def _run_quickstart(acc: Accelerator) -> Dict[str, float]:
    """A small FC — fast enough for CI smoke checks (< 1 s)."""
    from repro.kernels.fc import run_fc
    result = run_fc(acc, m=128, k=256, n=128, dtype="int8",
                    subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
    return {"achieved_tops": result.tops(acc.config.frequency_ghz)}


def _run_fc(acc: Accelerator) -> Dict[str, float]:
    """The Figure 7 mapping: FC 512x1024x256 on a 4x4 sub-grid."""
    from repro.kernels.fc import run_fc
    result = run_fc(acc, m=512, k=1024, n=256, dtype="int8",
                    subgrid=acc.subgrid((0, 0), 4, 4), k_split=2)
    return {"achieved_tops": result.tops(acc.config.frequency_ghz)}


def _run_tbe(acc: Accelerator) -> Dict[str, float]:
    """The Figure 12 sparse path: TBE gather in SRAM-cache mode.

    ``prefetch_rows=1`` models the *production* kernel's shallow
    software pipelining — the paper's explanation for why TBE achieves
    only 10-20 % of DRAM bandwidth ("there are not enough outstanding
    requests to hide the latency", Section 6.1).
    """
    from repro.kernels.tbe import TBEConfig, run_tbe
    config = TBEConfig(num_tables=8, rows_per_table=100_000,
                       embedding_dim=64, pooling_factor=16, batch_size=32)
    result = run_tbe(acc, config, prefetch_rows=1)
    peak_gbs = (acc.config.dram.bytes_per_cycle(acc.config.frequency_ghz)
                * acc.config.frequency_ghz)
    gather = result.gbs(acc.config.frequency_ghz)
    return {"gather_gbs": gather,
            "gather_percent_of_dram_bw": 100.0 * gather / peak_gbs}


def _run_bmm(acc: Accelerator) -> Dict[str, float]:
    """The Figure 13 feature-interaction path: batched small GEMMs."""
    from repro.kernels.batch_matmul import BMMConfig, run_bmm
    config = BMMConfig(batch=64, m=64, k=64, n=64)
    result = run_bmm(acc, config, subgrid=acc.subgrid((0, 0), 4, 4))
    return {"achieved_tops": result.tops(acc.config.frequency_ghz)}


WORKLOADS = {
    "quickstart": _run_quickstart,
    "fc": _run_fc,
    "tbe": _run_tbe,
    "bmm": _run_bmm,
}

#: Example-script basenames mapped to the equivalent workload.
EXAMPLE_ALIASES = {
    "quickstart.py": "quickstart",
    "fc_mapping.py": "fc",
    "tbe_lookup.py": "tbe",
    "multicard.py": "fc",
}


def resolve_workload(spec: str) -> str:
    """Map a workload name or an example-script path to a workload key."""
    if spec in WORKLOADS:
        return spec
    base = os.path.basename(spec)
    if base in EXAMPLE_ALIASES:
        return EXAMPLE_ALIASES[base]
    stem = os.path.splitext(base)[0]
    if stem in WORKLOADS:
        return stem
    known = ", ".join(sorted(WORKLOADS))
    raise SystemExit(f"unknown workload {spec!r}; choose one of {known} "
                     "or a path to an example script")


def profile_workload(name: str, record_edges: bool = False
                     ) -> Tuple[BottleneckReport, Accelerator]:
    """Run one named workload under the profiler; returns the report.

    ``record_edges=True`` additionally records causal dependency edges
    (``acc.edges``) so the caller can extract the critical path — a
    proven no-op on the profiled results.
    """
    runner = WORKLOADS[name]
    acc = Accelerator(observe=True, trace=True, record_edges=record_edges)
    with Profiler(acc, workload=name) as prof:
        extras = runner(acc)
    return prof.report(extras=extras), acc


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Profile a workload on the simulated MTIA card.")
    parser.add_argument("workload", nargs="?", default="quickstart",
                        help="workload name (%s) or an example-script path"
                        % "/".join(sorted(WORKLOADS)))
    parser.add_argument("--format", choices=("text", "json", "chrome"),
                        default="text", help="report format")
    parser.add_argument("--output", "-o", default=None,
                        help="write to this file instead of stdout "
                        "(required for --format chrome)")
    parser.add_argument("--top", type=int, default=10,
                        help="tracks/operations shown in the text report")
    parser.add_argument("--critical", action="store_true",
                        help="record causal edges and attach the "
                        "workload's critical path to the report")
    args = parser.parse_args(argv)

    name = resolve_workload(args.workload)
    report, acc = profile_workload(name, record_edges=args.critical)
    critical = None
    if args.critical:
        from repro.obs.critical import extract_critical_path
        critical = extract_critical_path(acc.edges)

    if args.format == "chrome":
        path = args.output or f"{name}.trace.json"
        acc.save_trace(path)
        print(f"wrote Chrome trace to {path} "
              f"({len(acc.tracer.spans)} spans); open in chrome://tracing")
        return 0

    if args.format == "json":
        text = report.to_json()
        if critical is not None:
            data = json.loads(text)
            data["critical_path"] = critical.to_dict(max_segments=64)
            text = json.dumps(data, indent=2, sort_keys=True)
    else:
        text = report.to_text(top_n=args.top)
        if critical is not None:
            text += "\n\n" + critical.to_text(top=args.top)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
