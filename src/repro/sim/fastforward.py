"""Steady-state fast-forward: analytically skip periodic pipeline phases.

Busy producer/consumer pipelines spend most of their simulated life in a
*steady state*: the same circular-buffer handoffs repeating with a fixed
period.  Simulating ten thousand identical periods one event at a time
is pure waste — if we can prove the engine state recurs, we can skip
``n`` whole periods in O(pending) time and land in a state *bitwise
identical* to the one the event-by-event run would have reached.

The proof obligation is discharged structurally, not statistically:

* **Signature.**  At every genuine time advance (the immediate queue is
  empty, the engine is about to pop a timed entry at ``at``) the
  detector canonicalises the *complete reachable simulation state*:
  every pending timed entry as ``(at - ref, callback)``, where
  callbacks are traversed into the object graph — processes (generator
  instruction pointer ``f_lasti`` plus canonicalised locals), events
  (triggered flag, value, waiter list), bound methods, closures —
  with first-seen indices replacing identities.  Two captures with
  equal signatures are *isomorphic up to a time shift*: every future
  event of one is a shifted copy of the other's.
* **Fail closed.**  Anything the canonicaliser cannot prove periodic
  refuses the capture: unknown object types (hardware models, resources),
  absolute timestamps stashed in locals (they differ every period, so
  the signature never repeats), attached tracers / edge recorders /
  fault injectors, non-integral times (float ``t0 + n·Δ`` is only
  guaranteed to equal step-accumulated sums for integer-valued cycles,
  so fractional steady states are simulated honestly instead).
* **Confirmation.**  A signature must recur **three** times with equal
  period ``Δt``, equal per-period event count ``Δe``, and equal
  per-period telemetry deltas (stall counters, gauges; histogram growth
  refuses) before the detector engages.
* **Skip.**  ``n`` periods are skipped by shifting every pending entry
  time by ``n·Δt`` (a uniform shift is order-preserving, see
  :meth:`~repro.sim.calendar.CalendarQueue.shift_all`), crediting
  ``n·Δe`` to ``events_processed``, and replaying ``n×`` the per-period
  telemetry deltas.  ``n`` is capped so the run still honours ``until``
  (the final partial period is simulated for real) and trips the
  ``max_events`` guard at exactly the event index and timestamp the
  unskipped run would have.

The ticket counter is deliberately *not* advanced across a skip: ticket
values only order coexisting entries, every pending entry keeps its
ticket, and every future draw is larger than all pending tickets in
both runs — so the interleaving, and therefore every observable result,
is unchanged.  The conformance determinism pillar and
``tests/property/test_fastforward.py`` verify on == off bitwise.

FC/TBE kernels do **not** engage: their generator locals carry loop
indices that change every iteration, so the signature honestly never
repeats.  This optimisation targets stationary pipeline phases (and the
fleet/serving layers' synthetic steady loads); see DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FastForward"]

#: traversal guards
_MAX_DEPTH = 64
_MAX_SIGNATURES = 512


class _Refuse(Exception):
    """Internal: state cannot be proven periodic; fail closed."""


class _Canon:
    """Canonicalises reachable engine state into a hashable structure."""

    def __init__(self, engine, ref_time: float) -> None:
        self.engine = engine
        self.ref = ref_time
        self.memo: Dict[int, int] = {}
        self.next_index = 0

    def canon(self, obj: Any, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            raise _Refuse("state graph too deep")
        if obj is None or obj is True or obj is False:
            return obj
        kind = type(obj)
        if kind is int or kind is str:
            return obj
        if kind is float:
            if obj != int(obj):
                # Fractional values may be relative (fine) or absolute
                # timestamps (period-breaking); integral-only keeps the
                # skip arithmetic exact, so refuse the ambiguity.
                raise _Refuse("non-integral float in reachable state")
            return obj
        if kind is tuple:
            return ("T",) + tuple(self.canon(x, depth + 1) for x in obj)
        if kind is list:
            return ("L",) + tuple(self.canon(x, depth + 1) for x in obj)
        if kind is dict:
            items = [(self.canon(k, depth + 1), self.canon(v, depth + 1))
                     for k, v in obj.items()]
            return ("D",) + tuple(sorted(items, key=repr))
        if obj is self.engine:
            return ("ENG",)
        oid = id(obj)
        seen = self.memo.get(oid)
        if seen is not None:
            return ("R", seen)
        from repro.sim.engine import Event, Process
        if isinstance(obj, Process):
            idx = self._register(oid)
            frame = obj.generator.gi_frame
            if frame is None:
                body = ("done",)
            else:
                body = (frame.f_lasti,
                        self.canon(dict(frame.f_locals), depth + 1))
            return ("P", idx, obj._triggered,
                    self.canon(obj._value, depth + 1),
                    self._canon_exc(obj._exception, depth),
                    self._canon_callbacks(obj, depth), body)
        if isinstance(obj, Event):
            idx = self._register(oid)
            return ("E", idx, obj._triggered,
                    self.canon(obj._value, depth + 1),
                    self._canon_exc(obj._exception, depth),
                    self._canon_callbacks(obj, depth))
        self_obj = getattr(obj, "__self__", None)
        if self_obj is not None:  # bound method
            func = obj.__func__
            return ("BM", func.__qualname__, self.canon(self_obj, depth + 1))
        code = getattr(obj, "__code__", None)
        if code is not None:  # plain function / lambda closure
            cells = tuple(
                self.canon(cell.cell_contents, depth + 1)
                for cell in (obj.__closure__ or ()))
            defaults = tuple(
                self.canon(d, depth + 1) for d in (obj.__defaults__ or ()))
            return ("F", obj.__qualname__, code.co_code, cells, defaults)
        if hasattr(obj, "gi_frame"):  # bare generator
            idx = self._register(oid)
            frame = obj.gi_frame
            if frame is None:
                return ("G", idx, "done")
            return ("G", idx, frame.f_lasti,
                    self.canon(dict(frame.f_locals), depth + 1))
        raise _Refuse(f"uncanonicalizable {type(obj).__name__}")

    def _register(self, oid: int) -> int:
        idx = self.next_index
        self.memo[oid] = idx
        self.next_index += 1
        return idx

    def _canon_exc(self, exc: Optional[BaseException], depth: int) -> Any:
        if exc is None:
            return None
        return ("X", type(exc).__qualname__,
                self.canon(tuple(exc.args), depth + 1))

    def _canon_callbacks(self, event, depth: int) -> Any:
        callbacks = event._callbacks
        if not callbacks:
            return ()
        return tuple(self.canon(cb, depth + 1) for cb in callbacks)


def _state_signature(engine, ref_time: float) -> str:
    """Digest of the canonical engine state, relative to ``ref_time``."""
    if ref_time != int(ref_time):
        raise _Refuse("non-integral simulation time")
    entries = sorted(engine._timeq.entries(), key=lambda e: (e[0], e[1]))
    canon = _Canon(engine, ref_time)
    shape: List[Any] = []
    for at, _ticket, callback in entries:
        if at != int(at):
            raise _Refuse("non-integral pending time")
        shape.append((at - ref_time, canon.canon(callback)))
    return hashlib.sha256(repr(tuple(shape)).encode()).hexdigest()


def _obs_snapshot(engine) -> Dict[Tuple[str, Any], float]:
    """Scalar telemetry values, plus distribution counts (as guards)."""
    snap: Dict[Tuple[str, Any], float] = {}
    obs = engine.obs
    if obs is None or not obs.enabled:
        return snap
    for family in obs.registry.families():
        if family.kind in ("counter", "gauge"):
            for key, child in family.samples():
                snap[(family.name, key)] = child.value
        else:
            # Distributions can't be replayed linearly: snapshot their
            # counts so any growth during a period refuses engagement.
            for key, child in family.samples():
                snap[("#dist:" + family.name, key)] = float(
                    getattr(child, "count", 0))
    return snap


def _obs_delta(before: Dict, after: Dict) -> Optional[Dict]:
    """Per-instrument value deltas, or ``None`` if not linearly replayable."""
    delta: Dict[Tuple[str, Any], float] = {}
    for key, value in after.items():
        prev = before.get(key, 0.0)
        if key[0].startswith("#dist:"):
            if value != prev:
                return None  # histogram/sketch/series grew mid-period
            continue
        if value != prev:
            delta[key] = value - prev
    return delta


def _obs_apply(engine, delta: Dict, n: int) -> None:
    obs = engine.obs
    for (name, label_key), amount in delta.items():
        family = obs.registry.family(name)
        child = family._children[label_key]
        child.value += amount * n


class FastForward:
    """Attachable steady-state detector for one :class:`Engine`.

    Enable with ``engine.fast_forward = FastForward()`` (or
    ``Accelerator(fast_forward=True)``); the engine consults it at every
    genuine time advance.  All counters are diagnostics only — they are
    *not* part of the bit-identity contract (wall clock aside, a run
    with the detector attached is indistinguishable from one without).
    """

    def __init__(self) -> None:
        #: signature -> (at, processed, obs_snapshot, confirmed_delta)
        self._seen: Dict[str, tuple] = {}
        self._dead = False
        self._checked_hooks = False
        #: diagnostics
        self.engagements = 0
        self.periods_skipped = 0
        self.events_skipped = 0
        self.cycles_skipped = 0.0
        self.refusals = 0
        self.captures = 0

    # -- engine hook ------------------------------------------------------

    def consider(self, engine, at: float, until: Optional[float],
                 max_events: int, processed: int) -> int:
        """Called pre-pop at a time advance; returns events to credit.

        A non-zero return means ``n`` whole periods were skipped: the
        time queue has been shifted, telemetry replayed, and the caller
        must re-read the queue head and add the return value to its
        processed-event count.
        """
        if self._dead:
            return 0
        if not self._checked_hooks:
            self._checked_hooks = True
            # Tracers record absolute-time spans, edge recorders absolute
            # causal chains, and fault injectors absolute-time windows:
            # none can be replayed by a shift, so fail closed for the run.
            if (engine.tracer.enabled or engine.edges is not None
                    or engine.faults is not None):
                self._dead = True
                self.refusals += 1
                return 0
        if until is None:
            return 0
        self.captures += 1
        try:
            sig = _state_signature(engine, at)
        except _Refuse:
            self.refusals += 1
            return 0
        obs_snap = _obs_snapshot(engine)
        record = self._seen.get(sig)
        if record is None:
            if len(self._seen) >= _MAX_SIGNATURES:
                self._dead = True  # no periodicity in sight; stop paying
                return 0
            self._seen[sig] = (at, processed, obs_snap, None)
            return 0
        prev_at, prev_processed, prev_obs, confirmed = record
        dt = at - prev_at
        de = processed - prev_processed
        if dt <= 0 or de <= 0:
            self._seen[sig] = (at, processed, obs_snap, None)
            return 0
        dobs = _obs_delta(prev_obs, obs_snap)
        period = (dt, de, tuple(sorted(dobs.items(), key=repr))
                  if dobs is not None else None)
        if dobs is None or confirmed != period:
            # First recurrence (or an unstable one): remember the delta
            # and require the *next* period to match it exactly.
            self._seen[sig] = (at, processed, obs_snap, period)
            return 0
        return self._skip(engine, at, until, max_events, processed,
                          dt, de, dobs)

    def _skip(self, engine, at: float, until: float, max_events: int,
              processed: int, dt: float, de: int, dobs: Dict) -> int:
        n = int((until - at) // dt)
        budget = (max_events - processed) // de
        if n >= budget:
            # Leave at least one whole period of event budget: if the
            # max_events guard is going to trip, it must trip during
            # *real* execution so ``engine.now`` at the raise matches
            # the unskipped run exactly.
            n = int(budget) - 1
        if n <= 0:
            return 0
        shift = n * dt
        engine._timeq.shift_all(shift)
        if dobs:
            _obs_apply(engine, dobs, n)
        self.engagements += 1
        self.periods_skipped += n
        self.events_skipped += n * de
        self.cycles_skipped += shift
        # The time base jumped: every stored occurrence time is stale,
        # so restart detection cleanly for any later phase change.
        self._seen.clear()
        return n * de

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "engagements": self.engagements,
            "periods_skipped": self.periods_skipped,
            "events_skipped": self.events_skipped,
            "cycles_skipped": self.cycles_skipped,
            "captures": self.captures,
            "refusals": self.refusals,
        }
