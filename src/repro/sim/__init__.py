"""Discrete-event simulation engine used by the MTIA functional simulator.

The engine is a small, dependency-free simpy-like kernel: *processes* are
Python generators that yield either a delay (number of cycles) or an
:class:`Event` to wait on.  All hardware behaviours in :mod:`repro.core`
(cores issuing commands, the Command Processor stalling an MML on a
circular-buffer element check, DMA engines streaming data over the NoC)
are expressed as processes over this kernel.
"""

from repro.sim.calendar import CalendarQueue, HeapTimeQueue
from repro.sim.engine import Engine, Event, Process, SimulationError
from repro.sim.fastforward import FastForward
from repro.sim.resources import Queue, Resource, Semaphore
from repro.sim.stats import StatGroup
from repro.sim.trace import Span, Tracer

__all__ = [
    "CalendarQueue",
    "Engine",
    "Event",
    "FastForward",
    "HeapTimeQueue",
    "Process",
    "Queue",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Span",
    "StatGroup",
    "Tracer",
]
