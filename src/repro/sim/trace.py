"""Execution tracing: per-unit command timelines.

A :class:`Tracer` collects (who, what, when) spans from the simulator —
every fixed-function-unit command execution, DMA transfer, and core
program phase — and exports them in the Chrome trace-event format
(open ``chrome://tracing`` or https://ui.perfetto.dev and load the
JSON) so kernel pipelines can be inspected visually, the way the
paper's team debugged software pipelining and instruction scheduling
(Section 6.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Span:
    """One traced interval, in cycles."""

    track: str          #: e.g. "pe0.dpe" — becomes the trace row (tid)
    name: str           #: e.g. "MML" — the span label
    start: float
    end: float
    args: tuple = ()    #: extra (key, value) pairs for the viewer
    #: explicit process row for the viewer; when empty, the track's
    #: first dot-component is used (so "pe0.dpe" lands on process
    #: "pe0").  Multi-card and serving spans set this so they do not
    #: collide on one process row.
    pid: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Span collector with Chrome-trace export.

    Disabled tracers are no-ops so the hooks can stay in the hot path;
    enable with ``Tracer(enabled=True)`` or via
    ``Accelerator(trace=True)``.
    """

    def __init__(self, enabled: bool = False, default_pid: str = "") -> None:
        self.enabled = enabled
        #: process row assigned to spans that do not name their own pid
        #: (a multi-card runtime sets this to the card name so two
        #: cards' "pe0" tracks stay on separate rows)
        self.default_pid = default_pid
        self.spans: List[Span] = []

    def record(self, track: str, name: str, start: float, end: float,
               pid: Optional[str] = None, **args) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append(Span(track, name, start, end,
                               tuple(sorted(args.items())),
                               pid if pid is not None else self.default_pid))

    # -- queries -----------------------------------------------------------
    def tracks(self) -> List[str]:
        return sorted({s.track for s in self.spans})

    def spans_on(self, track: str) -> List[Span]:
        return sorted((s for s in self.spans if s.track == track),
                      key=lambda s: s.start)

    def busy_cycles(self, track: str) -> float:
        return sum(s.duration for s in self.spans_on(track))

    def utilization(self, track: str, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles(track) / elapsed)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self, frequency_ghz: float = 0.8) -> dict:
        """Chrome trace-event JSON (cycles converted to microseconds).

        Each span's process row is its explicit ``pid`` when set, else
        the track's first dot-component; the thread row is always the
        full track.  Explicitly-named processes additionally get
        ``process_name`` metadata events so the viewer labels the rows.
        """
        events = []
        pids: Dict[str, int] = {}
        named: Dict[str, int] = {}
        for span in self.spans:
            key = span.pid or span.track.split(".")[0]
            pid = pids.setdefault(key, len(pids))
            if span.pid:
                named[span.pid] = pid
            events.append({
                "name": span.name,
                "cat": span.track.split(".")[-1],
                "ph": "X",
                "ts": span.start / (frequency_ghz * 1e3),
                "dur": max(span.duration, 1e-3) / (frequency_ghz * 1e3),
                "pid": pid,
                "tid": span.track,
                "args": dict(span.args),
            })
        for name, pid in sorted(named.items(), key=lambda kv: kv[1]):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": name}})
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: str, frequency_ghz: float = 0.8) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(frequency_ghz), fh)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-track span counts and busy cycles."""
        out: Dict[str, Dict[str, float]] = {}
        for track in self.tracks():
            spans = self.spans_on(track)
            out[track] = {"spans": len(spans),
                          "busy_cycles": sum(s.duration for s in spans)}
        return out
