"""Execution tracing: per-unit command timelines.

A :class:`Tracer` collects (who, what, when) spans from the simulator —
every fixed-function-unit command execution, DMA transfer, and core
program phase — and exports them in the Chrome trace-event format
(open ``chrome://tracing`` or https://ui.perfetto.dev and load the
JSON) so kernel pipelines can be inspected visually, the way the
paper's team debugged software pipelining and instruction scheduling
(Section 6.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Span:
    """One traced interval, in cycles."""

    track: str          #: e.g. "pe0.dpe" — becomes the trace row (tid)
    name: str           #: e.g. "MML" — the span label
    start: float
    end: float
    args: tuple = ()    #: extra (key, value) pairs for the viewer
    #: explicit process row for the viewer; when empty, the track's
    #: first dot-component is used (so "pe0.dpe" lands on process
    #: "pe0").  Multi-card and serving spans set this so they do not
    #: collide on one process row.
    pid: str = ""
    #: Chrome-trace flow ids arriving at / departing this span.  The
    #: request-level :class:`repro.obs.spans.SpanTracer` allocates the
    #: ids, so a serving-layer span can draw an arrow down to the
    #: cycle-level spans its batch produced.
    flow_in: tuple = ()
    flow_out: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Span collector with Chrome-trace export.

    Disabled tracers are no-ops so the hooks can stay in the hot path;
    enable with ``Tracer(enabled=True)`` or via
    ``Accelerator(trace=True)``.
    """

    def __init__(self, enabled: bool = False, default_pid: str = "") -> None:
        self.enabled = enabled
        #: process row assigned to spans that do not name their own pid
        #: (a multi-card runtime sets this to the card name so two
        #: cards' "pe0" tracks stay on separate rows)
        self.default_pid = default_pid
        self.spans: List[Span] = []

    def record(self, track: str, name: str, start: float, end: float,
               pid: Optional[str] = None, flow_in: tuple = (),
               flow_out: tuple = (), **args) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append(Span(track, name, start, end,
                               tuple(sorted(args.items())),
                               pid if pid is not None else self.default_pid,
                               tuple(flow_in), tuple(flow_out)))

    def mark_flow_in(self, flow_id: int, index: int = 0) -> None:
        """Attach an incoming flow id to the ``index``-th recorded span.

        Used after the fact: the serving layer links its batch span to
        the first cycle-level span of the batch's simulated execution.
        """
        if not self.enabled or not self.spans:
            return
        from dataclasses import replace
        span = self.spans[index]
        self.spans[index] = replace(span,
                                    flow_in=span.flow_in + (flow_id,))

    # -- queries -----------------------------------------------------------
    def tracks(self) -> List[str]:
        return sorted({s.track for s in self.spans})

    def spans_on(self, track: str) -> List[Span]:
        return sorted((s for s in self.spans if s.track == track),
                      key=lambda s: s.start)

    def busy_cycles(self, track: str) -> float:
        return sum(s.duration for s in self.spans_on(track))

    def utilization(self, track: str, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles(track) / elapsed)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self, frequency_ghz: float = 0.8,
                        ts_offset_us: float = 0.0) -> dict:
        """Chrome trace-event JSON (cycles converted to microseconds).

        Each span's process row is its explicit ``pid`` when set, else
        the track's first dot-component; the thread row is always the
        full track.  Explicitly-named processes additionally get
        ``process_name`` metadata events so the viewer labels the rows.

        ``ts_offset_us`` shifts every timestamp — used when merging a
        cycle-level trace into a serving-time trace so the batch's
        simulated execution lines up with its dispatch time (see
        :func:`repro.obs.spans.merge_chrome_traces`).  Flow ids on
        spans become ``s``/``f`` flow events (category ``flow``),
        matching the request-level tracer's convention.
        """
        events = []
        pids: Dict[str, int] = {}
        named: Dict[str, int] = {}
        for span in self.spans:
            key = span.pid or span.track.split(".")[0]
            pid = pids.setdefault(key, len(pids))
            if span.pid:
                named[span.pid] = pid
            ts = ts_offset_us + span.start / (frequency_ghz * 1e3)
            dur = max(span.duration, 1e-3) / (frequency_ghz * 1e3)
            events.append({
                "name": span.name,
                "cat": span.track.split(".")[-1],
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": span.track,
                "args": dict(span.args),
            })
            for fid in span.flow_out:
                events.append({"name": "flow", "cat": "flow", "ph": "s",
                               "id": fid, "ts": ts + dur, "pid": pid,
                               "tid": span.track})
            for fid in span.flow_in:
                events.append({"name": "flow", "cat": "flow", "ph": "f",
                               "bp": "e", "id": fid, "ts": ts, "pid": pid,
                               "tid": span.track})
        for name, pid in sorted(named.items(), key=lambda kv: kv[1]):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": name}})
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: str, frequency_ghz: float = 0.8) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(frequency_ghz), fh)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-track span counts and busy cycles."""
        out: Dict[str, Dict[str, float]] = {}
        for track in self.tracks():
            spans = self.spans_on(track)
            out[track] = {"spans": len(spans),
                          "busy_cycles": sum(s.duration for s in spans)}
        return out
