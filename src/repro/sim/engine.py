"""Event-heap kernel: engine, events, and processes.

Time is measured in accelerator clock *cycles* (integers or floats; the
simulator uses integers except for analytically-derived latencies).

Processes are generators.  A process may yield:

* a non-negative number — advance that many cycles;
* an :class:`Event` — suspend until the event is triggered; the value
  passed to :meth:`Event.succeed` becomes the result of the ``yield``;
* another :class:`Process` — suspend until that process finishes; its
  return value becomes the result of the ``yield``.

A process finishes when its generator returns; ``return value`` inside
the generator becomes :attr:`Process.value`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for protocol errors inside the simulation kernel."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Events follow the usual discrete-event convention: they start
    *pending*, are *triggered* exactly once via :meth:`succeed` or
    :meth:`fail`, and every waiter is resumed at the trigger time.
    """

    __slots__ = ("engine", "_value", "_exception", "_triggered",
                 "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._exception = exception
        self.engine._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            # Already fired: run at the engine's current event pass.
            self.engine._immediate(lambda: callback(self))
        else:
            self._callbacks.append(callback)


class Process(Event):
    """A running generator; also an Event that fires on completion."""

    __slots__ = ("generator",)

    def __init__(self, engine: "Engine",
                 generator: Generator[Any, Any, Any],
                 name: str = "") -> None:
        super().__init__(engine, name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        engine._immediate(lambda: self._resume(None, None))

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            # The process body raised: fail the process event so waiters
            # (and Engine drain checks) observe the error instead of it
            # unwinding through the event loop.
            if not self._triggered:
                self.fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Event):
            target.add_callback(self._on_event)
        elif isinstance(target, (int, float)):
            if target < 0:
                self._resume(None, SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"))
                return
            self.engine.schedule(self.engine.now + target,
                                 lambda: self._resume(None, None))
        else:
            self._resume(None, SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"))

    def _on_event(self, event: Event) -> None:
        try:
            value = event.value
        except BaseException as exc:  # propagate failures into the process
            self._resume(None, exc)
            return
        self._resume(value, None)


class Engine:
    """The discrete-event simulation kernel."""

    def __init__(self) -> None:
        self.now: float = 0
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        # Execution tracer (disabled by default); hardware models emit
        # spans through this so pipelines can be inspected visually.
        from repro.sim.trace import Tracer
        self.tracer = Tracer(enabled=False)
        # Telemetry observer (disabled by default); hardware models
        # attribute stall cycles to named causes through this.
        from repro.obs.observer import Observer
        self.obs = Observer(enabled=False)

    # -- construction helpers ------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name)

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` cycles from now."""
        ev = Event(self, f"timeout({delay})")
        self.schedule(self.now + delay, lambda: ev.succeed())
        return ev

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        done = Event(self, "all_of")
        remaining = [len(events)]
        if not events:
            self._immediate(lambda: done.succeed([]))
            return done
        values: List[Any] = [None] * len(events)

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                if done.triggered:
                    return           # already failed on another child
                try:
                    values[i] = ev.value
                except BaseException as exc:
                    done.fail(exc)   # propagate the first child failure
                    return
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    # -- scheduling ----------------------------------------------------
    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        if at < self.now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._heap, (at, next(self._counter), callback))

    def _immediate(self, callback: Callable[[], None]) -> None:
        self.schedule(self.now, callback)

    def _schedule_event(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, []
        for cb in callbacks:
            self._immediate(lambda cb=cb: cb(event))

    # -- execution -----------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 100_000_000) -> float:
        """Run until the heap drains or simulated time passes ``until``.

        Returns the final simulation time.  ``max_events`` guards
        against runaway simulations (e.g. a deadlocked polling loop).
        """
        processed = 0
        while self._heap:
            at, _, callback = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            callback()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely livelock")
        return self.now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: start ``generator``, run to completion, return value.

        Raises :class:`SimulationError` if the simulation drains without
        the process finishing (i.e. deadlock).
        """
        proc = self.process(generator, name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock?)")
        return proc.value
