"""Event-heap kernel: engine, events, and processes.

Time is measured in accelerator clock *cycles* (integers or floats; the
simulator uses integers except for analytically-derived latencies).

Processes are generators.  A process may yield:

* a non-negative number — advance that many cycles;
* an :class:`Event` — suspend until the event is triggered; the value
  passed to :meth:`Event.succeed` becomes the result of the ``yield``;
* another :class:`Process` — suspend until that process finishes; its
  return value becomes the result of the ``yield``.

A process finishes when its generator returns; ``return value`` inside
the generator becomes :attr:`Process.value`.

Scheduling fast-path
--------------------

Most scheduling traffic in a busy simulation is *immediate*: event
triggers, process resumptions, and zero-delay timeouts all land at the
current timestamp.  Routing those through the time heap costs two
``O(log n)`` heap operations each, so the engine keeps a separate FIFO
deque for same-timestamp callbacks and only uses the heap for genuine
time advances.

Ordering semantics are unchanged: every callback — timed or deque —
still draws a ticket from the one global counter, and the run loop
compares the deque head's ticket against the time-queue head whenever
that head is at the current time, so callbacks at equal timestamps
execute in exactly the order a pure-heap kernel would run them
(``tests/property/test_engine_equivalence.py`` proves this against a
straight-heap reference implementation).

Timed entries live in a :class:`~repro.sim.calendar.CalendarQueue` — a
bucketed calendar queue with O(1) amortised insert/pop and a
numpy-promoted overflow ladder for far-future events — which orders by
the identical ``(at, ticket)`` key the old global heap used, so the
structure swap is invisible to the event stream.
"""

from __future__ import annotations

import itertools
from collections import deque
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.calendar import CalendarQueue

#: Sentinel argument for deque entries whose callback takes no argument.
_NO_ARG = object()

#: Consecutive already-triggered yields a process may consume inline
#: before deferring back through the engine (see Process._resume).  The
#: cap keeps a pathological poll-forever loop reachable by the engine's
#: ``max_events`` guard instead of spinning outside it.
_TRAMPOLINE_CAP = 64


class SimulationError(RuntimeError):
    """Raised for protocol errors inside the simulation kernel."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Events follow the usual discrete-event convention: they start
    *pending*, are *triggered* exactly once via :meth:`succeed` or
    :meth:`fail`, and every waiter is resumed at the trigger time.
    """

    __slots__ = ("engine", "_value", "_exception", "_triggered",
                 "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        #: lazily allocated — most events never get a waiter list before
        #: triggering, and events are created in the millions
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._exception = exception
        self.engine._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        engine = self.engine
        edges = engine.edges
        if self._triggered:
            # Already fired: run at the engine's current event pass.
            ticket = next(engine._counter)
            if edges is not None:
                edges.on_wakeup(ticket, self)
            engine._immediate_q.append((ticket, callback, self))
            return
        if edges is not None:
            edges.on_wait(self)
        if self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


class Process(Event):
    """A running generator; also an Event that fires on completion."""

    __slots__ = ("generator", "_send")

    def __init__(self, engine: "Engine",
                 generator: Generator[Any, Any, Any],
                 name: str = "") -> None:
        super().__init__(engine, name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        self._send = generator.send
        ticket = next(engine._counter)
        edges = engine.edges
        if edges is not None:
            edges.on_spawn(ticket, self.name)
        engine._immediate_q.append((ticket, self._start, _NO_ARG))

    def _start(self) -> None:
        """Resume with no value — initial start and delay expiry."""
        self._resume(None, None)

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self._send(value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            # The process body raised: fail the process event so waiters
            # (and Engine drain checks) observe the error instead of it
            # unwinding through the event loop.
            if not self._triggered:
                self.fail(exc)
            return
        engine = self.engine
        steps = 0
        while True:
            if isinstance(target, Event):
                if not target._triggered:
                    target.add_callback(self._on_event)
                    return
                # Trampoline: the yielded event already fired (a queue
                # get/put with capacity, a pre-satisfied dependency).
                # The normal path draws a ticket, enqueues the wakeup,
                # and the run loop pops it straight back off.  When
                # nothing else is runnable at this instant that wakeup
                # *is* the next callback the engine would execute, so
                # drive the generator inline — provably the same global
                # FIFO order, just without the round-trip.  Any pending
                # immediate callback, or a timed entry at the current
                # timestamp, holds an older ticket than our would-be
                # wakeup and must run first, so defer in those cases.
                # (``_TRAMPOLINE_CAP`` keeps poll-forever loops
                # reachable by the engine's ``max_events`` guard.)
                head = engine._timeq.head
                if (engine._immediate_q
                        or (head is not None and head[0] == engine.now)
                        or steps >= _TRAMPOLINE_CAP):
                    target.add_callback(self._on_event)
                    return
                steps += 1
                # Each inlined wakeup is still one processed event: the
                # count (and the edge recorder's ticket stream) must be
                # indistinguishable from the round-trip path.
                engine.events_processed += 1
                edges = engine.edges
                if edges is not None:
                    ticket = next(engine._counter)
                    edges.on_wakeup(ticket, target)
                    edges.on_execute(ticket, engine.now)
                exc = target._exception
                try:
                    if exc is not None:
                        target = self.generator.throw(exc)
                    else:
                        target = self._send(target._value)
                except StopIteration as stop:
                    if not self._triggered:
                        self.succeed(getattr(stop, "value", None))
                    return
                except BaseException as exc2:
                    if not self._triggered:
                        self.fail(exc2)
                    return
            elif isinstance(target, (int, float)):
                if target < 0:
                    self._resume(None, SimulationError(
                        f"process {self.name!r} yielded negative delay "
                        f"{target}"))
                    return
                engine.schedule(engine.now + target, self._start)
                return
            else:
                self._resume(None, SimulationError(
                    f"process {self.name!r} yielded unsupported {target!r}"))
                return

    def _wait_on(self, target: Any) -> None:
        # Kept for API compatibility; the hot path inlines this logic
        # at the end of :meth:`_resume`.
        if isinstance(target, Event):
            target.add_callback(self._on_event)
        elif isinstance(target, (int, float)):
            if target < 0:
                self._resume(None, SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"))
                return
            self.engine.schedule(self.engine.now + target, self._start)
        else:
            self._resume(None, SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"))

    def _on_event(self, event: Event) -> None:
        if event._exception is not None:
            self._resume(None, event._exception)
            return
        self._resume(event._value, None)


class Engine:
    """The discrete-event simulation kernel."""

    def __init__(self) -> None:
        self.now: float = 0
        #: timed entries ordered by (at, ticket); see module docstring
        self._timeq = CalendarQueue()
        #: same-timestamp callbacks: (ticket, callback, arg) in ticket
        #: order — the scheduling fast-path (see module docstring)
        self._immediate_q: deque = deque()
        self._counter = itertools.count()
        self._running = False
        #: cumulative :meth:`run` statistics (events, wall time, peaks)
        self.events_processed: int = 0
        self.run_wall_s: float = 0.0
        self.peak_heap_size: int = 0
        # Execution tracer (disabled by default); hardware models emit
        # spans through this so pipelines can be inspected visually.
        from repro.sim.trace import Tracer
        self.tracer = Tracer(enabled=False)
        # Telemetry observer (disabled by default); hardware models
        # attribute stall cycles to named causes through this.
        from repro.obs.observer import Observer
        self.obs = Observer(enabled=False)
        #: optional :class:`~repro.faults.FaultInjector`; hardware
        #: models consult it for deterministic fault penalties.  With
        #: ``None`` (the default) the hooks cost one attribute check;
        #: with an attached injector and an empty plan the simulated
        #: event stream is bit-identical to ``None`` (conformance
        #: ``faults`` pillar).
        self.faults = None
        #: optional :class:`~repro.sim.fastforward.FastForward`; when
        #: attached, the run loop offers it every genuine time advance
        #: and it may skip whole steady-state periods (provably
        #: bit-identical — see the module docstring).  ``None`` (the
        #: default) costs one attribute check per time advance.
        self.fast_forward = None
        #: optional :class:`~repro.obs.critical.EdgeRecorder`; every
        #: ticket draw records its causal parent for critical-path
        #: extraction.  Recording never schedules anything and never
        #: draws an extra ticket, so with ``None`` (the default) the
        #: event stream is bit-identical to a kernel without the hooks,
        #: and with a recorder attached the simulated *results* are
        #: unchanged (conformance ``determinism`` pillar,
        #: ``check_critical_noop``).  Attach between runs, not mid-run.
        self.edges = None

    # -- construction helpers ------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name)

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` cycles from now."""
        # The f-string name is only worth building when a critical-path
        # recorder will label nodes with it; ``classify_label`` keys on
        # the "timeout(" prefix either way.
        ev = Event(self, f"timeout({delay})" if self.edges is not None
                   else "timeout()")
        # ``succeed`` with its default value is the whole callback — no
        # lambda needed; zero-delay timeouts take the deque fast-path
        # through :meth:`schedule`.
        self.schedule(self.now + delay, ev.succeed)
        return ev

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        done = Event(self, "all_of")
        remaining = [len(events)]
        if not events:
            self._immediate(lambda: done.succeed([]))
            return done
        values: List[Any] = [None] * len(events)

        for i, ev in enumerate(events):
            def cb(ev: Event, i: int = i) -> None:
                if done._triggered:
                    return           # already failed on another child
                exc = ev._exception
                if exc is not None:
                    done.fail(exc)   # propagate the first child failure
                    return
                values[i] = ev._value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(values.copy())
            ev.add_callback(cb)
        return done

    # -- scheduling ----------------------------------------------------
    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        now = self.now
        if at == now:
            ticket = next(self._counter)
            edges = self.edges
            if edges is not None:
                edges.on_schedule(ticket, callback, 0)
            self._immediate_q.append((ticket, callback, _NO_ARG))
        elif at < now:
            raise SimulationError(
                f"cannot schedule in the past ({at} < {now})")
        else:
            ticket = next(self._counter)
            edges = self.edges
            if edges is not None:
                edges.on_schedule(ticket, callback, at - now)
            timeq = self._timeq
            timeq.push(at, ticket, callback)
            if timeq.size > self.peak_heap_size:
                self.peak_heap_size = timeq.size

    def _immediate(self, callback: Callable[[], None]) -> None:
        ticket = next(self._counter)
        edges = self.edges
        if edges is not None:
            edges.on_schedule(ticket, callback, 0)
        self._immediate_q.append((ticket, callback, _NO_ARG))

    def _schedule_event(self, event: Event) -> None:
        callbacks = event._callbacks
        if not callbacks:
            return
        event._callbacks = None
        counter = self._counter
        append = self._immediate_q.append
        edges = self.edges
        if edges is None:
            for cb in callbacks:
                append((next(counter), cb, event))
        else:
            # Waiters wake in registration order, matching the order
            # the recorder saw their ``on_wait`` registrations.
            for cb in callbacks:
                ticket = next(counter)
                edges.on_wakeup(ticket, event)
                append((ticket, cb, event))

    # -- execution -----------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 100_000_000) -> float:
        """Run until the queues drain or simulated time passes ``until``.

        Returns the final simulation time.  ``max_events`` guards
        against runaway simulations (e.g. a deadlocked polling loop):
        at most ``max_events`` callbacks execute, and the guard raises
        when an (``max_events`` + 1)-th is attempted.
        """
        timeq = self._timeq
        imm = self._immediate_q
        timeq_pop = timeq.pop
        popleft = imm.popleft
        processed = 0
        now = self.now
        edges = self.edges
        ff = self.fast_forward
        wall_start = perf_counter()
        try:
            while True:
                if imm:
                    # The deque holds callbacks at the current time; a
                    # timed entry at the same time with an older ticket
                    # must still run first (global FIFO at equal
                    # timestamps).
                    if (until is not None and now > until):
                        self.now = until
                        break
                    if processed >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely livelock")
                    head = timeq.head
                    if (head is not None and head[0] == now
                            and head[1] < imm[0][0]):
                        entry = timeq_pop()
                        ticket = entry[1]
                        callback = entry[2]
                        arg = _NO_ARG
                    else:
                        ticket, callback, arg = popleft()
                else:
                    head = timeq.head
                    if head is None:
                        break
                    at = head[0]
                    if until is not None and at > until:
                        self.now = until
                        break
                    if ff is not None and at > now:
                        skipped = ff.consider(self, at, until,
                                              max_events, processed)
                        if skipped:
                            processed += skipped
                            head = timeq.head
                            at = head[0]
                    if processed >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely livelock")
                    entry = timeq_pop()
                    self.now = now = at
                    ticket = entry[1]
                    callback = entry[2]
                    arg = _NO_ARG
                if edges is not None:
                    edges.on_execute(ticket, now)
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
                processed += 1
        finally:
            self.events_processed += processed
            self.run_wall_s += perf_counter() - wall_start
            if edges is not None:
                # Anything scheduled by host code between runs roots a
                # fresh causal chain.
                edges.current = None
        return self.now

    def run_stats(self) -> dict:
        """Cumulative kernel-speed statistics over every :meth:`run`.

        ``events_per_sec_wall`` is the headline DES-throughput number
        the perf-trajectory benchmark tracks; ``peak_heap_size`` shows
        how much scheduling actually needed the time heap (the
        same-timestamp fast-path bypasses it).
        """
        wall = self.run_wall_s
        return {
            "events_processed": self.events_processed,
            "events_per_sec_wall": (self.events_processed / wall
                                    if wall > 0 else 0.0),
            "peak_heap_size": self.peak_heap_size,
            "run_wall_s": wall,
        }

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: start ``generator``, run to completion, return value.

        Raises :class:`SimulationError` if the simulation drains without
        the process finishing (i.e. deadlock).
        """
        proc = self.process(generator, name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock?)")
        return proc.value
