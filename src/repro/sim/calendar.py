"""Time-ordered pending-event queues for the DES engine.

Two interchangeable implementations of the same tiny interface:

* :class:`HeapTimeQueue` — a single binary heap, the pre-PR-9 structure.
  Kept as the straight-line reference for the equivalence property suite.
* :class:`CalendarQueue` — a bucketed calendar queue (Brown 1988): the
  near-future time axis is partitioned into fixed-width buckets, each a
  small heap, with an unsorted *overflow ladder* holding far-future
  entries.  Inserts land in their bucket in O(1) amortised; pops drain
  the cursor bucket.  When every bucket is empty the overflow ladder is
  promoted in one numpy-vectorised batch and the calendar re-based.

Both queues order entries by ``(at, ticket)`` — exactly the tuple order
the old global heap used — so the engine's interleaving is preserved
bit-for-bit regardless of which queue backs it.  The engine's
same-timestamp FIFO fast path lives outside the queue and is untouched.

Interface contract (what :class:`repro.sim.engine.Engine` relies on):

* ``push(at, ticket, callback)`` — insert; ``at`` may be any float not
  less than the earliest un-popped time (backdated pushes below the
  calendar base trigger a rare O(n) rebuild and stay correct).
* ``pop()`` — remove and return the ``(at, ticket, callback)`` with the
  smallest ``(at, ticket)``.
* ``head`` — ``(at, ticket)`` of the next entry, or ``None`` when empty;
  maintained incrementally so the engine's hot loop can tie-check the
  FIFO fast path without a method call.
* ``size`` — number of pending entries (drives ``peak_heap_size``).
* ``shift_all(delta)`` — add ``delta`` to every pending time; a monotone
  shift preserves ``(at, ticket)`` order, so fast-forward skips can
  teleport the calendar without re-sorting.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = ["CalendarQueue", "HeapTimeQueue"]

Entry = Tuple[float, int, Any]


class HeapTimeQueue:
    """Single binary heap of ``(at, ticket, callback)`` — the reference."""

    __slots__ = ("_heap", "head", "size")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self.head: Optional[Tuple[float, int]] = None
        self.size = 0

    def push(self, at: float, ticket: int, callback: Any) -> None:
        heappush(self._heap, (at, ticket, callback))
        self.size += 1
        top = self._heap[0]
        self.head = (top[0], top[1])

    def pop(self) -> Entry:
        entry = heappop(self._heap)
        self.size -= 1
        if self._heap:
            top = self._heap[0]
            self.head = (top[0], top[1])
        else:
            self.head = None
        return entry

    def shift_all(self, delta: float) -> None:
        # A uniform shift is monotone in time and leaves tickets alone,
        # so the heap invariant survives an in-place rewrite.
        self._heap = [(at + delta, ticket, cb) for at, ticket, cb in self._heap]
        if self.head is not None:
            self.head = (self.head[0] + delta, self.head[1])

    def entries(self) -> List[Entry]:
        return list(self._heap)


class CalendarQueue:
    """Bucketed calendar queue with a numpy-promoted overflow ladder.

    Invariants:

    * every bucket entry has ``base <= at < limit`` and sits in bucket
      ``int((at - base) / width)`` (clamped to the last bucket on float
      boundary round-off, which can only move an entry *later*-bucket-ward
      within its true half-open range);
    * every overflow entry has ``at >= limit`` — so any bucket entry
      orders before any overflow entry and ``head`` never needs to
      compare across the two tiers while buckets are non-empty;
    * ``cursor`` is the index of the first possibly-non-empty bucket;
      pushes below the cursor pull it back.
    """

    __slots__ = (
        "width",
        "nbuckets",
        "base",
        "limit",
        "cursor",
        "_buckets",
        "_bucket_count",
        "_ov_at",
        "_ov_ticket",
        "_ov_cb",
        "_ov_min",
        "head",
        "size",
    )

    def __init__(self, width: float = 16.0, nbuckets: int = 256) -> None:
        if width <= 0:
            raise ValueError("bucket width must be positive")
        if nbuckets < 1:
            raise ValueError("need at least one bucket")
        self.width = float(width)
        self.nbuckets = int(nbuckets)
        self.base = 0.0
        self.limit = self.base + self.width * self.nbuckets
        self.cursor = 0
        self._buckets: List[List[Entry]] = [[] for _ in range(self.nbuckets)]
        self._bucket_count = 0
        self._ov_at: List[float] = []
        self._ov_ticket: List[int] = []
        self._ov_cb: List[Any] = []
        self._ov_min: Optional[Tuple[float, int]] = None
        self.head: Optional[Tuple[float, int]] = None
        self.size = 0

    # -- insertion ---------------------------------------------------------

    def push(self, at: float, ticket: int, callback: Any) -> None:
        if at >= self.limit:
            self._ov_at.append(at)
            self._ov_ticket.append(ticket)
            self._ov_cb.append(callback)
            key = (at, ticket)
            if self._ov_min is None or key < self._ov_min:
                self._ov_min = key
        elif at < self.base:
            # Backdated push (e.g. after an until-break rewound `now`):
            # re-base the whole calendar around the new earliest time.
            self._rebase(at)
            self._place(at, ticket, callback)
        else:
            self._place(at, ticket, callback)
        self.size += 1
        key = (at, ticket)
        if self.head is None or key < self.head:
            self.head = key

    def _place(self, at: float, ticket: int, callback: Any) -> None:
        idx = int((at - self.base) / self.width)
        if idx >= self.nbuckets:  # float round-off at the limit boundary
            idx = self.nbuckets - 1
        heappush(self._buckets[idx], (at, ticket, callback))
        self._bucket_count += 1
        if idx < self.cursor:
            self.cursor = idx

    # -- removal -----------------------------------------------------------

    def pop(self) -> Entry:
        if not self._bucket_count:
            self._promote()
        buckets = self._buckets
        cursor = self.cursor
        while not buckets[cursor]:
            cursor += 1
        entry = heappop(buckets[cursor])
        self._bucket_count -= 1
        self.size -= 1
        if self._bucket_count:
            while not buckets[cursor]:
                cursor += 1
            top = buckets[cursor][0]
            self.head = (top[0], top[1])
        elif self.size:
            self.head = self._ov_min
        else:
            self.head = None
        self.cursor = cursor
        return entry

    def _promote(self) -> None:
        """Move the near slice of the overflow ladder into fresh buckets."""
        if not self._ov_at:
            raise IndexError("pop from an empty CalendarQueue")
        assert self._ov_min is not None
        at = np.asarray(self._ov_at, dtype=np.float64)
        base = math.floor(self._ov_min[0] / self.width) * self.width
        limit = base + self.width * self.nbuckets
        near = at < limit
        idx_near = np.nonzero(near)[0]
        self.base = base
        self.limit = limit
        for i in idx_near.tolist():
            self._place(self._ov_at[i], self._ov_ticket[i], self._ov_cb[i])
        if idx_near.size != at.size:
            idx_far = np.nonzero(~near)[0]
            far_at = at[idx_far]
            order = int(idx_far[int(np.argmin(far_at))])
            # argmin alone ignores ticket ties at equal times; resolve them.
            best = (self._ov_at[order], self._ov_ticket[order])
            for i in idx_far.tolist():
                key = (self._ov_at[i], self._ov_ticket[i])
                if key < best:
                    best = key
            self._ov_at = [self._ov_at[i] for i in idx_far.tolist()]
            self._ov_ticket = [self._ov_ticket[i] for i in idx_far.tolist()]
            self._ov_cb = [self._ov_cb[i] for i in idx_far.tolist()]
            self._ov_min = best
        else:
            self._ov_at = []
            self._ov_ticket = []
            self._ov_cb = []
            self._ov_min = None
        self.cursor = 0

    # -- maintenance -------------------------------------------------------

    def _rebase(self, earliest: float) -> None:
        """O(n) rebuild around a new base (rare: backdated push)."""
        pending: List[Entry] = []
        for bucket in self._buckets:
            pending.extend(bucket)
            bucket.clear()
        self._bucket_count = 0
        self.base = math.floor(earliest / self.width) * self.width
        self.limit = self.base + self.width * self.nbuckets
        self.cursor = 0
        keep_at, keep_ticket, keep_cb = [], [], []
        for at, ticket, cb in pending:
            if at < self.limit:
                self._place(at, ticket, cb)
            else:
                keep_at.append(at)
                keep_ticket.append(ticket)
                keep_cb.append(cb)
        if keep_at:
            self._ov_at.extend(keep_at)
            self._ov_ticket.extend(keep_ticket)
            self._ov_cb.extend(keep_cb)
            best = self._ov_min
            for at, ticket in zip(keep_at, keep_ticket):
                key = (at, ticket)
                if best is None or key < best:
                    best = key
            self._ov_min = best

    def shift_all(self, delta: float) -> None:
        """Uniform time shift — order-preserving, used by fast-forward."""
        self.base += delta
        self.limit += delta
        for i, bucket in enumerate(self._buckets):
            if bucket:
                self._buckets[i] = [
                    (at + delta, ticket, cb) for at, ticket, cb in bucket
                ]
        if self._ov_at:
            self._ov_at = [at + delta for at in self._ov_at]
        if self._ov_min is not None:
            self._ov_min = (self._ov_min[0] + delta, self._ov_min[1])
        if self.head is not None:
            self.head = (self.head[0] + delta, self.head[1])

    def entries(self) -> List[Entry]:
        out: List[Entry] = []
        for bucket in self._buckets:
            out.extend(bucket)
        out.extend(zip(self._ov_at, self._ov_ticket, self._ov_cb))
        return out
