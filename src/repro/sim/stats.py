"""Lightweight statistics collection for simulator components.

Every hardware model owns a :class:`StatGroup`; counters accumulate
scalar totals (bytes moved, commands dispatched, stall cycles) and can
be merged hierarchically (PE stats roll up to grid stats).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping


class StatGroup:
    """A named bag of additive counters."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counters[key] += amount

    def set_max(self, key: str, value: float) -> None:
        """Track a running maximum under ``key``."""
        if value > self._counters.get(key, float("-inf")):
            self._counters[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters[key]

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def merge(self, other: "StatGroup", prefix: str = "") -> None:
        """Add every counter of ``other`` into this group."""
        for key, value in other._counters.items():
            self._counters[prefix + key] += value

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy, for later :meth:`diff`.

        Lets a benchmark measure one kernel invocation out of a longer
        run without :meth:`reset` clobbering the accumulated totals.
        """
        return dict(self._counters)

    def diff(self, since: Mapping[str, float]) -> Dict[str, float]:
        """Counter deltas accumulated since ``since`` (a snapshot).

        Keys whose value did not change are omitted; keys present only
        in the snapshot (e.g. taken from another group) are ignored.
        """
        out: Dict[str, float] = {}
        for key, value in self._counters.items():
            delta = value - since.get(key, 0.0)
            if delta != 0.0:
                out[key] = delta
        return out

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name!r}: {body})"
