"""Shared-resource primitives built on the event kernel.

These model contention: a memory port, a NoC link, or a command queue
slot.  They are deliberately small — the hardware-specific arbitration
policies live with the hardware models in :mod:`repro.core` and
:mod:`repro.memory`.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import Engine, Event, SimulationError


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, engine: Engine, capacity: int, name: str = "sem") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.engine = engine
        self.name = name
        self._acquire_name = f"{name}.acquire"
        self._available = capacity
        self.capacity = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    def acquire(self) -> Event:
        """Return an event that fires once a unit has been granted."""
        ev = Event(self.engine, self._acquire_name)
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"{self.name}: release without acquire")


class Resource:
    """A throughput-limited resource (a port or link).

    ``use(amount)`` is a process that occupies the resource for
    ``amount / rate`` cycles, serialising with other users.  This models
    a single arbitration point with full utilisation under backlog.
    """

    def __init__(self, engine: Engine, rate_per_cycle: float,
                 name: str = "res",
                 stall_cause: Optional[str] = None) -> None:
        if rate_per_cycle <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate_per_cycle
        self.name = name
        #: attribution cause reported to ``engine.obs`` for cycles a
        #: user spends queued behind earlier users (``None`` = silent)
        self.stall_cause = stall_cause
        #: the earliest cycle at which a new transfer may start
        self._free_at: float = 0
        #: total units transferred (for utilisation statistics)
        self.total_units: float = 0
        self.busy_cycles: float = 0
        self.queue_cycles: float = 0

    def service_time(self, amount: float) -> float:
        return amount / self.rate

    def delay_for(self, amount: float) -> float:
        """Reserve the resource *now*; return the delay until completion.

        This is the synchronous core of :meth:`use`: accounting happens
        at the call site's position in the event order, exactly where a
        ``use`` generator would have run it on first resume.
        """
        now = self.engine.now
        start = self._free_at
        if start > now:
            self.queue_cycles += start - now
            if self.stall_cause is not None:
                self.engine.obs.stall(self.name, self.stall_cause, now, start)
        else:
            start = now
        duration = amount / self.rate
        self._free_at = start + duration
        self.total_units += amount
        self.busy_cycles += duration
        edges = self.engine.edges
        if edges is not None:
            # The caller schedules this reservation's completion as its
            # very next engine call, so the recorder can pair the
            # (resource, service) split with that delay edge — the
            # what-if projector replays the queue recurrence from it.
            edges.on_charge(self.name, duration)
        return self._free_at - now

    def use(self, amount: float) -> Generator:
        """Occupy the resource for ``amount`` units of traffic."""
        yield self.delay_for(amount)

    def charge(self, amount: float, name: Optional[str] = None) -> Event:
        """Event-returning equivalent of ``engine.process(self.use(amount))``.

        Reserves the resource at the same event-queue position a spawned
        process would (deferred one immediate-queue hop), fires the
        returned event at the same position the process-completion event
        would fire, and skips the generator/Process machinery entirely —
        the ticket sequence is identical, so simulated interleavings are
        bit-for-bit unchanged (the equivalence suite pins this).
        """
        done = Event(self.engine, name if name is not None else self.name)
        self.engine._immediate(partial(self._charge_begin, amount, done))
        return done

    def _charge_begin(self, amount: float, done: Event) -> None:
        delay = self.delay_for(amount)
        # Always route completion through the scheduler — even for a
        # zero delay — so the event fires at the same queue position as
        # a process resuming from ``yield 0`` would have.
        self.engine.schedule(self.engine.now + delay, done.succeed)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of cycles the resource was busy."""
        elapsed = elapsed if elapsed is not None else self.engine.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)


class Queue:
    """A bounded FIFO connecting producer and consumer processes."""

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = "queue") -> None:
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._put_name = f"{name}.put"
        self._get_name = f"{name}.get"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once the item has been enqueued."""
        ev = Event(self.engine, self._put_name)
        if self._getters:
            # Hand the item directly to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif not self.full:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.engine, self._get_name)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev
