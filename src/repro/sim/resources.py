"""Shared-resource primitives built on the event kernel.

These model contention: a memory port, a NoC link, or a command queue
slot.  They are deliberately small — the hardware-specific arbitration
policies live with the hardware models in :mod:`repro.core` and
:mod:`repro.memory`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import Engine, Event, SimulationError


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, engine: Engine, capacity: int, name: str = "sem") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.engine = engine
        self.name = name
        self._available = capacity
        self.capacity = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    def acquire(self) -> Event:
        """Return an event that fires once a unit has been granted."""
        ev = self.engine.event(f"{self.name}.acquire")
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"{self.name}: release without acquire")


class Resource:
    """A throughput-limited resource (a port or link).

    ``use(amount)`` is a process that occupies the resource for
    ``amount / rate`` cycles, serialising with other users.  This models
    a single arbitration point with full utilisation under backlog.
    """

    def __init__(self, engine: Engine, rate_per_cycle: float,
                 name: str = "res",
                 stall_cause: Optional[str] = None) -> None:
        if rate_per_cycle <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate_per_cycle
        self.name = name
        #: attribution cause reported to ``engine.obs`` for cycles a
        #: user spends queued behind earlier users (``None`` = silent)
        self.stall_cause = stall_cause
        #: the earliest cycle at which a new transfer may start
        self._free_at: float = 0
        #: total units transferred (for utilisation statistics)
        self.total_units: float = 0
        self.busy_cycles: float = 0
        self.queue_cycles: float = 0

    def service_time(self, amount: float) -> float:
        return amount / self.rate

    def use(self, amount: float) -> Generator:
        """Occupy the resource for ``amount`` units of traffic."""
        now = self.engine.now
        start = max(now, self._free_at)
        if start > now:
            self.queue_cycles += start - now
            if self.stall_cause is not None:
                self.engine.obs.stall(self.name, self.stall_cause, now, start)
        duration = self.service_time(amount)
        self._free_at = start + duration
        self.total_units += amount
        self.busy_cycles += duration
        yield self._free_at - self.engine.now

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of cycles the resource was busy."""
        elapsed = elapsed if elapsed is not None else self.engine.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)


class Queue:
    """A bounded FIFO connecting producer and consumer processes."""

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = "queue") -> None:
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once the item has been enqueued."""
        ev = self.engine.event(f"{self.name}.put")
        if self._getters:
            # Hand the item directly to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif not self.full:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.engine.event(f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev
