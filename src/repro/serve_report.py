"""``python -m repro.serve_report`` — request-level serving observability.

Runs one serving workload (a DLRM from the model zoo behind the
batching front end) and answers the question the aggregate percentiles
cannot: *why did the p99 request land at p99?*  The report contains

* the per-request queue-wait / batch-formation-wait / execute breakdown
  (each request's latency attributed exactly);
* queue-depth and batch-occupancy time series;
* an SLO monitor: rolling p50/p95/p99 windows and error-budget burn
  against the SLA;
* a **differential tail attribution**: the phase, operator-category and
  stall-cause mix of tail (≥ p99) requests contrasted with median
  requests, with a tail-exemplar and a median-exemplar batch profiled
  on the cycle-level simulator.

Usage::

    python -m repro.serve_report                      # quickstart, text
    python -m repro.serve_report quickstart --json    # machine-readable
    python -m repro.serve_report lc2 --qps 40000 --sla-us 1500
    python -m repro.serve_report quickstart --chrome -o serve.trace.json

``--chrome`` writes one merged Perfetto/Chrome trace: request
waterfalls flow-link to their batch's device span, the batch span to
its modelled per-op execution, and the exemplar batches to real
cycle-level DPE/NoC/DRAM spans from the discrete-event simulator.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serving.simulator import (BatchingConfig, BatchLatencyModel,
                                     ServingReport, simulate_serving)
from repro.serving.slo import SLOSummary, slo_from_report
from repro.serving.tail import TailAttribution, attribute_tail
from repro.serving.telemetry import ServingTelemetry, emit_exemplar_spans

SCHEMA_VERSION = 1

#: Named serving workloads: model-zoo entry + default operating point.
WORKLOADS: Dict[str, Dict] = {
    # Small FC-dominated model at moderate load — fast enough for CI.
    "quickstart": {"model": "LC2", "qps": 10_000.0, "sla_us": 2_000.0,
                   "num_requests": 4000},
    "lc2": {"model": "LC2", "qps": 50_000.0, "sla_us": 2_000.0,
            "num_requests": 6000},
    "mc1": {"model": "MC1", "qps": 2_000.0, "sla_us": 10_000.0,
            "num_requests": 3000},
}


@dataclass
class ServeReport:
    """Everything one serving-observability run produced."""

    workload: str
    model: str
    machine: str
    qps: float
    sla_us: float
    num_requests: int
    seed: int
    batching: BatchingConfig
    serving: ServingReport
    slo: SLOSummary
    tail: TailAttribution
    max_request_rows: int = 100
    #: merged fleet telemetry (replica 0 = the fully-reported run above,
    #: replicas 1..R-1 contribute bounded aggregates only)
    telemetry: Optional[ServingTelemetry] = None
    #: sketch-vs-exact percentile deltas for replica 0 (the only replica
    #: whose raw samples exist in-process to compare against)
    sketch_vs_exact: Optional[Dict] = None
    replicas: int = 1

    def to_dict(self) -> Dict:
        max_batch = self.batching.max_batch
        rows = self.serving.request_rows(
            self.max_request_rows if self.max_request_rows > 0 else None)
        return {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "model": self.model,
            "machine": self.machine,
            "qps": self.qps,
            "sla_us": self.sla_us,
            "num_requests": self.num_requests,
            "seed": self.seed,
            "batching": {"max_batch": max_batch,
                         "max_wait_us": self.batching.max_wait_us},
            "throughput": {
                "qps_offered": self.serving.qps_offered,
                "qps_served": self.serving.qps_served,
                "busy_fraction": self.serving.busy_fraction,
                "mean_batch": self.serving.mean_batch,
                "batches": len(self.serving.batches),
            },
            "latency_us": {
                "p50": self.serving.percentile(50),
                "p95": self.serving.percentile(95),
                "p99": self.serving.percentile(99),
                "mean": float(self.serving.latencies_us.mean())
                if self.serving.latencies_us.size else 0.0,
            },
            "breakdown_us": self.serving.breakdown_means(),
            "queue_depth": self.serving.queue_depth_series(),
            "batch_occupancy":
                self.serving.batch_occupancy_series(max_batch),
            "requests": rows,
            "request_rows_included": len(rows),
            "slo": self.slo.to_dict(),
            "tail_attribution": self.tail.to_dict(),
            "replicas": self.replicas,
            "telemetry": (self.telemetry.to_dict()
                          if self.telemetry is not None else None),
            "sketch_vs_exact": self.sketch_vs_exact,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        s = self.serving
        breakdown = s.breakdown_means()
        lines = [
            f"serve report — {self.workload} ({self.model} on "
            f"{self.machine}, {self.qps:g} QPS offered)",
            f"requests: {self.num_requests}  batches: {len(s.batches)}  "
            f"mean batch: {s.mean_batch:.1f}  "
            f"busy: {100 * s.busy_fraction:.1f} %",
            "",
            "== latency ==",
            f"  p50 {s.percentile(50):8.1f} us   p95 "
            f"{s.percentile(95):8.1f} us   p99 {s.percentile(99):8.1f} us",
            "",
            "== mean request breakdown (queue + batch + execute "
            "== latency) ==",
        ]
        for phase in ("queue_wait", "batch_wait", "execute"):
            lines.append(f"  {phase:<12}{breakdown[phase]:10.1f} us")
        lines.append("")
        lines.append(f"== SLO (p.. <= {self.sla_us:g} us at "
                     f"{100 * self.slo.availability_target:g} % "
                     "availability) ==")
        lines.append(f"  violations: {self.slo.violations}/"
                     f"{self.slo.total}  "
                     f"burn rate: {self.slo.burn_rate:.2f}  "
                     f"peak window burn: {self.slo.peak_window_burn:.2f}")
        depth = s.queue_depth_series()["depth"]
        if depth:
            lines.append(f"  queue depth: mean "
                         f"{sum(depth) / len(depth):.1f}  max "
                         f"{max(depth):.0f}")
        lines.append("")
        lines.append("== differential tail attribution ==")
        lines.append(self.tail.to_text())
        if self.telemetry is not None:
            lines.append("")
            lines.append(f"== fleet telemetry ({self.replicas} "
                         "replica(s), bounded aggregates) ==")
            lines.append(self.telemetry.to_text())
            if self.sketch_vs_exact:
                parts = []
                for name in ("p50", "p95", "p99"):
                    row = self.sketch_vs_exact[name]
                    parts.append(f"{name} {100 * row['relative_error']:.2f} %")
                lines.append("  sketch error vs exact (replica 0): "
                             + "  ".join(parts))
        return "\n".join(lines)


def _profile_exemplar(batch_size: int, name: str):
    """Cycle-level exemplar: profile an FC whose m-dim is the batch.

    The FC's row dimension is the batch dimension of the dense stack,
    so a tail-sized and a median-sized batch produce genuinely
    different stall mixes (bigger batches amortise CB/interlock waits,
    smaller ones are launch/dependency bound).  Returns the bottleneck
    report and the accelerator (its tracer holds the cycle spans).
    """
    from repro.core.accelerator import Accelerator
    from repro.kernels.fc import run_fc
    from repro.obs.profiler import Profiler

    # m must tile 64 rows/PE across the 2-row sub-grid -> multiple of 128.
    m = max(128, min(512, ((batch_size + 127) // 128) * 128))
    acc = Accelerator(observe=True, trace=True, name=name)
    with Profiler(acc, workload=name) as prof:
        run_fc(acc, m=m, k=256, n=128, dtype="int8",
               subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
    return prof.report(), acc


def _replica_telemetry_job(task: Tuple) -> ServingTelemetry:
    """Satellite replica: run one serving stream, ship telemetry only.

    Module-level (picklable) for :func:`repro.parallel.parallel_map`.
    Rebuilds the latency model from names — raw samples never leave
    the replica, only the bounded :class:`ServingTelemetry`.
    """
    (model_name, machine_name, qps, max_batch, max_wait_us,
     num_requests, seed, replica) = task
    from repro.eval.machines import MACHINES
    from repro.models.configs import MODEL_ZOO
    latency_model = BatchLatencyModel(MODEL_ZOO[model_name],
                                      MACHINES[machine_name])
    report = simulate_serving(
        latency_model, qps,
        BatchingConfig(max_batch=max_batch, max_wait_us=max_wait_us),
        num_requests=num_requests, seed=seed, registry=None,
        collect_telemetry=True, replica=replica)
    return report.telemetry


def run_serve_report(workload: str = "quickstart",
                     qps: Optional[float] = None,
                     sla_us: Optional[float] = None,
                     num_requests: Optional[int] = None,
                     seed: int = 0,
                     availability: float = 0.999,
                     window_us: float = 50_000.0,
                     batching: BatchingConfig = BatchingConfig(),
                     max_request_rows: int = 100,
                     exemplars: bool = True,
                     latency_model: Optional[BatchLatencyModel] = None,
                     replicas: int = 1,
                     jobs: int = 1,
                     ) -> Tuple[ServeReport, BatchLatencyModel]:
    """Run one serving workload and assemble the observability report.

    ``replicas`` simulates a small fleet: replica 0 runs in-process
    and keeps its exact per-request report (SLO, tail attribution,
    request rows all describe replica 0); replicas 1..R-1 run their
    own arrival streams (``seed + i``) — in worker processes when
    ``jobs > 1`` — and contribute *only* bounded telemetry, which is
    merged in replica-index order.  The merged report is byte-identical
    at any ``jobs`` count (CI diffs ``--jobs 1`` against ``--jobs 4``).
    """
    if workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose one of {known}")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    spec = WORKLOADS[workload]
    qps = qps if qps is not None else spec["qps"]
    sla_us = sla_us if sla_us is not None else spec["sla_us"]
    num_requests = (num_requests if num_requests is not None
                    else spec["num_requests"])

    if latency_model is None:
        from repro.eval.machines import MACHINES
        from repro.models.configs import MODEL_ZOO
        latency_model = BatchLatencyModel(MODEL_ZOO[spec["model"]],
                                          MACHINES["mtia"])
    serving = simulate_serving(latency_model, qps, batching,
                               num_requests=num_requests, seed=seed,
                               collect_telemetry=True, replica=0)
    sketch_vs_exact = serving.telemetry.sketch_vs_exact(serving)
    telemetry = serving.telemetry
    if replicas > 1:
        from repro.parallel import parallel_map
        tasks = [(spec["model"], "mtia", qps, batching.max_batch,
                  batching.max_wait_us, num_requests, seed + i, i)
                 for i in range(1, replicas)]
        satellites = parallel_map(_replica_telemetry_job, tasks, jobs=jobs)
        telemetry = ServingTelemetry.merge_all([telemetry]
                                               + list(satellites))
    slo = slo_from_report(serving, sla_us,
                          availability_target=availability,
                          window_us=window_us)
    tail = attribute_tail(serving, latency_model)
    if exemplars and serving.latencies_us.size:
        stall_mix: Dict[str, Dict[str, float]] = {}
        for cohort in ("tail", "median"):
            batch = serving.batches[tail.exemplar_batches[cohort]]
            prof, _ = _profile_exemplar(batch.size, f"{cohort}.sim")
            stall_mix[cohort] = prof.stall_fractions()
        tail = attribute_tail(serving, latency_model, stall_mix=stall_mix)
    report = ServeReport(
        workload=workload, model=spec["model"], machine="mtia",
        qps=qps, sla_us=sla_us, num_requests=num_requests, seed=seed,
        batching=batching, serving=serving, slo=slo, tail=tail,
        max_request_rows=max_request_rows, telemetry=telemetry,
        sketch_vs_exact=sketch_vs_exact, replicas=replicas)
    return report, latency_model


def build_chrome_trace(report: ServeReport,
                       latency_model: BatchLatencyModel) -> dict:
    """One merged trace: request waterfall → batch → ops → sim cycles.

    Re-simulates the same seed with span tracing restricted to the two
    exemplar batches (determinism makes the replay bit-identical), then
    lays each exemplar's modelled per-op execution and a cycle-level
    simulated execution into the batch's dispatch window, flow-linked:
    request → batch → graph_execute, batch → first sim span.

    The telemetry layer's slowest-k exemplar requests additionally get
    their request waterfalls reconstructed post-hoc
    (:func:`~repro.serving.telemetry.emit_exemplar_spans`) — the tail
    requests appear on the timeline without tracing every request.
    """
    import numpy as np

    from repro.obs.spans import SpanTracer, merge_chrome_traces
    from repro.runtime.executor import record_graph_spans

    exemplars = report.tail.exemplar_batches
    spans = SpanTracer(enabled=True)
    replay = simulate_serving(
        latency_model, report.qps, report.batching,
        num_requests=report.num_requests, seed=report.seed,
        spans=spans, trace_batches=set(exemplars.values()))
    if report.telemetry is not None:
        # Slowest-k waterfalls, skipping requests the batch-exemplar
        # tracing above already drew (first 8 members per traced batch).
        traced = set()
        for k in exemplars.values():
            members = np.flatnonzero(replay.batch_index == k)[:8]
            traced.update(int(m) for m in members)
        slow = [rid for rep, rid in report.telemetry.exemplars.slowest_ids()
                if rep == 0 and rid not in traced]
        emit_exemplar_spans(replay, slow, spans)
    sim_traces: List[dict] = []
    for cohort, k in sorted(exemplars.items()):
        batch = replay.batches[k]
        batch_spans = spans.find(f"batch{k}")
        if not batch_spans:
            continue
        batch_span = batch_spans[-1]
        # Modelled per-op execution inside the batch window.
        with spans.attach(batch_span):
            estimate = latency_model.estimate_for(batch.size)
            root = record_graph_spans(spans, estimate,
                                      base_us=batch.dispatch_us,
                                      pid=f"batch{k}.model")
        spans.link(batch_span, root)
        # Cycle-level exemplar, shifted into the dispatch window and
        # flow-linked from the batch span to its first sim span.
        _, acc = _profile_exemplar(batch.size, f"batch{k}.sim")
        fid = spans.link(batch_span)
        acc.tracer.mark_flow_in(fid)
        sim_traces.append(acc.tracer.to_chrome_trace(
            acc.config.frequency_ghz, ts_offset_us=batch.dispatch_us))
    return merge_chrome_traces(spans.to_chrome_trace(), *sim_traces)


def tail_critical_paths(report, k: int = 8) -> List[Dict]:
    """Exact critical paths of the slowest-k served requests.

    ``report`` is either the per-replica :class:`ServingReport` or a
    fleet :class:`~repro.serving.fleet.FleetReport`; each row is one
    request's verified path (segments tile the latency exactly).
    """
    from repro.obs.critical import slowest_critical_paths
    return [path.to_dict(max_segments=64)
            for path in slowest_critical_paths(report, k=k)]


def render_critical_text(rows: List[Dict]) -> str:
    """Text section for ``--critical``: one line per tail request."""
    lines = ["== tail critical paths (slowest served requests) =="]
    for row in rows:
        attrs = row["attrs"]
        shares = ", ".join(f"{name} {value:.0f}"
                           for name, value in
                           list(row["by_resource"].items())[:4])
        lines.append(
            f"  req{attrs['request']:>6}  {row['total']:10.1f} us  "
            f"batch {attrs['batch']:>5}  [{shares}]")
    return "\n".join(lines)


FLEET_SCHEMA_VERSION = 1


@dataclass
class FleetServeReport:
    """Everything one ``--fleet`` run produced.

    ``comparison`` rows run every policy over the *same* trace at the
    same fleet size (only the routing differs); ``fleet`` is the full
    report (merged telemetry included) for ``primary_policy``, and
    ``capacity`` answers the sizing question by simulation
    (:func:`repro.serving.capacity.plan_fleet_capacity`).
    """

    workload: str
    model: str
    machine: str
    trace_name: str
    sla_us: float
    seed: int
    replicas: int
    trace: Dict
    primary_policy: str
    comparison: List[Dict]
    fleet: Dict
    capacity: Dict

    def to_dict(self) -> Dict:
        return {
            "schema_version": FLEET_SCHEMA_VERSION,
            "workload": self.workload,
            "model": self.model,
            "machine": self.machine,
            "trace_name": self.trace_name,
            "sla_us": self.sla_us,
            "seed": self.seed,
            "replicas": self.replicas,
            "trace": self.trace,
            "primary_policy": self.primary_policy,
            "comparison": self.comparison,
            "fleet": self.fleet,
            "capacity": self.capacity,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        lines = [
            f"fleet report — {self.workload} ({self.model} on "
            f"{self.machine}, trace {self.trace_name!r}, "
            f"{self.replicas} replicas)",
            "",
            "== policy comparison (same trace, same fleet) ==",
            f"  {'policy':<14}{'p50 us':>10}{'p99 us':>10}"
            f"{'avail':>9}{'hedged':>8}{'wins':>6}",
        ]
        for row in self.comparison:
            lines.append(
                f"  {row['policy']:<14}{row['p50_us']:>10.1f}"
                f"{row['p99_us']:>10.1f}{row['availability']:>9.4f}"
                f"{row['hedged']:>8d}{row['hedge_wins']:>6d}")
        lines.append("")
        cap = self.capacity
        lines.append(f"== capacity (p99 <= {self.sla_us:g} us, "
                     f"availability >= "
                     f"{100 * cap['availability_target']:g} %) ==")
        lines.append(
            f"  minimum replicas: {cap['replicas']} "
            f"({cap['policy']}; p99 {cap['p99_us']:.1f} us, "
            f"availability {cap['availability']:.4f}, "
            f"{'feasible' if cap['feasible'] else 'INFEASIBLE'})")
        cons = self.fleet["conservation"]
        lines.append("")
        lines.append(f"== conservation ({self.primary_policy}) ==")
        lines.append(
            f"  fleet requests {cons['fleet_requests']}  accounted "
            f"{cons['accounted']}  replica copies "
            f"{cons['replica_requests']}  hedged "
            f"{cons['hedged_copies']}  conserved: {cons['conserved']}")
        return "\n".join(lines)


def run_fleet_report(workload: str = "quickstart",
                     trace_name: str = "diurnal",
                     qps: Optional[float] = None,
                     sla_us: Optional[float] = None,
                     duration_us: float = 50_000.0,
                     seed: int = 0,
                     replicas: int = 4,
                     racks: int = 2,
                     power_domains: int = 2,
                     policies: Optional[List[str]] = None,
                     primary_policy: str = "power_of_two",
                     availability: float = 0.999,
                     with_faults: bool = False,
                     jobs: int = 1):
    """Run the fleet workload: policy comparison + capacity answer.

    Returns ``(FleetServeReport, {policy: FleetReport})`` — the second
    element keeps the in-process reports so ``--chrome`` can draw the
    routed-request waterfalls without re-running anything.
    """
    from dataclasses import replace as _replace

    from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                     RouterConfig, TabularLatencyModel,
                                     simulate_fleet, uniform_fleet)
    from repro.serving.resilience import ResilienceConfig
    from repro.serving.traffic import trace_preset

    if workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose one of {known}")
    spec = WORKLOADS[workload]
    sla_us = sla_us if sla_us is not None else spec["sla_us"]
    policies = list(policies) if policies else list(ROUTING_POLICIES)
    if primary_policy not in policies:
        policies.append(primary_policy)

    from repro.eval.machines import MACHINES
    from repro.models.configs import MODEL_ZOO
    base_model = BatchLatencyModel(MODEL_ZOO[spec["model"]],
                                   MACHINES["mtia"])
    model = TabularLatencyModel.from_batch_model(base_model)
    # Default operating point: ~70 % of the fleet's aggregate capacity,
    # so routing quality (not raw capacity) decides the tail.
    per_replica_qps = model.batches[-1] / model(model.batches[-1]) * 1e6
    if qps is None:
        qps = 0.7 * replicas * per_replica_qps
    trace = _replace(trace_preset(trace_name, target_qps=qps),
                     duration_us=duration_us)

    fault_plan = None
    if with_faults:
        from repro.faults import generate_fleet_plan
        specs = uniform_fleet(replicas, racks=racks,
                              power_domains=power_domains)
        fault_plan = generate_fleet_plan(seed, specs,
                                         horizon_us=duration_us)

    resilience = ResilienceConfig(deadline_us=8.0 * sla_us, max_retries=1)
    reports = {}
    comparison: List[Dict] = []
    for policy in policies:
        config = FleetConfig(
            replicas=uniform_fleet(replicas, racks=racks,
                                   power_domains=power_domains),
            router=RouterConfig(policy=policy, route_latency_us=15.0,
                                seed=seed),
            resilience=resilience,
            racks=racks, power_domains=power_domains, seed=seed)
        report = simulate_fleet(model, trace, config,
                                fault_plan=fault_plan, jobs=jobs,
                                collect_telemetry=(policy
                                                   == primary_policy))
        reports[policy] = report
        comparison.append({
            "policy": policy,
            "p50_us": report.percentile(50),
            "p99_us": report.percentile(99),
            "availability": report.availability,
            "hedged": int(report.hedged_requests),
            "hedge_wins": int(report.hedge_wins),
            "counts": report.counts_by_status(),
        })

    from repro.serving.capacity import plan_fleet_capacity
    capacity_config = FleetConfig(
        replicas=uniform_fleet(1),
        router=RouterConfig(policy=primary_policy,
                            route_latency_us=15.0, seed=seed),
        resilience=resilience,
        racks=racks, power_domains=power_domains, seed=seed)
    capacity = plan_fleet_capacity(
        model, trace, sla_us, availability_target=availability,
        config=capacity_config, policy=primary_policy,
        max_replicas=max(16, 2 * replicas), jobs=jobs)

    report = FleetServeReport(
        workload=workload, model=spec["model"], machine="mtia",
        trace_name=trace_name, sla_us=sla_us, seed=seed,
        replicas=replicas, trace=trace.to_dict(),
        primary_policy=primary_policy, comparison=comparison,
        fleet=reports[primary_policy].to_dict(),
        capacity=capacity.to_dict())
    return report, reports


def build_fleet_chrome_trace(fleet_report, max_requests: int = 32) -> dict:
    """Routed-request waterfalls: router hop → replica batch execution.

    Draws the slowest ``max_requests`` served requests (the tail is
    what waterfalls are for) plus every hedge *winner*: a router span
    (policy + chosen replica), flow-linked to the request's phase
    waterfall (route / hedge_wait / batch_wait / queue_wait / execute),
    flow-linked in turn to the winning replica's device batch span.
    Everything is reconstructed post-hoc from the fleet report's exact
    per-request arrays — no per-request tracing overhead at simulation
    time (PR 6's tail-exemplar discipline, fleet-wide).
    """
    import numpy as np

    from repro.obs.spans import SpanTracer
    from repro.serving.simulator import STATUS_SERVED

    spans = SpanTracer(enabled=True)
    report = fleet_report
    served = np.flatnonzero(report.status == STATUS_SERVED)
    slowest = served[np.argsort(report.latencies_us[served],
                                kind="stable")][::-1][:max_requests]
    winners = np.flatnonzero((report.hedge_wait_us > 0)
                             & (report.status == STATUS_SERVED))
    chosen = sorted(set(int(i) for i in slowest)
                    | set(int(i) for i in winners[:max_requests]))

    drawn_batches = set()
    for i in chosen:
        arrival = float(report.arrivals_us[i])
        r = int(report.replica[i])
        pos = int(report.replica_pos[i])
        local = report.per_replica[r]
        b = int(local.batch_index[pos]) if local.batch_index.size else -1
        route_end = arrival + float(report.route_overhead_us[i])
        track = f"request.{i}"
        router_span = spans.add(
            "router", f"route req{i}", arrival, route_end,
            pid="fleet.router", policy=report.config.router.policy,
            primary=int(report.assigned[i]),
            hedged=int(report.hedged[i]), winner=r)
        finish = arrival + float(report.latencies_us[i])
        with spans.span(track, f"req{i}", arrival, finish,
                        pid="fleet.requests", replica=r, batch=b,
                        hedge_won=bool(report.hedge_wait_us[i] > 0)) as req:
            t = route_end
            for phase in ("hedge_wait", "batch_wait", "queue_wait",
                          "retry_overhead", "execute"):
                width = float(getattr(report, f"{phase}_us")[i])
                if width > 0:
                    spans.add(track, phase, t, t + width,
                              pid="fleet.requests")
                    t += width
        spans.link(router_span, req)
        if 0 <= b < len(local.batches):
            batch = local.batches[b]
            key = (r, b)
            if key not in drawn_batches:
                drawn_batches.add(key)
                batch_span = spans.add(
                    f"replica{r}.device", f"r{r}.batch{b}",
                    batch.dispatch_us, batch.finish_us,
                    pid=f"fleet.replica{r}", size=batch.size)
            else:
                batch_span = spans.find(f"r{r}.batch{b}")[-1]
            spans.link(req, batch_span)
    return spans.to_chrome_trace()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve_report",
        description="Request-level serving observability report.")
    parser.add_argument("workload", nargs="?", default="quickstart",
                        help="workload name (%s)"
                        % "/".join(sorted(WORKLOADS)))
    parser.add_argument("--qps", type=float, default=None,
                        help="offered load (default: workload preset)")
    parser.add_argument("--sla-us", type=float, default=None,
                        help="latency SLA in us (default: preset)")
    parser.add_argument("--requests", type=int, default=None,
                        help="number of simulated requests")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--availability", type=float, default=0.999,
                        help="SLO availability target (default 0.999)")
    parser.add_argument("--window-us", type=float, default=50_000.0,
                        help="rolling SLO window width")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-us", type=float, default=200.0)
    parser.add_argument("--max-request-rows", type=int, default=100,
                        help="per-request rows in the JSON (0 = all)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="fleet replicas; >1 adds satellite streams "
                        "that contribute bounded telemetry only")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for satellite replicas")
    parser.add_argument("--no-exemplars", action="store_true",
                        help="skip the cycle-level exemplar profiles")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report")
    parser.add_argument("--chrome", action="store_true",
                        help="emit the merged Chrome/Perfetto trace")
    parser.add_argument("--output", "-o", default=None,
                        help="write to this file instead of stdout")
    parser.add_argument("--fleet", action="store_true",
                        help="fleet mode: router + N replicas over a "
                        "traffic trace (policy comparison + capacity)")
    parser.add_argument("--trace-name", default="diurnal",
                        help="fleet traffic preset "
                        "(steady/diurnal/spike/flash_crowd)")
    parser.add_argument("--duration-us", type=float, default=50_000.0,
                        help="fleet trace span in simulated us")
    parser.add_argument("--policy", default="power_of_two",
                        help="fleet primary policy (full report + "
                        "capacity use this one)")
    parser.add_argument("--racks", type=int, default=2,
                        help="fleet rack count (correlated-failure "
                        "blast radius)")
    parser.add_argument("--power-domains", type=int, default=2)
    parser.add_argument("--faults", action="store_true",
                        help="fleet mode: inject a seeded correlated "
                        "rack/power fault plan")
    parser.add_argument("--critical", action="store_true",
                        help="attach exact critical paths for the "
                        "slowest served requests (tail exemplars)")
    parser.add_argument("--critical-k", type=int, default=8,
                        help="how many tail requests --critical walks")
    args = parser.parse_args(argv)

    if args.fleet:
        report, fleet_reports = run_fleet_report(
            args.workload, trace_name=args.trace_name, qps=args.qps,
            sla_us=args.sla_us, duration_us=args.duration_us,
            seed=args.seed, replicas=max(2, args.replicas),
            racks=args.racks, power_domains=args.power_domains,
            primary_policy=args.policy, availability=args.availability,
            with_faults=args.faults, jobs=args.jobs)
        if args.chrome:
            trace = build_fleet_chrome_trace(
                fleet_reports[report.primary_policy])
            path = args.output or f"{args.workload}.fleet_trace.json"
            with open(path, "w") as fh:
                json.dump(trace, fh)
            print(f"wrote fleet Chrome trace to {path} "
                  f"({len(trace['traceEvents'])} events); open in "
                  "ui.perfetto.dev or chrome://tracing")
            return 0
        crit_rows = (tail_critical_paths(
            fleet_reports[report.primary_policy], args.critical_k)
            if args.critical else None)
        if args.json:
            data = report.to_dict()
            if crit_rows is not None:
                data["critical_paths"] = crit_rows
            text = json.dumps(data, indent=2, sort_keys=True)
        else:
            text = report.to_text()
            if crit_rows is not None:
                text += "\n\n" + render_critical_text(crit_rows)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote fleet report to {args.output}")
        else:
            print(text)
        return 0

    batching = BatchingConfig(max_batch=args.max_batch,
                              max_wait_us=args.max_wait_us)
    report, latency_model = run_serve_report(
        args.workload, qps=args.qps, sla_us=args.sla_us,
        num_requests=args.requests, seed=args.seed,
        availability=args.availability, window_us=args.window_us,
        batching=batching, max_request_rows=args.max_request_rows,
        exemplars=not args.no_exemplars and not args.chrome,
        replicas=args.replicas, jobs=args.jobs)

    if args.chrome:
        trace = build_chrome_trace(report, latency_model)
        path = args.output or f"{args.workload}.serve_trace.json"
        with open(path, "w") as fh:
            json.dump(trace, fh)
        print(f"wrote merged Chrome trace to {path} "
              f"({len(trace['traceEvents'])} events); open in "
              "ui.perfetto.dev or chrome://tracing")
        return 0

    crit_rows = (tail_critical_paths(report.serving, args.critical_k)
                 if args.critical else None)
    if args.json:
        data = report.to_dict()
        if crit_rows is not None:
            data["critical_paths"] = crit_rows
        text = json.dumps(data, indent=2, sort_keys=True)
    else:
        text = report.to_text()
        if crit_rows is not None:
            text += "\n\n" + render_critical_text(crit_rows)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
